# A custom protocol: rumor spreading with skeptics, plus a framework thread
# that reports whether the rumor has reached everyone.
def protocol RumorWithSkeptics
  var R as input, S as input, Done as output:
  thread Main:
    repeat:
      execute for >= 4 ln n rounds ruleset:
        > (R) + (!R & !S) -> (R) + (R)
        > (S) + (R) -> (!S & R) + (!R)
      if exists (!R & !S):
      else:
        Done := on
