# Plain leader fratricide (the classic O(n) pairwise-elimination baseline
# E1 compares against): every agent starts as a leader; when two leaders
# meet, one demotes the other. Ships as the `ppsim lint` example of a
# protocol the analyzer finds nothing to say about.
def protocol Fratricide
  var L <- on as output:
  thread Elect:
    repeat:
      execute for >= 2 ln n rounds ruleset:
        > (L) + (L) -> (L) + (!L)
