# The w.h.p. leader election protocol of Section 3.1, in the framework's
# pseudocode syntax (parseable by `ppsim run-file`).
def protocol LeaderElection
  var L <- on as output, D, F:
  thread Main:
    repeat:
      if exists (L):
        F := {on, off} chosen uniformly at random
        D := L & F
      if exists (D):
        L := D
      else:
        if exists (L):
        else:
          L := on
