//! Quickstart: elect a unique leader among `n` anonymous agents with the
//! paper's constant-state w.h.p. protocol (Section 3.1), and watch the
//! leader set halve iteration by iteration.
//!
//! Run with: `cargo run --release --example quickstart [n] [seed]`

use population_protocols::core::lang::interp::Executor;
use population_protocols::core::protocols::leader::leader_election;
use population_protocols::core::rules::Guard;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    let program = leader_election();
    println!("{}", program.render());

    let leader_flag = program.vars.get("L").expect("output variable");
    let mut exec = Executor::new(&program, &[(vec![], n)], seed);

    println!("n = {n}, seed = {seed}");
    println!("{:>9}  {:>12}  {:>14}", "iteration", "leaders", "rounds");
    loop {
        let leaders = exec.count_where(&Guard::var(leader_flag));
        println!(
            "{:>9}  {:>12}  {:>14.1}",
            exec.iterations(),
            leaders,
            exec.rounds()
        );
        if leaders == 1 {
            break;
        }
        if exec.iterations() > 500 {
            eprintln!("did not converge within 500 iterations");
            std::process::exit(1);
        }
        exec.run_iteration();
    }
    println!(
        "unique leader elected after {} good iterations ≈ {:.0} parallel rounds \
         (log2 n = {:.1}; expected O(log² n))",
        exec.iterations(),
        exec.rounds(),
        (n as f64).log2()
    );
}
