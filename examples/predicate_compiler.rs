//! Computing semi-linear predicates (Section 6.3): the comparison
//! predicate `#A − #B ≥ 1` via the full fast+slow `SemilinearPredicateExact`
//! composition, and the parity predicate `#A ≡ 1 (mod 2)` via the stable
//! slow blackbox.
//!
//! Run with: `cargo run --release --example predicate_compiler`

use population_protocols::core::lang::interp::Executor;
use population_protocols::core::protocols::semilinear::{
    parity_exact, semilinear_comparison_exact, Predicate,
};
use population_protocols::core::rules::Guard;

fn main() {
    // --- Comparison predicate, full composition -------------------------
    let program = semilinear_comparison_exact(2);
    let a = program.vars.get("A").expect("A");
    let b = program.vars.get("B").expect("B");
    let p = program.vars.get("P").expect("P");

    println!("Π = [#A − #B ≥ 1], full fast+slow composition");
    for (na, nb) in [(60u64, 30u64), (30, 60), (46, 45)] {
        let truth = Predicate::Comparison { t: 1 }.eval(na, nb);
        let mut exec = Executor::new(
            &program,
            &[(vec![a], na), (vec![b], nb), (vec![], 120 - na - nb)],
            na * 31 + nb,
        );
        let converged = exec.run_until(60, |e| {
            let on = e.count_where(&Guard::var(p));
            (on == e.n()) == truth && (on == 0) != truth
        });
        println!(
            "  #A={na:>3} #B={nb:>3}: truth={truth}, protocol answered {} after {:?} iterations",
            match converged {
                Some(_) => "correctly",
                None => "NOT yet",
            },
            converged
        );
    }

    // --- Parity predicate, slow blackbox --------------------------------
    println!("\nΠ = [#A odd], stable slow blackbox (exact, polynomial time)");
    let program = parity_exact(1);
    let a = program.vars.get("A").expect("A");
    let p = program.vars.get("P").expect("P");
    for na in [7u64, 8, 15] {
        let truth = na % 2 == 1;
        let mut exec = Executor::new(&program, &[(vec![a], na), (vec![], 60 - na)], na);
        let converged = exec.run_until(800, |e| {
            let on = e.count_where(&Guard::var(p));
            (on == e.n()) == truth && (on == 0) != truth
        });
        println!(
            "  #A={na:>3}: truth={truth}, protocol answered {} after {:?} iterations",
            match converged {
                Some(_) => "correctly",
                None => "NOT yet",
            },
            converged
        );
    }
}
