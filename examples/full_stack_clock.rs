//! The whole paper in one binary: compile a framework program down to a
//! single finite-state protocol running on the real phase-clock hierarchy —
//! oscillator, detector, phase counters, `#X` control, time-path-filtered
//! program rules — with **no global coordination at all**, and watch it
//! execute.
//!
//! The program is `Y := X` (copy the input flag to the output flag), whose
//! compiled form exercises triggers, leaf scheduling, and the full clock
//! stack. Every agent is a finite-state machine; the only driver is the
//! uniform random scheduler.
//!
//! Run with: `cargo run --release --example full_stack_clock [n]`

use population_protocols::core::clocks::junta::PairwiseElimination;
use population_protocols::core::clocks::oscillator::Dk18Oscillator;
use population_protocols::core::engine::obj::ObjPopulation;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::lang::ast::{build, Program, Thread};
use population_protocols::core::lang::compile::CompiledProtocol;
use population_protocols::core::rules::{Guard, VarSet};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    let mut vars = VarSet::new();
    let x = vars.add("X");
    let y = vars.add("Y");
    let program = Program {
        name: "CopyXtoY".into(),
        vars,
        inputs: vec![x],
        outputs: vec![y],
        init: vec![],
        derived_init: vec![],
        threads: vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(y, Guard::var(x))],
        }],
    };
    println!("{}", program.render());

    let compiled = CompiledProtocol::new(
        &program,
        Dk18Oscillator::new(),
        PairwiseElimination::new(),
        6,
    );
    println!(
        "compiled: l_max = {}, w_max = {}, clock modulus m = {}",
        compiled.tree().l_max,
        compiled.tree().w_max,
        compiled.modulus()
    );

    let mut pop = ObjPopulation::from_fn(&compiled, n, |i| {
        if i % 3 == 0 {
            compiled.initial_agent(&[x])
        } else {
            compiled.initial_agent(&[])
        }
    });
    let mut rng = SimRng::seed_from(99);

    let want = pop.count_where(|ag| x.is_set(ag.flags));
    println!("\n{n} agents, {want} with X set; waiting for Y to mirror X everywhere…");
    println!(
        "{:>8}  {:>10}  {:>6}  {:>14}",
        "rounds", "correct", "#X", "level-0 phase"
    );
    loop {
        pop.run_rounds(250.0, &mut rng);
        let correct = pop.count_where(|ag| y.is_set(ag.flags) == x.is_set(ag.flags));
        let sources = pop.count_where(|ag| compiled.hierarchy().is_x(&ag.clock));
        // Majority phase of the base clock.
        let mut hist = [0u64; 64];
        for ag in pop.iter() {
            hist[ag.clock.cur[0].phase as usize] += 1;
        }
        let phase = (0..64).max_by_key(|&p| hist[p]).unwrap();
        println!(
            "{:>8.0}  {:>7}/{n}  {:>6}  {:>14}",
            pop.time(),
            correct,
            sources,
            phase
        );
        if correct == n as u64 {
            println!(
                "\ndone: the compiled program completed on the self-organized clock stack \
                 after {:.0} parallel rounds",
                pop.time()
            );
            break;
        }
        if pop.time() > 60_000.0 {
            println!("\nbudget exhausted before completion (correct = {correct}/{n})");
            break;
        }
    }
}
