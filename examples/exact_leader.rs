//! Always-correct leader election (Section 6.1): the fast coin-driven path
//! converges in `O(log² n)` rounds w.h.p., while the `ReduceSets` backstop
//! guarantees eventual correctness with certainty.
//!
//! The example shows both time scales: the fast path pins a unique leader
//! within tens of iterations, and the backstop set `R` keeps shrinking (it
//! can never die) until `#R = 1`, after which the answer is *provably*
//! locked forever.
//!
//! Run with: `cargo run --release --example exact_leader [n]`

use population_protocols::core::lang::interp::Executor;
use population_protocols::core::protocols::leader::leader_election_exact;
use population_protocols::core::rules::Guard;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let program = leader_election_exact();
    let l = program.vars.get("L").expect("L");
    let r = program.vars.get("R").expect("R");
    let f = program.vars.get("F").expect("F");

    let mut exec = Executor::new(&program, &[(vec![], n)], 2024);
    println!("n = {n}");
    println!(
        "{:>9}  {:>8}  {:>8}  {:>8}  {:>12}",
        "iteration", "#L", "#R", "#F", "rounds"
    );
    let mut fast_converged_at = None;
    let mut locked_at = None;
    for _ in 0..100_000 {
        let leaders = exec.count_where(&Guard::var(l));
        let backstop = exec.count_where(&Guard::var(r));
        let coin = exec.count_where(&Guard::var(f));
        if exec.iterations() % 25 == 0 || (leaders == 1 && fast_converged_at.is_none()) {
            println!(
                "{:>9}  {:>8}  {:>8}  {:>8}  {:>12.0}",
                exec.iterations(),
                leaders,
                backstop,
                coin,
                exec.rounds()
            );
        }
        if leaders == 1 && fast_converged_at.is_none() {
            fast_converged_at = Some((exec.iterations(), exec.rounds()));
        }
        if backstop == 1 && leaders == 1 {
            locked_at = Some((exec.iterations(), exec.rounds()));
            break;
        }
        exec.run_iteration();
    }
    if let Some((it, rounds)) = fast_converged_at {
        println!("\nfast path: unique leader after {it} iterations ≈ {rounds:.0} rounds (w.h.p. correct)");
    }
    if let Some((it, rounds)) = locked_at {
        println!(
            "certainty: #R = 1 after {it} iterations ≈ {rounds:.0} rounds — leader locked forever"
        );
    } else {
        println!("backstop still converging (expected within polynomial time)");
    }
}
