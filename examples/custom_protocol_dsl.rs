//! Define your own population protocol in the paper's rule notation and
//! simulate it at scale.
//!
//! This example builds a rumor-spreading protocol with retraction from
//! plain text, runs it on one million agents via the count-based backend,
//! and reports the spreading timeline.
//!
//! Run with: `cargo run --release --example custom_protocol_dsl`

use population_protocols::core::engine::counts::CountPopulation;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::{run_until, Simulator};
use population_protocols::core::rules::{parse::parse_ruleset, FlagProtocol, VarSet};

fn main() {
    // R = has heard the rumor, S = skeptic (retracts once).
    let text = "\
        # rumor spreads on contact\n\
        (R) + (!R & !S) -> (R) + (R)\n\
        (!R & !S) + (R) -> (R) + (R)\n\
        # skeptics silence one spreader, then believe\n\
        (S) + (R) -> (!S & R) + (!R)\n\
    ";
    let mut vars = VarSet::new();
    let ruleset = parse_ruleset(text, &mut vars).expect("ruleset parses");
    let protocol = FlagProtocol::new(vars, ruleset, "rumor");
    println!("protocol rules:\n{}\n", protocol.render());

    let r = protocol.vars().get("R").expect("R");
    let s = protocol.vars().get("S").expect("S");

    let n: u64 = 1_000_000;
    let skeptics = 1_000;
    let sources = 10;
    let mut counts = vec![0u64; protocol.vars().num_states()];
    counts[r.mask() as usize] = sources;
    counts[s.mask() as usize] = skeptics;
    counts[0] = n - sources - skeptics;

    let mut pop = CountPopulation::from_counts(&protocol, &counts);
    let mut rng = SimRng::seed_from(123);

    let informed = |sim: &CountPopulation<&FlagProtocol>| -> u64 {
        sim.counts()
            .iter()
            .enumerate()
            .filter(|&(state, _)| r.is_set(state as u32))
            .map(|(_, &c)| c)
            .sum()
    };

    println!("spreading a rumor among {n} agents ({sources} sources, {skeptics} skeptics)");
    for target_pct in [1u64, 10, 50, 90, 99] {
        let target = n * target_pct / 100;
        let t = run_until(&mut pop, &mut rng, 500.0, 4096, |sim| {
            informed(sim) >= target
        });
        match t {
            Some(t) => println!("{target_pct:>3}% informed after {t:>6.1} rounds"),
            None => println!("{target_pct:>3}% not reached within budget"),
        }
    }
    println!(
        "final: {} informed, {} skeptics remaining (epidemic completes in Θ(log n) rounds)",
        informed(&pop),
        pop.counts()
            .iter()
            .enumerate()
            .filter(|&(state, _)| s.is_set(state as u32))
            .map(|(_, &c)| c)
            .sum::<u64>()
    );
}
