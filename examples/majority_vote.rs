//! A referendum among anonymous sensors: exact majority with a paper-thin
//! margin (Section 3.2).
//!
//! A population of `n` sensor nodes votes A or B (some abstain). The
//! constant-state `Majority` protocol must report the true winner even when
//! the margin is a single vote — the regime where the classic 3-state
//! approximate-majority protocol flips a coin and the 4-state exact
//! protocol needs polynomial time.
//!
//! Run with: `cargo run --release --example majority_vote [n] [margin]`

use population_protocols::core::lang::interp::Executor;
use population_protocols::core::protocols::majority::majority;
use population_protocols::core::rules::Guard;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3_000);
    let margin: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let votes_a = n / 3 + margin;
    let votes_b = n / 3;
    let abstain = n - votes_a - votes_b;

    let program = majority(3);
    let a = program.vars.get("A").expect("input A");
    let b = program.vars.get("B").expect("input B");
    let y = program.vars.get("Y_A").expect("output");

    println!(
        "referendum: {votes_a} for A, {votes_b} for B, {abstain} abstaining (margin {margin})"
    );

    let mut correct = 0;
    let runs = 5;
    for seed in 0..runs {
        let mut exec = Executor::new(
            &program,
            &[(vec![a], votes_a), (vec![b], votes_b), (vec![], abstain)],
            seed,
        );
        exec.run_iteration();
        let answer_a = exec.count_where(&Guard::var(y));
        let unanimous = answer_a == n || answer_a == 0;
        let right = answer_a == n; // A really is the majority
        if unanimous && right {
            correct += 1;
        }
        println!(
            "seed {seed}: answer {} ({} agents say A), {:.0} rounds",
            if right { "A" } else { "B" },
            answer_a,
            exec.rounds()
        );
    }
    println!("{correct}/{runs} runs correct (expected: all, w.h.p., for any margin)");
}
