//! The self-organizing oscillator as a chemical reaction network.
//!
//! Population protocols are equivalent to fixed-volume CRNs, and the
//! paper's clock machinery is directly programmable as chemistry. This
//! example runs the DK18-style oscillator (Section 5.2) from the uniform
//! "well-mixed" state, prints an ASCII trace of the three species'
//! concentrations, measures the oscillation period, and compares the
//! stochastic run against the deterministic mean-field ODE limit.
//!
//! Run with: `cargo run --release --example chemical_oscillator [n]`

use population_protocols::core::clocks::detect::{dominance_events, periods, rotation_violations};
use population_protocols::core::clocks::oscillator::{central_init, Dk18Oscillator, Oscillator};
use population_protocols::core::engine::counts::CountPopulation;
use population_protocols::core::engine::meanfield;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::Simulator;

fn bar(fraction: f64, width: usize) -> String {
    "#".repeat((fraction * width as f64).round() as usize)
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let x = ((n as f64).powf(0.3) as u64).max(1);

    let osc = Dk18Oscillator::new();
    let init = central_init(&osc, n, x);
    let mut pop = CountPopulation::from_counts(&osc, &init);
    let mut rng = SimRng::seed_from(7);

    println!("n = {n}, #X = {x} source molecules");
    println!("time   [A1 | A2 | A3] concentration bars");
    let mut trace = Vec::new();
    while pop.time() < 300.0 {
        let out = pop.step_batch(&mut rng, n);
        if out.silent && out.executed == 0 {
            break;
        }
        let counts = osc.species_counts(&pop.counts());
        trace.push((pop.time(), counts));
        if (pop.time() as u64).is_multiple_of(5) {
            let total: u64 = counts.iter().sum();
            println!(
                "{:>5.0}  {:<12} {:<12} {:<12}",
                pop.time(),
                bar(counts[0] as f64 / total as f64, 12),
                bar(counts[1] as f64 / total as f64, 12),
                bar(counts[2] as f64 / total as f64, 12),
            );
        }
    }

    let events = dominance_events(&trace, 0.8);
    let period_list = periods(&events);
    let mean_period = period_list.iter().sum::<f64>() / period_list.len().max(1) as f64;
    println!(
        "\ndominance events: {}, rotation violations: {}, mean period: {:.1} rounds \
         (log2 n = {:.1}; theory: Θ(log n))",
        events.len(),
        rotation_violations(&events),
        mean_period,
        (n as f64).log2()
    );

    // Mean-field comparison: the deterministic limit from the same start.
    let fractions: Vec<f64> = init.iter().map(|&c| c as f64 / n as f64).collect();
    let traj = meanfield::integrate(&osc, &fractions, 50.0, 0.01, 500);
    println!("\nmean-field ODE limit (first 50 time units):");
    for (t, state) in traj.times.iter().zip(&traj.states) {
        let species: Vec<f64> = (0..3)
            .map(|s| state[osc.species_state(s)] + state[osc.species_state(s) + 1])
            .collect();
        println!(
            "{t:>5.0}  A1={:.3} A2={:.3} A3={:.3}",
            species[0], species[1], species[2]
        );
    }
    println!(
        "\nnote: the deterministic limit from the exactly-uniform start stays near the \
         central fixed point; the stochastic system escapes it in O(log n) rounds — \
         this gap is exactly why the paper's analysis tracks fluctuations (Theorem 5.1)."
    );
}
