//! Snapshot/restore round-trips: every backend checkpointed at arbitrary
//! batch boundaries must continue exactly as if never interrupted, the
//! on-disk format must reject any corruption, and a resilient-sweep task
//! must resume from its per-task checkpoint store after a crash.
//!
//! These tests deliberately leave the process-global metrics registry
//! alone (metrics-stream equality across an interrupt is pinned by
//! `tests/determinism.rs`, which owns the registry), so they can run in
//! parallel.

use population_protocols::core::engine::accel::AcceleratedPopulation;
use population_protocols::core::engine::counts::{CountPopulation, SparseCountPopulation};
use population_protocols::core::engine::faults::{CorruptMode, FaultSpec, FaultyPopulation};
use population_protocols::core::engine::json::Json;
use population_protocols::core::engine::matching::MatchingPopulation;
use population_protocols::core::engine::population::Population;
use population_protocols::core::engine::protocol::TableProtocol;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::Simulator;
use population_protocols::core::engine::snapshot::{hex_u64, parse_hex_u64, RunSnapshot};
use population_protocols::core::engine::sweep::{
    run_indexed_resilient, ResiliencePolicy, TaskCtx, TaskResult,
};
use std::time::Duration;

/// Rock-paper-scissors cycling: never silent, touches every state.
fn rps() -> TableProtocol {
    TableProtocol::new(3, "rps")
        .rule(0, 1, 0, 0)
        .rule(1, 2, 1, 1)
        .rule(2, 0, 2, 2)
}

/// Drives `original` to a cut point, snapshots it through the full on-disk
/// text encoding, restores into `fresh`, then runs both simulators side by
/// side to the horizon asserting identical counts and step counters after
/// every batch — the observable definition of "resume is exact".
fn assert_roundtrip_exact<S: Simulator>(
    backend: &str,
    mut original: S,
    mut fresh: S,
    seed: u64,
    n: u64,
    cut_batches: u64,
    tail_batches: u64,
) {
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..cut_batches {
        original.step_batch(&mut rng, n);
    }
    let snap = RunSnapshot::capture(&original, &rng)
        .unwrap_or_else(|e| panic!("{backend}: snapshot at a batch boundary: {e}"));
    let decoded = RunSnapshot::decode(&snap.encode())
        .unwrap_or_else(|e| panic!("{backend}: encode/decode round-trip: {e}"));
    assert_eq!(decoded.backend, backend, "snapshot records its backend tag");
    let mut resumed_rng = decoded
        .resume_into(&mut fresh)
        .unwrap_or_else(|e| panic!("{backend}: restore into a fresh simulator: {e}"));
    assert_eq!(
        fresh.counts(),
        original.counts(),
        "{backend}: restored counts match at the cut"
    );
    assert_eq!(
        fresh.steps(),
        original.steps(),
        "{backend}: restored step counter matches at the cut"
    );
    for batch in 0..tail_batches {
        original.step_batch(&mut rng, n);
        fresh.step_batch(&mut resumed_rng, n);
        assert_eq!(
            fresh.counts(),
            original.counts(),
            "{backend}: counts diverge {batch} batches after resume"
        );
        assert_eq!(
            fresh.steps(),
            original.steps(),
            "{backend}: step counters diverge {batch} batches after resume"
        );
    }
}

#[test]
fn every_backend_roundtrips_at_random_batch_boundaries() {
    let counts = [500u64, 300, 200];
    let n: u64 = counts.iter().sum();
    // Deterministically "random" cut points, different per backend and per
    // repetition, covering cut-at-zero as well as deep cuts.
    let mut picker = SimRng::seed_from(0x5eed_cafe);
    for rep in 0..4u64 {
        let cut = picker.below(9);
        let tail = 1 + picker.below(6);
        let seed = 0x1000 + rep;
        let p = rps();
        assert_roundtrip_exact(
            "agents",
            Population::from_counts(&p, &counts),
            Population::from_counts(&p, &counts),
            seed,
            n,
            cut,
            tail,
        );
        assert_roundtrip_exact(
            "counts",
            CountPopulation::from_counts(&p, &counts),
            CountPopulation::from_counts(&p, &counts),
            seed,
            n,
            cut,
            tail,
        );
        assert_roundtrip_exact(
            "sparse",
            SparseCountPopulation::from_dense(&p, &counts),
            SparseCountPopulation::from_dense(&p, &counts),
            seed,
            n,
            cut,
            tail,
        );
        assert_roundtrip_exact(
            "accel",
            AcceleratedPopulation::from_counts(&p, &counts),
            AcceleratedPopulation::from_counts(&p, &counts),
            seed,
            n,
            cut,
            tail,
        );
        assert_roundtrip_exact(
            "matching",
            MatchingPopulation::from_counts(&p, &counts),
            MatchingPopulation::from_counts(&p, &counts),
            seed,
            n,
            cut,
            tail,
        );
    }
}

/// A plan mixing all three injector kinds.
fn mixed_spec() -> FaultSpec {
    FaultSpec::new(0xfa11)
        .corrupt(3.0, 0.1, CorruptMode::Randomize)
        .churn(2.0, 0.05, 1)
        .byzantine(80, 0, 4.0)
}

#[test]
fn faulty_wrapper_roundtrips_with_a_mixed_fault_plan() {
    let counts = [500u64, 300, 200];
    let n: u64 = counts.iter().sum();
    let spec = mixed_spec();
    let p = rps();
    let make = || {
        FaultyPopulation::new(CountPopulation::from_counts(&p, &counts), &spec)
            .expect("valid mixed spec")
    };
    // Cut deep enough that corrupt/churn/byzantine triggers have partially
    // fired, so trigger progress and the fault event log must round-trip.
    assert_roundtrip_exact("faulty", make(), make(), 0xfee1, n, 7, 5);

    // The restored event log itself must match, not just future behavior.
    let mut original = make();
    let mut rng = SimRng::seed_from(0xfee1);
    for _ in 0..7 {
        original.step_batch(&mut rng, n);
    }
    assert!(
        !original.events().is_empty(),
        "the cut must land after injections fired"
    );
    let snap = RunSnapshot::capture(&original, &rng).expect("snapshot");
    let mut fresh = make();
    snap.resume_into(&mut fresh).expect("restore");
    assert_eq!(
        fresh.events_jsonl(),
        original.events_jsonl(),
        "restored fault-event log is byte-identical"
    );
}

#[test]
fn truncated_snapshots_are_rejected_at_every_length() {
    let p = rps();
    let mut pop = CountPopulation::from_counts(&p, &[400, 300, 300]);
    let mut rng = SimRng::seed_from(9);
    pop.step_batch(&mut rng, 1_000);
    let text = RunSnapshot::capture(&pop, &rng)
        .expect("snapshot")
        .with_meta(Json::obj([("round", hex_u64(1))]))
        .encode();
    assert!(RunSnapshot::decode(&text).is_ok());
    for len in 0..text.len() {
        assert!(
            RunSnapshot::decode(&text[..len]).is_err(),
            "truncation to {len} bytes must be rejected"
        );
    }
}

#[test]
fn bit_flipped_snapshots_are_rejected_by_the_checksum() {
    let p = rps();
    let mut pop = SparseCountPopulation::from_dense(&p, &[400, 300, 300]);
    let mut rng = SimRng::seed_from(10);
    pop.step_batch(&mut rng, 1_000);
    let text = RunSnapshot::capture(&pop, &rng).expect("snapshot").encode();
    let bytes = text.as_bytes();
    let mut fuzz = SimRng::seed_from(0xb17_f11b);
    for _ in 0..200 {
        let pos = fuzz.below(bytes.len() as u64) as usize;
        let bit = 1u8 << fuzz.below(8);
        let mut flipped = bytes.to_vec();
        flipped[pos] ^= bit;
        if flipped == bytes {
            continue;
        }
        // A flip may break UTF-8, JSON syntax, a validity check, or only
        // the payload bytes — the checksum backstops that last case; all
        // of them must surface as a decode error, never a wrong resume.
        let decoded = String::from_utf8(flipped)
            .map_err(|e| e.to_string())
            .and_then(|s| RunSnapshot::decode(&s));
        assert!(
            decoded.is_err(),
            "bit flip at byte {pos} (mask {bit:#04x}) must be rejected"
        );
    }
}

/// Epidemic protocol for the sweep test: short, always progressing.
fn epidemic() -> TableProtocol {
    TableProtocol::new(2, "epidemic")
        .rule(1, 0, 1, 1)
        .rule(0, 1, 1, 1)
}

#[test]
fn sweep_task_resumes_from_its_checkpoint_store_after_a_crash() {
    let root = std::env::temp_dir().join(format!(
        "pp_sweep_resume_{}_{:x}",
        std::process::id(),
        0x51eeu64
    ));
    let _ = std::fs::remove_dir_all(&root);
    let policy = ResiliencePolicy {
        deadline: Duration::from_secs(30),
        retries: 1,
        backoff: Duration::from_millis(1),
        checkpoint_dir: Some(root.clone()),
        checkpoint_keep: 2,
    };
    let total_rounds = 6u64;
    let run_task = move |index: usize, attempt: u32, store_ctx: Option<&TaskCtx>| -> Vec<u64> {
        let p = epidemic();
        let mut pop = CountPopulation::from_counts(&p, &[900, 100]);
        let mut rng = SimRng::seed_from(7 + index as u64);
        let mut round = 0u64;
        if let Some(ctx) = store_ctx {
            let store = ctx
                .checkpoint_store()
                .expect("store opens")
                .expect("policy configured a checkpoint dir");
            if attempt > 0 {
                // Retry: resume from the last good snapshot instead of
                // restarting from round 0.
                let (found, incidents) = store.load_latest();
                assert!(
                    incidents.is_empty(),
                    "no corruption expected: {incidents:?}"
                );
                let (_gen, _path, snap) = found.expect("attempt 0 left snapshots behind");
                rng = snap.resume_into(&mut pop).expect("resume");
                round = parse_hex_u64(snap.meta.get("round").expect("round in meta"))
                    .expect("valid round");
                assert!(round >= 3, "the crash happened at round 3");
            }
            let mut store = store;
            while round < total_rounds {
                pop.step_batch(&mut rng, 1_000);
                round += 1;
                let snap = RunSnapshot::capture(&pop, &rng)
                    .expect("snapshot")
                    .with_meta(Json::obj([("round", hex_u64(round))]));
                store.save(&snap).expect("checkpoint save");
                if index == 1 && attempt == 0 && round == 3 {
                    panic!("injected mid-run crash after the round-3 checkpoint");
                }
            }
        } else {
            // Reference path (no sweep context): uninterrupted run.
            while round < total_rounds {
                pop.step_batch(&mut rng, 1_000);
                round += 1;
            }
        }
        pop.counts()
    };

    let reference = run_task(1, 0, None);
    let task = run_task;
    let (results, incidents) = run_indexed_resilient(3, 2, policy, move |ctx| {
        task(ctx.index, ctx.attempt, Some(ctx))
    });

    assert_eq!(results.len(), 3);
    match &results[1] {
        TaskResult::Ok(counts) => assert_eq!(
            counts, &reference,
            "the resumed task finishes with the exact uninterrupted result"
        ),
        other => panic!("task 1 must complete on retry, got {other:?}"),
    }
    for (i, r) in results.iter().enumerate() {
        assert!(matches!(r, TaskResult::Ok(_)), "slot {i} completes: {r:?}");
    }
    let panics: Vec<_> = incidents.iter().filter(|i| i.cause == "panic").collect();
    assert_eq!(panics.len(), 1, "exactly one crash incident: {incidents:?}");
    assert_eq!(panics[0].index, 1);
    assert_eq!(panics[0].attempt, 0);
    assert!(
        panics[0].backoff_s > 0.0,
        "a retry is pending, so the incident records its backoff"
    );
    let _ = std::fs::remove_dir_all(&root);
}
