//! End-to-end fault-injection tests: the acceptance scenarios for the
//! robustness subsystem.
//!
//! 1. A seeded run corrupts ≥10% of all agents mid-run and the oscillator's
//!    dominance rotation, measured through [`RecoveryProbe`], returns to its
//!    pre-fault period statistics.
//! 2. A sweep containing a deliberately panicking and a deliberately
//!    hanging task completes, with both incidents captured in
//!    [`TaskResult`]s and the incident JSONL, while every other task slot
//!    holds its correct value.

use population_protocols::core::clocks::detect::{dominance_events, Dominance};
use population_protocols::core::clocks::diag::RecoveryProbe;
use population_protocols::core::clocks::oscillator::{
    central_init, Dk18Oscillator, Oscillator, NUM_SPECIES,
};
use population_protocols::core::engine::counts::CountPopulation;
use population_protocols::core::engine::faults::{CorruptMode, FaultSpec, FaultyPopulation};
use population_protocols::core::engine::json::{parse_jsonl, Json};
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::Simulator;
use population_protocols::core::engine::sweep::{
    incidents_to_jsonl, run_indexed_resilient, ResiliencePolicy, TaskResult,
};
use std::time::Duration;

/// Completed rotation periods as `(completion_time, period)` pairs: the
/// time between successive dominance events of the same species.
fn completed_periods(events: &[Dominance]) -> Vec<(f64, f64)> {
    let mut last_seen: [Option<f64>; NUM_SPECIES] = [None; NUM_SPECIES];
    let mut out = Vec::new();
    for e in events {
        if let Some(prev) = last_seen[e.species] {
            out.push((e.time, e.time - prev));
        }
        last_seen[e.species] = Some(e.time);
    }
    out
}

#[test]
fn corrupting_15_percent_of_agents_recovers_rotation_periods() {
    let n = 4_000u64;
    let fault_time = 120.0;
    let osc = Dk18Oscillator::new();
    let inner = CountPopulation::from_counts(&osc, &central_init(&osc, n, 12));
    let spec = FaultSpec::new(0xe2e).corrupt(fault_time, 0.15, CorruptMode::Randomize);
    let mut pop = FaultyPopulation::new(inner, &spec).expect("valid spec");
    let mut rng = SimRng::seed_from(9);
    let mut rows = Vec::new();
    while pop.time() < 420.0 {
        pop.step_batch(&mut rng, n);
        rows.push((pop.time(), osc.species_counts(&pop.counts())));
    }

    let injected = pop.events();
    assert_eq!(injected.len(), 1, "exactly one corruption fired");
    assert!(
        injected[0].hit >= n / 10,
        "must corrupt ≥10% of agents, hit {}",
        injected[0].hit
    );
    assert!((injected[0].time - fault_time).abs() < 1.0);

    // Pre-fault period statistics form the probe's band; post-fault
    // completed periods are sampled at their completion times. Recovery is
    // a streak of cycles whose period matches the pre-fault baseline.
    let events = dominance_events(&rows, 0.8);
    let all_periods = completed_periods(&events);
    let pre: Vec<f64> = all_periods
        .iter()
        .filter(|(t, _)| *t <= fault_time)
        .map(|(_, p)| *p)
        .collect();
    assert!(
        pre.len() >= 2,
        "baseline needs completed pre-fault cycles, got {}",
        pre.len()
    );
    let mut probe = RecoveryProbe::from_baseline(&pre, 0.35, 2);
    probe.mark_fault(fault_time);
    for &(t, p) in &all_periods {
        probe.sample(t, p);
    }
    let recovery = probe
        .recovered_at()
        .expect("rotation returns to pre-fault period statistics");
    assert!(recovery > fault_time);
    let rt = probe.recovery_time().expect("recovered_at implies a time");
    assert!(
        rt < 250.0,
        "recovery should happen well inside the run, took {rt}"
    );
}

#[test]
fn sweep_survives_panicking_and_hanging_tasks() {
    let policy = ResiliencePolicy {
        deadline: Duration::from_millis(400),
        retries: 0,
        ..ResiliencePolicy::default()
    };
    let (results, incidents) = run_indexed_resilient(6, 3, policy, |ctx| {
        match ctx.index {
            2 => panic!("injected failure in task {}", ctx.index),
            4 => {
                // Far past the deadline: the attempt is abandoned, not joined.
                std::thread::sleep(Duration::from_secs(30));
                unreachable!("hung task must be abandoned at its deadline")
            }
            _ => ctx.index * 10,
        }
    });

    assert_eq!(results.len(), 6);
    for (i, r) in results.iter().enumerate() {
        match i {
            2 => assert!(
                matches!(r, TaskResult::Panicked(msg) if msg.contains("injected failure")),
                "slot 2 captures the panic payload: {r:?}"
            ),
            4 => assert!(
                matches!(r, TaskResult::TimedOut),
                "slot 4 is a timeout: {r:?}"
            ),
            _ => assert_eq!(
                r.value(),
                Some(&(i * 10)),
                "healthy slot {i} holds its value"
            ),
        }
    }

    // Both failures appear in the incident log, and it round-trips through
    // the JSONL renderer/parser.
    let causes: Vec<&str> = incidents.iter().map(|i| i.cause).collect();
    assert!(causes.contains(&"panic"), "incidents: {incidents:?}");
    assert!(causes.contains(&"timeout"), "incidents: {incidents:?}");
    let records = parse_jsonl(&incidents_to_jsonl(&incidents)).expect("valid JSONL");
    assert_eq!(records.len(), incidents.len());
    for rec in &records {
        assert_eq!(
            rec.get("kind").and_then(Json::as_str),
            Some("sweep_incident")
        );
        assert!(rec.get("elapsed_s").and_then(Json::as_f64).is_some());
    }
}
