//! End-to-end checks on `ppsim profile`: the JSON report must attribute
//! nearly all dense-run wall time to named sections, keep the pmf-inversion
//! chain separately visible, and carry the regime-dispatch evidence.

use population_protocols::core::engine::json::{parse_jsonl, Json};
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ppsim-profile-{}-{name}", std::process::id()))
}

fn profile_json(args: &[&str]) -> Json {
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .arg("profile")
        .args(args)
        .arg("--json")
        .output()
        .expect("spawn ppsim profile");
    assert!(
        out.status.success(),
        "ppsim profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8 stdout");
    Json::parse(text.trim()).expect("profile --json emits one JSON document")
}

fn sections(doc: &Json) -> Vec<&Json> {
    doc.get("sections")
        .and_then(Json::as_arr)
        .expect("profile report carries sections")
        .iter()
        .collect()
}

#[test]
fn oscillator_profile_attributes_dense_wall_time() {
    let doc = profile_json(&["--builtin", "oscillator", "--n", "50000", "--rounds", "200"]);
    assert_eq!(
        doc.get("kind").and_then(Json::as_str),
        Some("profile_report")
    );

    // Acceptance bar: ≥ 90% of the dense-run wall time lands in named
    // sections. (In practice the top-level batch section alone covers it.)
    let frac = doc
        .get("attributed_frac")
        .and_then(Json::as_f64)
        .expect("attributed_frac present");
    assert!(
        frac >= 0.9,
        "profile attributed only {:.1}% of wall time",
        frac * 100.0
    );

    // The pmf-inversion chain is separately visible, attributed under the
    // collision-epoch stages rather than folded into them.
    let secs = sections(&doc);
    let pmf_calls: u64 = secs
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some("pmf_inversion"))
        .filter_map(|s| s.get("calls").and_then(Json::as_u64))
        .sum();
    assert!(pmf_calls > 0, "pmf_inversion sections never fired");
    let pmf_parents: Vec<&str> = secs
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some("pmf_inversion"))
        .filter_map(|s| s.get("parent").and_then(Json::as_str))
        .collect();
    assert!(
        pmf_parents
            .iter()
            .any(|p| ["epoch_margins", "epoch_rows", "epoch_settle"].contains(p)),
        "pmf_inversion not attributed under the epoch chain: {pmf_parents:?}"
    );
    for name in ["count_step_batch", "collision_epoch", "epoch_len_sample"] {
        assert!(
            secs.iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some(name)),
            "section {name} missing from the report"
        );
    }

    // Dense oscillator at this size runs in the collision regime — and at
    // n = 50000 the sharded super-epoch path engages from the first batch
    // (the plan table is complete and the window clears the epoch floor),
    // so the first dispatch record carries the sharded regime tag. The
    // logical epochs still tally under the plain collision counter.
    let regimes = doc.get("regimes").expect("regimes present");
    assert!(regimes.get("collision").and_then(Json::as_u64) > Some(0));
    assert!(regimes.get("sharded_rounds").and_then(Json::as_u64) > Some(0));
    assert!(doc.get("dispatch_records").and_then(Json::as_u64) > Some(0));
    assert_eq!(
        doc.get("first_regime").and_then(Json::as_str),
        Some("collision_sharded")
    );

    // The P² percentiles of the oscillator period came out of the run.
    let q = doc.get("quantiles").expect("quantiles present");
    assert_eq!(
        q.get("label").and_then(Json::as_str),
        Some("oscillator period (rounds)")
    );
    assert!(q.get("count").and_then(Json::as_u64) > Some(0));
    let p50 = q.get("p50").and_then(Json::as_f64).expect("p50 present");
    let p99 = q.get("p99").and_then(Json::as_f64).expect("p99 present");
    assert!(
        p50 > 0.0 && p99 >= p50,
        "percentiles disordered: {p50} {p99}"
    );
}

#[test]
fn profile_dispatch_log_is_valid_jsonl() {
    let path = tmp("dispatch.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args([
            "profile",
            "--builtin",
            "epidemic",
            "--n",
            "20000",
            "--rounds",
            "80",
        ])
        .arg("--dispatch")
        .arg(&path)
        .output()
        .expect("spawn ppsim profile");
    assert!(
        out.status.success(),
        "ppsim profile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("dispatch log written");
    let _ = std::fs::remove_file(&path);
    let records = parse_jsonl(&text).expect("dispatch log parses as JSONL");
    assert!(!records.is_empty(), "no dispatch records for a dense run");
    for rec in &records {
        assert_eq!(rec.get("kind").and_then(Json::as_str), Some("dispatch"));
        assert_eq!(
            rec.get("backend").and_then(Json::as_str),
            Some("CountPopulation")
        );
        let regime = rec.get("regime").and_then(Json::as_str).expect("regime");
        assert!(
            [
                "collision",
                "collision_sharded",
                "leap",
                "per_step",
                "dense_fallback",
                "silent"
            ]
            .contains(&regime),
            "unexpected regime {regime:?}"
        );
        let executed = rec
            .get("executed")
            .and_then(Json::as_u64)
            .expect("executed");
        let parts = rec.get("collision_epochs").and_then(Json::as_u64).unwrap()
            + rec.get("leaps").and_then(Json::as_u64).unwrap()
            + rec.get("per_steps").and_then(Json::as_u64).unwrap();
        // Every non-silent batch decomposes into at least one regime event.
        assert!(
            executed == 0 || parts > 0,
            "batch executed {executed} steps with no regime tallies"
        );
    }
    // The epidemic run crosses from the leap regime into collision epochs
    // as the infection spreads — the decision inputs must show p rising.
    let ps: Vec<f64> = records
        .iter()
        .filter_map(|r| r.get("p").and_then(Json::as_f64))
        .collect();
    assert!(ps.len() >= 2, "too few dispatch records with p");
    assert!(
        ps.last().unwrap() > ps.first().unwrap(),
        "reactive probability did not rise over the epidemic: {ps:?}"
    );
}
