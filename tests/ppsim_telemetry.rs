//! End-to-end telemetry check on the `ppsim` binary: `--metrics` and
//! `--trace` outputs must round-trip through the in-repo JSON readers.
//!
//! This is the same validation the CI smoke job performs, kept as a test so
//! it runs under plain `cargo test` too.

use population_protocols::core::engine::json::{parse_jsonl, Json};
use population_protocols::core::engine::metrics::MetricsReport;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ppsim-telemetry-{}-{name}", std::process::id()))
}

/// Runs `ppsim` with the given args plus `--metrics`/`--trace`, and returns
/// the parsed metrics report and trace records.
fn run_with_telemetry(label: &str, args: &[&str]) -> (MetricsReport, Vec<Json>) {
    let metrics_path = tmp(&format!("{label}.json"));
    let trace_path = tmp(&format!("{label}.jsonl"));
    let status = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args(args)
        .arg("--metrics")
        .arg(&metrics_path)
        .arg("--trace")
        .arg(&trace_path)
        .status()
        .expect("spawn ppsim");
    assert!(status.success(), "{label}: ppsim exited with {status}");

    let mtext = std::fs::read_to_string(&metrics_path).expect("read metrics file");
    let report = MetricsReport::parse(&mtext).expect("metrics file parses");
    let ttext = std::fs::read_to_string(&trace_path).expect("read trace file");
    let records = parse_jsonl(&ttext).expect("trace file parses as JSONL");
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(&trace_path);
    (report, records)
}

/// Every trace must contain the root `run` span with the command name and a
/// recorded exit code; all records carry the mandatory kind/name/t_s keys.
fn assert_trace_shape(records: &[Json], command: &str) {
    assert!(!records.is_empty(), "trace has records");
    for rec in records {
        let kind = rec.get("kind").and_then(Json::as_str).expect("kind");
        assert!(kind == "span" || kind == "event", "kind {kind:?}");
        assert!(rec.get("name").and_then(Json::as_str).is_some());
        assert!(rec.get("t_s").and_then(Json::as_f64).is_some());
    }
    let root = records
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("run"))
        .expect("root `run` span present");
    assert_eq!(root.get("command").and_then(Json::as_str), Some(command));
    assert_eq!(root.get("exit_code").and_then(Json::as_u64), Some(0));
    assert!(root.get("dur_s").and_then(Json::as_f64).is_some());
}

#[test]
fn leader_telemetry_round_trips() {
    // The CI smoke configuration. The w.h.p. leader program is resolved
    // entirely by the language executor (no engine backend), so engine
    // counters may legitimately all be zero — the check is that both files
    // exist and parse, and the trace records convergence.
    let (report, records) = run_with_telemetry("leader", &["leader", "--n", "2000"]);
    assert!(report.counter("interactions_executed") < u64::MAX);
    assert_trace_shape(&records, "leader");
    assert!(
        records
            .iter()
            .any(|r| r.get("name").and_then(Json::as_str) == Some("converged")),
        "leader trace records a converged event"
    );
}

#[test]
fn oscillator_telemetry_round_trips() {
    let (report, records) = run_with_telemetry(
        "oscillator",
        &["oscillator", "--n", "2000", "--rounds", "10", "--seed", "3"],
    );
    // The oscillator runs on CountPopulation, so the hot-path counters must
    // be live: 10 rounds at n = 2000 executes 20000 interactions.
    assert_eq!(report.counter("interactions_executed"), 20_000);
    assert!(report.counter("batches") > 0);
    assert!(report.hist_count("batch_size") > 0);
    assert_trace_shape(&records, "oscillator");
    assert!(
        records
            .iter()
            .any(|r| r.get("name").and_then(Json::as_str) == Some("batch")),
        "oscillator trace records per-batch events"
    );
}

#[test]
fn unknown_flag_is_a_hard_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args(["leader", "--n", "100", "--bogus", "1"])
        .output()
        .expect("spawn ppsim");
    assert!(!out.status.success(), "unknown flag must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag --bogus"), "stderr: {stderr}");
}
