//! Cross-crate integration tests: whole-pipeline behavior at moderate
//! population sizes with fixed seeds.

use population_protocols::core::clocks::junta::PairwiseElimination;
use population_protocols::core::clocks::oscillator::Dk18Oscillator;
use population_protocols::core::engine::obj::ObjPopulation;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::lang::ast::{build, Program, Thread};
use population_protocols::core::lang::compile::CompiledProtocol;
use population_protocols::core::lang::interp::Executor;
use population_protocols::core::protocols::leader::{leader_election, leader_election_exact};
use population_protocols::core::protocols::majority::{majority, majority_exact};
use population_protocols::core::protocols::plurality::plurality;
use population_protocols::core::rules::{Guard, VarSet};

#[test]
fn leader_election_scales_polylogarithmically() {
    // Iterations to a unique leader should grow like log n: going from
    // n = 64 to n = 4096 (64×) should far less than double the iteration
    // count on average.
    let program = leader_election();
    let l = program.vars.get("L").unwrap();
    let mean_iters = |n: u64| -> f64 {
        let runs = 5;
        let total: u64 = (0..runs)
            .map(|seed| {
                let mut exec = Executor::new(&program, &[(vec![], n)], 1000 + seed);
                exec.run_until(500, |e| e.count_where(&Guard::var(l)) == 1)
                    .expect("converges")
            })
            .sum();
        total as f64 / runs as f64
    };
    let small = mean_iters(64);
    let large = mean_iters(4096);
    assert!(
        large < small * 3.0,
        "64× population growth must not triple iterations: {small} -> {large}"
    );
}

#[test]
fn majority_correct_across_gaps_and_sizes() {
    let program = majority(3);
    let a = program.vars.get("A").unwrap();
    let b = program.vars.get("B").unwrap();
    let y = program.vars.get("Y_A").unwrap();
    for &(n, gap) in &[(200u64, 2u64), (200, 20), (1000, 2)] {
        let na = n / 2;
        let nb = n / 2 - gap;
        let blank = n - na - nb;
        let mut exec = Executor::new(
            &program,
            &[(vec![a], na), (vec![b], nb), (vec![], blank)],
            n * 7 + gap,
        );
        exec.run_iteration();
        assert_eq!(
            exec.count_where(&Guard::var(y)),
            n,
            "n={n} gap={gap}: unanimous A answer expected"
        );
    }
}

#[test]
fn exact_protocols_reach_certainty() {
    // LeaderElectionExact: run until the backstop pins the answer.
    let program = leader_election_exact();
    let l = program.vars.get("L").unwrap();
    let r = program.vars.get("R").unwrap();
    let mut exec = Executor::new(&program, &[(vec![], 48)], 9);
    exec.run_until(3_000, |e| {
        e.count_where(&Guard::var(r)) == 1 && e.count_where(&Guard::var(l)) == 1
    })
    .expect("exact leader election reaches the locked state");

    // MajorityExact: the slow thread empties the minority input.
    let program = majority_exact(2);
    let a = program.vars.get("A").unwrap();
    let b = program.vars.get("B").unwrap();
    let y = program.vars.get("Y_A").unwrap();
    let mut exec = Executor::new(&program, &[(vec![a], 26), (vec![b], 22)], 10);
    exec.run_until(500, |e| e.count_where(&Guard::var(b)) == 0)
        .expect("minority input exhausted");
    exec.run_iteration();
    assert_eq!(exec.count_where(&Guard::var(y)), 48, "output pinned to A");
}

#[test]
fn plurality_and_majority_agree_on_two_colors() {
    // With two colors, plurality must reduce to majority.
    let p2 = plurality(2, 2);
    let c1 = p2.vars.get("C1").unwrap();
    let c2 = p2.vars.get("C2").unwrap();
    let w1 = p2.vars.get("W1").unwrap();
    let mut exec = Executor::new(&p2, &[(vec![c1], 55), (vec![c2], 45)], 11);
    exec.run_iteration();
    assert_eq!(exec.count_where(&Guard::var(w1)), 100);
}

#[test]
fn compiled_program_runs_on_real_clocks() {
    // Small full-stack run: Y := X compiled onto the hierarchy.
    let mut vars = VarSet::new();
    let x = vars.add("X");
    let y = vars.add("Y");
    let program = Program {
        name: "copy".into(),
        vars,
        inputs: vec![x],
        outputs: vec![y],
        init: vec![],
        derived_init: vec![],
        threads: vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(y, Guard::var(x))],
        }],
    };
    let compiled = CompiledProtocol::new(
        &program,
        Dk18Oscillator::new(),
        PairwiseElimination::new(),
        6,
    );
    let n = 200usize;
    let mut pop = ObjPopulation::from_fn(&compiled, n, |i| {
        if i % 4 == 0 {
            compiled.initial_agent(&[x])
        } else {
            compiled.initial_agent(&[])
        }
    });
    let mut rng = SimRng::seed_from(12);
    let done = pop.run_until(&mut rng, 40_000.0, 512 * n as u64, |p| {
        p.count_where(|ag| y.is_set(ag.flags) == x.is_set(ag.flags)) == n as u64
    });
    assert!(
        done.is_some(),
        "compiled program completed under real clocks"
    );
}

#[test]
fn deterministic_given_seed() {
    // The whole stack is replayable: same seed, same trajectory.
    let program = leader_election();
    let l = program.vars.get("L").unwrap();
    let run = |seed: u64| -> (u64, f64) {
        let mut exec = Executor::new(&program, &[(vec![], 256)], seed);
        let it = exec
            .run_until(500, |e| e.count_where(&Guard::var(l)) == 1)
            .unwrap();
        (it, exec.rounds())
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77), run(78), "different seeds should differ");
}
