//! Parallel sharded collision epochs: thread-count independence and
//! statistical exactness at the scales where sharding engages.
//!
//! The sharded super-epoch path (`pardense`) decomposes a batch's collision
//! window into a fixed number of logical shards whose budgets, seeds, and
//! merge order are pure functions of the main RNG stream — worker threads
//! only decide *who computes* each shard. These tests pin the two contracts
//! that design buys:
//!
//! 1. **Byte-identity**: the same seed yields byte-identical traces,
//!    metrics, and snapshot/resume behavior at every thread setting
//!    (including auto), on both dense backends.
//! 2. **Distribution-exactness in practice**: per-run observables under
//!    sharded batching match per-interaction stepping by chi-square at the
//!    population scale where sharding actually runs.

use population_protocols::core::engine::accel::AcceleratedPopulation;
use population_protocols::core::engine::counts::CountPopulation;
use population_protocols::core::engine::json::{to_jsonl, Json};
use population_protocols::core::engine::metrics;
use population_protocols::core::engine::protocol::TableProtocol;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::{Simulator, StepOutcome};
use population_protocols::core::engine::snapshot::RunSnapshot;
use population_protocols::core::engine::stats::{chi_square_p_value, chi_square_two_sample};

/// 3-state cycle: keeps every state populated (nontrivial chi-square
/// categories) and is fully enumerable, so the plan table is complete and
/// the sharded path engages.
fn cycle3() -> TableProtocol {
    TableProtocol::new(3, "cycle3")
        .rule(0, 1, 1, 1)
        .rule(1, 2, 2, 2)
        .rule(2, 0, 0, 0)
}

/// Population large enough that `pardense::eligible` holds for whole-`n`
/// batches: the n/16 window (3000) clears the 16-epoch floor
/// (16 · 0.6267·√48000 ≈ 2196).
const SHARD_N: [u64; 3] = [20_000, 14_000, 14_000];

fn shard_n_total() -> u64 {
    SHARD_N.iter().sum()
}

/// One `(steps, counts)` trace row.
fn row_json<S: Simulator + ?Sized>(pop: &S) -> Json {
    Json::obj([
        ("steps", Json::from(pop.steps())),
        (
            "counts",
            Json::arr(pop.counts().into_iter().map(Json::from)),
        ),
    ])
}

/// Runs `rounds` whole-`n` batches at the given thread setting and returns
/// the JSONL trace, the rendered metrics report, and the `shard_rounds`
/// counter. When `cut` is set, the run is interrupted there: checkpointed
/// through the full on-disk snapshot encoding (metrics attached), torn
/// down, and resumed into a fresh simulator — the `ppsim resume` flow.
fn run_counts(seed: u64, rounds: u64, threads: usize, cut: Option<u64>) -> (String, String, u64) {
    let n = shard_n_total();
    metrics::reset();
    metrics::enable();
    let mut pop = CountPopulation::from_counts(cycle3(), &SHARD_N);
    pop.set_threads(threads);
    let mut rng = SimRng::seed_from(seed);
    let mut rows = Vec::new();
    let mut round = 0;
    while round < rounds {
        if cut == Some(round) {
            let text = RunSnapshot::capture(&pop, &rng)
                .expect("counts backend snapshots")
                .with_metrics(metrics::snapshot())
                .encode();
            // The "process" dies here; everything restarts from the bytes.
            drop(pop);
            metrics::reset();
            metrics::enable();
            let snap = RunSnapshot::decode(&text).expect("snapshot round-trips");
            pop = CountPopulation::from_counts(cycle3(), &SHARD_N);
            pop.set_threads(threads);
            rng = snap.resume_into(&mut pop).expect("resume succeeds");
            metrics::load(snap.metrics.as_ref().expect("metrics attached"));
        }
        let out = pop.step_batch(&mut rng, n);
        rows.push(row_json(&pop));
        assert!(!(out.silent && out.executed == 0), "cycle3 never silences");
        round += 1;
    }
    let report = metrics::snapshot();
    let shard_rounds = report.counter("shard_rounds");
    let rendered = report.to_json().render();
    metrics::disable();
    (to_jsonl(&rows), rendered, shard_rounds)
}

/// Same shape for the accelerated backend (no snapshot interruption: its
/// resume path shares the counts machinery and is covered by the existing
/// determinism suite).
fn run_accel(seed: u64, rounds: u64, threads: usize) -> (String, String, u64) {
    let n = shard_n_total();
    metrics::reset();
    metrics::enable();
    let mut pop = AcceleratedPopulation::from_counts(cycle3(), &SHARD_N);
    pop.set_threads(threads);
    let mut rng = SimRng::seed_from(seed);
    let mut rows = Vec::new();
    for _ in 0..rounds {
        let out = pop.step_batch(&mut rng, n);
        rows.push(row_json(&pop));
        assert!(!(out.silent && out.executed == 0), "cycle3 never silences");
    }
    let report = metrics::snapshot();
    let shard_rounds = report.counter("shard_rounds");
    let rendered = report.to_json().render();
    metrics::disable();
    (to_jsonl(&rows), rendered, shard_rounds)
}

/// One `#[test]` for everything touching the process-global metrics
/// registry, so concurrent tests cannot interleave with the byte-compared
/// runs (same discipline as `tests/determinism.rs`).
#[test]
fn sharded_runs_are_byte_identical_across_thread_counts() {
    let rounds = 6;
    let (trace_ref, metrics_ref, shard_rounds) = run_counts(0x5eed, rounds, 1, None);
    assert!(
        shard_rounds > 0,
        "sharding must actually engage at n = {} (got 0 shard rounds)",
        shard_n_total()
    );
    // 0 = auto resolution (PP_THREADS / available_parallelism): the
    // physical worker count must be invisible in every artifact.
    for threads in [0usize, 2, 4, 8] {
        let (trace, metrics_text, sr) = run_counts(0x5eed, rounds, threads, None);
        assert_eq!(
            trace_ref, trace,
            "counts trace must be byte-identical at threads={threads}"
        );
        assert_eq!(
            metrics_ref, metrics_text,
            "counts metrics must be byte-identical at threads={threads}"
        );
        assert_eq!(shard_rounds, sr);
    }
    // Interrupt/resume mid-run, at a *different* thread setting than the
    // reference: the snapshot carries no thread state, and the trajectory
    // must still replay byte-identically.
    for threads in [2usize, 4] {
        let (trace, metrics_text, _) = run_counts(0x5eed, rounds, threads, Some(3));
        assert_eq!(
            trace_ref, trace,
            "resumed counts trace must be byte-identical at threads={threads}"
        );
        assert_eq!(
            metrics_ref, metrics_text,
            "resumed counts metrics must be byte-identical at threads={threads}"
        );
    }

    let (atrace_ref, ametrics_ref, ashard_rounds) = run_accel(0xacce1, rounds, 1);
    assert!(ashard_rounds > 0, "sharding engages on the accel backend");
    for threads in [0usize, 2, 4] {
        let (trace, metrics_text, _) = run_accel(0xacce1, rounds, threads);
        assert_eq!(
            atrace_ref, trace,
            "accel trace must be byte-identical at threads={threads}"
        );
        assert_eq!(
            ametrics_ref, metrics_text,
            "accel metrics must be byte-identical at threads={threads}"
        );
    }
}

// --- statistical equivalence at sharding scale ---------------------------

/// Runs and observation count for the chi-square suite. The population is
/// 48k agents, so runs are costly; 60 runs with 6 bins keeps expected
/// bin counts ≈ 10.
const CHI_RUNS: u64 = 60;

/// Per-run observable: the state-0 count after one parallel round (n
/// interactions), driven either per-interaction or through `step_batch`
/// chunks big enough for the sharded path (chunk 2_971 keeps every window
/// above the 16-epoch floor while not dividing the target, exercising
/// batch-boundary truncation).
fn chi_observations(seed_base: u64, batched: Option<usize>) -> Vec<f64> {
    let n = shard_n_total();
    let target = n; // one parallel round
    (0..CHI_RUNS)
        .map(|run| {
            let mut pop = CountPopulation::from_counts(cycle3(), &SHARD_N);
            let mut rng = SimRng::seed_from(seed_base + run);
            if let Some(threads) = batched {
                pop.set_threads(threads);
                while pop.steps() < target {
                    let out = pop.step_batch(&mut rng, (target - pop.steps()).min(2_971));
                    assert!(!(out.silent || out.executed == 0));
                }
            } else {
                while pop.steps() < target {
                    assert_ne!(pop.step(&mut rng), StepOutcome::Silent);
                }
            }
            pop.count(0) as f64
        })
        .collect()
}

/// Bins two samples on a shared equal-width grid and chi-squares the
/// histograms (same construction as `tests/backend_equivalence.rs`).
fn binned_chi_square(a: &[f64], b: &[f64], bins: usize) -> (f64, usize, f64) {
    let lo = a.iter().chain(b).fold(f64::INFINITY, |m, &v| m.min(v));
    let hi = a.iter().chain(b).fold(0.0f64, |m, &v| m.max(v));
    let width = (hi - lo + 1e-9) / bins as f64;
    let hist = |data: &[f64]| {
        let mut h = vec![0u64; bins];
        for &v in data {
            h[(((v - lo) / width) as usize).min(bins - 1)] += 1;
        }
        h
    };
    let (stat, dof) = chi_square_two_sample(&hist(a), &hist(b));
    let p = chi_square_p_value(stat, dof);
    (stat, dof, p)
}

#[test]
fn sharded_step_batch_matches_stepwise_distribution() {
    let stepwise = chi_observations(9_000, None);
    let batched_t1 = chi_observations(77_000, Some(1));
    let (stat, dof, p) = binned_chi_square(&stepwise, &batched_t1, 6);
    assert!(
        p > 0.001,
        "stepwise vs sharded step_batch differ \
         (chi² = {stat:.2}, dof = {dof}, p = {p:.5})"
    );
    // The batched trajectory is thread-count independent by construction,
    // so the t=2 and t=4 samples must be *equal* to the t=1 sample — a
    // sharper statement than passing the same chi-square test again.
    for threads in [2usize, 4] {
        let batched = chi_observations(77_000, Some(threads));
        assert_eq!(
            batched_t1, batched,
            "batched observables must be identical at threads={threads}"
        );
    }
}
