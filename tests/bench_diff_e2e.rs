//! End-to-end checks on `ppsim bench-diff`: exit 0 when current rates hold,
//! exit 1 on a regression beyond tolerance (the CI gate's red path), exit 2
//! on unusable input. Fixtures use the same record schema that
//! `pp_bench::history` appends to `BENCH_history.jsonl`.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ppsim-benchdiff-{}-{name}", std::process::id()))
}

fn history_line(n: u64, metric: &str, rate: f64) -> String {
    format!(
        "{{\"kind\":\"bench_run\",\"bench\":\"engine_dense\",\"scenario\":\"dense_cycle3\",\
         \"n\":{n},\"metric\":\"{metric}\",\"rate\":{rate},\"git_rev\":\"abc1234\",\
         \"unix_ts\":1754600000}}\n"
    )
}

fn write_history(name: &str, rows: &[(u64, &str, f64)]) -> PathBuf {
    let path = tmp(name);
    let text: String = rows
        .iter()
        .map(|&(n, metric, rate)| history_line(n, metric, rate))
        .collect();
    std::fs::write(&path, text).expect("write fixture");
    path
}

fn bench_diff(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .arg("bench-diff")
        .args(args)
        .output()
        .expect("spawn ppsim bench-diff");
    let code = out.status.code().expect("exit code");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (code, text)
}

#[test]
fn unchanged_rates_pass() {
    let base = write_history(
        "same-base.jsonl",
        &[
            (10_000, "batch_per_sec", 2.0e8),
            (1_000_000, "batch_per_sec", 3.0e8),
        ],
    );
    let cur = write_history(
        "same-cur.jsonl",
        &[
            (10_000, "batch_per_sec", 2.0e8),
            (1_000_000, "batch_per_sec", 3.0e8),
        ],
    );
    let (code, text) = bench_diff(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(code, 0, "identical snapshots must pass: {text}");
    assert!(
        !text.contains("REGRESSION"),
        "no key should regress: {text}"
    );
}

#[test]
fn thirty_percent_slowdown_fails() {
    // The CI acceptance scenario: an injected 30% slowdown must turn the
    // default 25%-tolerance gate red.
    let base = write_history("slow-base.jsonl", &[(1_000_000, "batch_per_sec", 3.0e8)]);
    let cur = write_history("slow-cur.jsonl", &[(1_000_000, "batch_per_sec", 2.1e8)]);
    let (code, text) = bench_diff(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(code, 1, "30% slowdown must fail the default gate: {text}");
    assert!(
        text.contains("REGRESSION"),
        "regression not reported: {text}"
    );

    // The same drop passes when the caller widens the tolerance.
    let (code, text) = bench_diff(&[
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--tolerance-pct",
        "50",
    ]);
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(code, 0, "50% tolerance must absorb a 30% drop: {text}");
}

#[test]
fn speedups_and_new_keys_pass() {
    let base = write_history("up-base.jsonl", &[(1_000_000, "batch_per_sec", 3.0e8)]);
    let cur = write_history(
        "up-cur.jsonl",
        &[
            (1_000_000, "batch_per_sec", 4.5e8),
            (1_000_000, "step_per_sec", 1.0e6), // new key: no baseline, ignored
        ],
    );
    let (code, text) = bench_diff(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(code, 0, "a speedup is never a regression: {text}");
}

#[test]
fn last_record_per_key_wins() {
    // History files are append-only; only the newest record per key counts.
    let base = write_history(
        "dup-base.jsonl",
        &[
            (1_000_000, "batch_per_sec", 9.0e8), // stale entry, superseded below
            (1_000_000, "batch_per_sec", 3.0e8),
        ],
    );
    let cur = write_history("dup-cur.jsonl", &[(1_000_000, "batch_per_sec", 2.9e8)]);
    let (code, text) = bench_diff(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(
        code, 0,
        "diff must compare against the latest baseline record, not a stale one: {text}"
    );
}

#[test]
fn unusable_input_exits_two() {
    // Disjoint keys: an empty comparison must not silently pass CI.
    let base = write_history("disjoint-base.jsonl", &[(10_000, "batch_per_sec", 3.0e8)]);
    let cur = write_history("disjoint-cur.jsonl", &[(99_999, "batch_per_sec", 3.0e8)]);
    let (code, text) = bench_diff(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    let _ = std::fs::remove_file(&base);
    let _ = std::fs::remove_file(&cur);
    assert_eq!(code, 2, "zero shared keys must be an error: {text}");

    // Missing file.
    let missing = tmp("no-such-file.jsonl");
    let (code, _) = bench_diff(&[missing.to_str().unwrap(), missing.to_str().unwrap()]);
    assert_eq!(code, 2, "missing input must be a usage error");

    // Malformed JSONL.
    let garbage = tmp("garbage.jsonl");
    std::fs::write(&garbage, "this is not json\n").expect("write fixture");
    let (code, _) = bench_diff(&[garbage.to_str().unwrap(), garbage.to_str().unwrap()]);
    let _ = std::fs::remove_file(&garbage);
    assert_eq!(code, 2, "malformed history must be an error");

    // Bad tolerance.
    let base = write_history("tol-base.jsonl", &[(10_000, "batch_per_sec", 3.0e8)]);
    let (code, _) = bench_diff(&[
        base.to_str().unwrap(),
        base.to_str().unwrap(),
        "--tolerance-pct",
        "100",
    ]);
    let _ = std::fs::remove_file(&base);
    assert_eq!(code, 2, "tolerance must lie in [0, 100)");
}
