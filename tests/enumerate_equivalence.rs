//! Compiled-vs-interpreted equivalence for the enumeration backend: the
//! `EnumExecutor` (dense live-state ids + `RuleTableProtocol` tables on
//! `CountPopulation`) must realize the same stochastic process as the
//! reference interpreter (`Executor` over the full packed state space) on
//! the three protocols that exceed the precompile flag budget — plurality,
//! exact-three plurality, and the exact semilinear comparison.
//!
//! Per protocol, one independent observation per seeded run (the count of
//! a stochastic flag at a fixed iteration count), binned chi-square
//! between the two backends' samples at α = 0.001 — the pattern of
//! `tests/backend_equivalence.rs`.

use population_protocols::core::engine::stats::{chi_square_p_value, chi_square_two_sample};
use population_protocols::core::lang::ast::Program;
use population_protocols::core::lang::enumerate::EnumExecutor;
use population_protocols::core::lang::interp::Executor;
use population_protocols::core::protocols::plurality::{plurality, plurality_exact_three};
use population_protocols::core::protocols::semilinear::semilinear_comparison_exact;
use population_protocols::core::rules::{Guard, Var};

const RUNS: u64 = 40;

/// Bins two samples on a shared equal-width grid and chi-squares the
/// histograms. Each sample element must be an independent observation.
fn binned_chi_square(a: &[f64], b: &[f64], bins: usize) -> (f64, usize, f64) {
    let max = a.iter().chain(b).fold(0.0f64, |m, &v| m.max(v));
    let width = (max + 1e-9) / bins as f64;
    let hist = |data: &[f64]| {
        let mut h = vec![0u64; bins];
        for &v in data {
            h[((v / width) as usize).min(bins - 1)] += 1;
        }
        h
    };
    let (stat, dof) = chi_square_two_sample(&hist(a), &hist(b));
    let p = chi_square_p_value(stat, dof);
    (stat, dof, p)
}

/// One observation per seeded run from each backend, then the chi-square
/// homogeneity check. The observable must be genuinely stochastic at the
/// chosen iteration count, otherwise both histograms collapse into one
/// bin and the test passes vacuously — guarded by a spread assertion.
fn assert_backends_equivalent(
    name: &str,
    program: &Program,
    groups: &[(Vec<Var>, u64)],
    iterations: u64,
    observe: &Guard,
    seed_base: u64,
) {
    let interpreted: Vec<f64> = (0..RUNS)
        .map(|run| {
            let mut exec = Executor::new(program, groups, seed_base + run);
            for _ in 0..iterations {
                exec.run_iteration();
            }
            exec.count_where(observe) as f64
        })
        .collect();
    let enumerated: Vec<f64> = (0..RUNS)
        .map(|run| {
            let mut exec = EnumExecutor::new(program, groups, seed_base + 50_000 + run)
                .expect("enumeration compiles this protocol");
            for _ in 0..iterations {
                exec.run_iteration();
            }
            exec.count_where(observe) as f64
        })
        .collect();

    let spread = |s: &[f64]| {
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        max - min
    };
    assert!(
        spread(&interpreted) > 0.0 || spread(&enumerated) > 0.0,
        "{name}: observable is degenerate on both backends — pick another flag"
    );

    let (stat, dof, p) = binned_chi_square(&interpreted, &enumerated, 5);
    assert!(
        p > 0.001,
        "{name}: interpreted vs enumerated distributions differ \
         (chi² = {stat:.2}, dof = {dof}, p = {p:.5})"
    );
}

/// Plurality over 3 colors (26 projected bits — beyond the flag budget):
/// at an exact tie between colors 1 and 2 the crowned winner is a fair
/// coin of the duel scheduler, so the `W2` count after one iteration is a
/// genuinely stochastic (≈ Bernoulli · n) observable.
#[test]
fn plurality_compiled_matches_interpreter() {
    let program = plurality(3, 2);
    let c: Vec<Var> = (1..=3)
        .map(|i| program.vars.get(&format!("C{i}")).unwrap())
        .collect();
    let w2 = program.vars.get("W2").unwrap();
    let groups = vec![(vec![c[0]], 31u64), (vec![c[1]], 31), (vec![c[2]], 28)];
    assert_backends_equivalent(
        "plurality(3,2)",
        &program,
        &groups,
        1,
        &Guard::var(w2),
        9_000,
    );
}

/// Exact-three plurality (33 projected bits): the slow-threshold
/// oscillator flag `T12O` keeps flipping, so its per-agent count at a
/// fixed iteration is a stochastic snapshot.
#[test]
fn plurality_exact_three_compiled_matches_interpreter() {
    let program = plurality_exact_three();
    let c: Vec<Var> = (1..=3)
        .map(|i| program.vars.get(&format!("C{i}")).unwrap())
        .collect();
    let t12o = program.vars.get("T12O").unwrap();
    let groups = vec![(vec![c[0]], 22u64), (vec![c[1]], 20), (vec![c[2]], 18)];
    assert_backends_equivalent(
        "plurality_exact_three",
        &program,
        &groups,
        1,
        &Guard::var(t12o),
        19_000,
    );
}

/// Exact semilinear comparison `[#A − #B ≥ 1]` (21 projected bits on the
/// main thread): at `#A = #B` the cancellation/doubling survivors `A'`
/// after one iteration are scheduler-random.
#[test]
fn semilinear_comparison_compiled_matches_interpreter() {
    let program = semilinear_comparison_exact(1);
    let a = program.vars.get("A").unwrap();
    let b = program.vars.get("B").unwrap();
    let a_star = program.vars.get("A'").unwrap();
    let groups = vec![(vec![a], 26u64), (vec![b], 26), (vec![], 8)];
    assert_backends_equivalent(
        "semilinear_comparison_exact",
        &program,
        &groups,
        1,
        &Guard::var(a_star),
        29_000,
    );
}

/// The compiled path must also agree on the *answer*, not just on
/// intermediate distributions: plurality crowns the true plurality color
/// on every seed once the duels have run.
#[test]
fn plurality_compiled_answers_correctly() {
    let program = plurality(3, 2);
    let c: Vec<Var> = (1..=3)
        .map(|i| program.vars.get(&format!("C{i}")).unwrap())
        .collect();
    let w2 = program.vars.get("W2").unwrap();
    for seed in 0..5u64 {
        let mut exec = EnumExecutor::new(
            &program,
            &[(vec![c[0]], 20), (vec![c[1]], 50), (vec![c[2]], 30)],
            seed * 13 + 1,
        )
        .expect("enumeration compiles plurality");
        exec.run_iteration();
        assert_eq!(
            exec.count_where(&Guard::var(w2)),
            100,
            "seed {seed}: color 2 must win"
        );
    }
}
