//! Replay determinism: the same `(seed, backend, protocol)` triple must
//! yield byte-identical trace, fault-event, and metrics output across two
//! runs, for all five backends under fault injection.
//!
//! This is what makes injected-fault debugging workable: any incident from
//! a sweep or CI run replays exactly from its seed, fault RNG included.
//!
//! The whole check is one `#[test]` because the metrics registry is
//! process-global; a single test keeps the two runs being compared from
//! interleaving with anything else.

use population_protocols::core::engine::accel::AcceleratedPopulation;
use population_protocols::core::engine::counts::{CountPopulation, SparseCountPopulation};
use population_protocols::core::engine::faults::{CorruptMode, FaultSpec, FaultyPopulation};
use population_protocols::core::engine::json::{to_jsonl, Json};
use population_protocols::core::engine::matching::MatchingPopulation;
use population_protocols::core::engine::metrics;
use population_protocols::core::engine::population::Population;
use population_protocols::core::engine::protocol::TableProtocol;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::Simulator;

/// Rock-paper-scissors cycling: never silent, touches every state.
fn rps() -> TableProtocol {
    TableProtocol::new(3, "rps")
        .rule(0, 1, 0, 0)
        .rule(1, 2, 1, 1)
        .rule(2, 0, 2, 2)
}

/// A plan mixing all three injector kinds, compiled fresh per run.
fn spec() -> FaultSpec {
    FaultSpec::new(0xdead)
        .corrupt(4.0, 0.1, CorruptMode::Randomize)
        .churn(2.0, 0.05, 1)
        .byzantine(100, 0, 3.0)
}

/// Runs a faulty population for `rounds` rounds and returns every
/// deterministic artifact: a JSONL trace of `(steps, counts)` rows, the
/// fault-event JSONL, and the rendered metrics snapshot.
fn run_once<S: Simulator>(inner: S, seed: u64, n: u64, rounds: u64) -> (String, String, String) {
    metrics::reset();
    metrics::enable();
    let mut pop = FaultyPopulation::new(inner, &spec()).expect("valid spec");
    let mut rng = SimRng::seed_from(seed);
    let mut rows = Vec::new();
    for _ in 0..rounds {
        let out = pop.step_batch(&mut rng, n);
        rows.push(Json::obj([
            ("steps", Json::from(pop.steps())),
            (
                "counts",
                Json::arr(pop.counts().into_iter().map(Json::from)),
            ),
        ]));
        if out.silent && out.executed == 0 {
            break;
        }
    }
    let report = metrics::snapshot().to_json().render();
    metrics::disable();
    (to_jsonl(&rows), pop.events_jsonl(), report)
}

#[test]
fn same_seed_same_backend_is_byte_identical() {
    let n = 1_000u64;
    let counts = [400u64, 300, 300];
    let seed = 2718;
    let rounds = 12;
    let backends: &[&str] = &["agents", "counts", "sparse", "accel", "matching"];
    for &backend in backends {
        let run = || {
            let p = rps();
            match backend {
                "agents" => run_once(Population::from_counts(&p, &counts), seed, n, rounds),
                "counts" => run_once(CountPopulation::from_counts(&p, &counts), seed, n, rounds),
                "sparse" => run_once(
                    SparseCountPopulation::from_dense(&p, &counts),
                    seed,
                    n,
                    rounds,
                ),
                "accel" => run_once(
                    AcceleratedPopulation::from_counts(&p, &counts),
                    seed,
                    n,
                    rounds,
                ),
                "matching" => run_once(
                    MatchingPopulation::from_counts(&p, &counts),
                    seed,
                    n,
                    rounds,
                ),
                _ => unreachable!("unknown backend"),
            }
        };
        let (trace_a, events_a, metrics_a) = run();
        let (trace_b, events_b, metrics_b) = run();
        assert!(!trace_a.is_empty(), "{backend}: trace is non-trivial");
        assert!(
            !events_a.is_empty(),
            "{backend}: fault events actually fired"
        );
        assert_eq!(trace_a, trace_b, "{backend}: trace must replay exactly");
        assert_eq!(
            events_a, events_b,
            "{backend}: fault events must replay exactly"
        );
        assert_eq!(
            metrics_a, metrics_b,
            "{backend}: metrics must replay exactly"
        );
    }
}
