//! Replay determinism: the same `(seed, backend, protocol)` triple must
//! yield byte-identical trace, fault-event, and metrics output across two
//! runs, for all five backends under fault injection.
//!
//! This is what makes injected-fault debugging workable: any incident from
//! a sweep or CI run replays exactly from its seed, fault RNG included.
//!
//! The whole check is one `#[test]` because the metrics registry is
//! process-global; a single test keeps the two runs being compared from
//! interleaving with anything else.

use population_protocols::core::engine::accel::AcceleratedPopulation;
use population_protocols::core::engine::counts::{CountPopulation, SparseCountPopulation};
use population_protocols::core::engine::faults::{CorruptMode, FaultSpec, FaultyPopulation};
use population_protocols::core::engine::json::{to_jsonl, Json};
use population_protocols::core::engine::matching::MatchingPopulation;
use population_protocols::core::engine::metrics;
use population_protocols::core::engine::population::Population;
use population_protocols::core::engine::protocol::TableProtocol;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::Simulator;
use population_protocols::core::engine::snapshot::RunSnapshot;

/// Rock-paper-scissors cycling: never silent, touches every state.
fn rps() -> TableProtocol {
    TableProtocol::new(3, "rps")
        .rule(0, 1, 0, 0)
        .rule(1, 2, 1, 1)
        .rule(2, 0, 2, 2)
}

/// A plan mixing all three injector kinds, compiled fresh per run.
fn spec() -> FaultSpec {
    FaultSpec::new(0xdead)
        .corrupt(4.0, 0.1, CorruptMode::Randomize)
        .churn(2.0, 0.05, 1)
        .byzantine(100, 0, 3.0)
}

/// One `(steps, counts)` trace row.
fn row_json<S: Simulator + ?Sized>(pop: &S) -> Json {
    Json::obj([
        ("steps", Json::from(pop.steps())),
        (
            "counts",
            Json::arr(pop.counts().into_iter().map(Json::from)),
        ),
    ])
}

/// Runs a faulty population for `rounds` rounds and returns every
/// deterministic artifact: a JSONL trace of `(steps, counts)` rows, the
/// fault-event JSONL, and the rendered metrics snapshot.
fn run_once<S: Simulator>(inner: S, seed: u64, n: u64, rounds: u64) -> (String, String, String) {
    metrics::reset();
    metrics::enable();
    let mut pop = FaultyPopulation::new(inner, &spec()).expect("valid spec");
    let mut rng = SimRng::seed_from(seed);
    let mut rows = Vec::new();
    for _ in 0..rounds {
        let out = pop.step_batch(&mut rng, n);
        rows.push(row_json(&pop));
        if out.silent && out.executed == 0 {
            break;
        }
    }
    let report = metrics::snapshot().to_json().render();
    metrics::disable();
    (to_jsonl(&rows), pop.events_jsonl(), report)
}

/// Runs the same scenario but "crashes" at round `cut`: checkpoints there
/// (metrics attached, via the full on-disk text encoding), discards the
/// simulator and the metrics registry, then restores into a freshly built
/// simulator — exactly what `ppsim resume` does after a SIGKILL — and
/// finishes the run. The returned artifacts must be byte-identical to
/// [`run_once`]'s.
fn run_interrupted<S: Simulator>(
    make: impl Fn() -> S,
    seed: u64,
    n: u64,
    rounds: u64,
    cut: u64,
) -> (String, String, String) {
    // Build before enabling metrics, matching `run_once`'s call-site
    // argument evaluation — construction-time counter bumps are not part
    // of the recorded run in either flow.
    let inner = make();
    metrics::reset();
    metrics::enable();
    let mut pop = FaultyPopulation::new(inner, &spec()).expect("valid spec");
    let mut rng = SimRng::seed_from(seed);
    let mut rows = Vec::new();
    for _ in 0..cut {
        let out = pop.step_batch(&mut rng, n);
        rows.push(row_json(&pop));
        assert!(!(out.silent && out.executed == 0), "rps never goes silent");
    }
    let text = RunSnapshot::capture(&pop, &rng)
        .expect("faulty wrapper snapshots")
        .with_metrics(metrics::snapshot())
        .encode();
    // The "process" dies here: simulator and registry both start over.
    drop(pop);
    metrics::reset();
    metrics::enable();
    let snap = RunSnapshot::decode(&text).expect("snapshot survives the disk round-trip");
    let mut pop = FaultyPopulation::new(make(), &spec()).expect("valid spec");
    let mut rng = snap
        .resume_into(&mut pop)
        .expect("resume into a fresh simulator");
    // Load the saved registry AFTER restore, so restore-time counter bumps
    // (cache rebuilds) cannot desynchronize the metrics stream.
    metrics::load(snap.metrics.as_ref().expect("metrics attached"));
    for _ in cut..rounds {
        let out = pop.step_batch(&mut rng, n);
        rows.push(row_json(&pop));
        if out.silent && out.executed == 0 {
            break;
        }
    }
    let report = metrics::snapshot().to_json().render();
    metrics::disable();
    (to_jsonl(&rows), pop.events_jsonl(), report)
}

/// Replays every backend twice on one scenario and asserts byte equality
/// of trace, fault events, and metrics.
fn assert_replay_byte_identical(scenario: &str, counts: &[u64], seed: u64, rounds: u64) {
    let n: u64 = counts.iter().sum();
    let backends: &[&str] = &["agents", "counts", "sparse", "accel", "matching"];
    for &backend in backends {
        let run = || {
            let p = rps();
            match backend {
                "agents" => run_once(Population::from_counts(&p, counts), seed, n, rounds),
                "counts" => run_once(CountPopulation::from_counts(&p, counts), seed, n, rounds),
                "sparse" => run_once(
                    SparseCountPopulation::from_dense(&p, counts),
                    seed,
                    n,
                    rounds,
                ),
                "accel" => run_once(
                    AcceleratedPopulation::from_counts(&p, counts),
                    seed,
                    n,
                    rounds,
                ),
                "matching" => {
                    run_once(MatchingPopulation::from_counts(&p, counts), seed, n, rounds)
                }
                _ => unreachable!("unknown backend"),
            }
        };
        let (trace_a, events_a, metrics_a) = run();
        let (trace_b, events_b, metrics_b) = run();
        assert!(
            !trace_a.is_empty(),
            "{scenario}/{backend}: trace is non-trivial"
        );
        assert!(
            !events_a.is_empty(),
            "{scenario}/{backend}: fault events actually fired"
        );
        assert_eq!(
            trace_a, trace_b,
            "{scenario}/{backend}: trace must replay exactly"
        );
        assert_eq!(
            events_a, events_b,
            "{scenario}/{backend}: fault events must replay exactly"
        );
        assert_eq!(
            metrics_a, metrics_b,
            "{scenario}/{backend}: metrics must replay exactly"
        );
    }
}

/// Interrupts every backend at round `cut`, resumes from the checkpoint,
/// and asserts the continued run's trace, fault events, and metrics are
/// byte-identical to the uninterrupted run's.
fn assert_interrupt_resume_byte_identical(
    scenario: &str,
    counts: &[u64],
    seed: u64,
    rounds: u64,
    cut: u64,
) {
    let n: u64 = counts.iter().sum();
    let backends: &[&str] = &["agents", "counts", "sparse", "accel", "matching"];
    for &backend in backends {
        let p = rps();
        let full = match backend {
            "agents" => run_once(Population::from_counts(&p, counts), seed, n, rounds),
            "counts" => run_once(CountPopulation::from_counts(&p, counts), seed, n, rounds),
            "sparse" => run_once(
                SparseCountPopulation::from_dense(&p, counts),
                seed,
                n,
                rounds,
            ),
            "accel" => run_once(
                AcceleratedPopulation::from_counts(&p, counts),
                seed,
                n,
                rounds,
            ),
            "matching" => run_once(MatchingPopulation::from_counts(&p, counts), seed, n, rounds),
            _ => unreachable!("unknown backend"),
        };
        let resumed = match backend {
            "agents" => {
                run_interrupted(|| Population::from_counts(&p, counts), seed, n, rounds, cut)
            }
            "counts" => run_interrupted(
                || CountPopulation::from_counts(&p, counts),
                seed,
                n,
                rounds,
                cut,
            ),
            "sparse" => run_interrupted(
                || SparseCountPopulation::from_dense(&p, counts),
                seed,
                n,
                rounds,
                cut,
            ),
            "accel" => run_interrupted(
                || AcceleratedPopulation::from_counts(&p, counts),
                seed,
                n,
                rounds,
                cut,
            ),
            "matching" => run_interrupted(
                || MatchingPopulation::from_counts(&p, counts),
                seed,
                n,
                rounds,
                cut,
            ),
            _ => unreachable!("unknown backend"),
        };
        assert_eq!(
            full.0, resumed.0,
            "{scenario}/{backend}: resumed trace must be byte-identical"
        );
        assert_eq!(
            full.1, resumed.1,
            "{scenario}/{backend}: resumed fault events must be byte-identical"
        );
        assert_eq!(
            full.2, resumed.2,
            "{scenario}/{backend}: resumed metrics must be byte-identical"
        );
    }
}

/// Runs the enumeration-compiled executor (dense live-state ids +
/// `RuleTableProtocol` tables batched on `CountPopulation`) twice with the
/// same seed and asserts the full artifact — per-state counts, rounds, and
/// iterations — replays byte-identically once rendered.
fn assert_enumerated_replay_byte_identical(seed: u64) {
    use population_protocols::core::lang::enumerate::EnumExecutor;
    use population_protocols::core::protocols::plurality::plurality;

    let program = plurality(3, 2);
    let c: Vec<_> = (1..=3)
        .map(|i| program.vars.get(&format!("C{i}")).unwrap())
        .collect();
    let groups = [(vec![c[0]], 30u64), (vec![c[1]], 40), (vec![c[2]], 30)];
    let run = || {
        let mut exec =
            EnumExecutor::new(&program, &groups, seed).expect("enumeration compiles plurality");
        exec.run_iteration();
        exec.run_iteration();
        let rows = [Json::obj([
            ("rounds", Json::from(exec.rounds())),
            ("iterations", Json::from(exec.iterations())),
            (
                "counts",
                Json::arr(exec.counts().iter().copied().map(Json::from)),
            ),
        ])];
        to_jsonl(&rows)
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "enumerated: trace is non-trivial");
    assert_eq!(a, b, "enumerated: compiled run must replay exactly");
}

#[test]
fn same_seed_same_backend_is_byte_identical() {
    // Sparse-ish scenario: n = 1000 keeps the count backends on the
    // geometric-leap path.
    assert_replay_byte_identical("leap", &[400, 300, 300], 2718, 12);
    // Reactive-dense scenario: at n = 4000 the count backends route their
    // batches through the collision-epoch path, so this pins that fault
    // triggers split contingency-table batches deterministically (epoch
    // truncation at the trigger boundary included).
    assert_replay_byte_identical("dense", &[1_600, 1_200, 1_200], 3141, 12);
    // Crash-and-resume at a mid-run checkpoint must be invisible in every
    // artifact, on both dispatch regimes. The cut lands after fault
    // triggers have partially fired, so trigger progress, the event log,
    // and the metrics registry all ride through the snapshot.
    assert_interrupt_resume_byte_identical("leap", &[400, 300, 300], 2718, 12, 7);
    assert_interrupt_resume_byte_identical("dense", &[1_600, 1_200, 1_200], 3141, 12, 5);
    // The enumeration backend (analyzer-guided live-state compilation) must
    // replay exactly too: same seed, same compiled tables, same artifact.
    assert_enumerated_replay_byte_identical(1618);
}
