//! The `.pp` protocol files shipped in `protocols/` must parse and run.

use population_protocols::core::lang::interp::Executor;
use population_protocols::core::lang::parse::parse_program;
use population_protocols::core::rules::Guard;
use std::fs;

#[test]
fn all_shipped_protocol_files_parse() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/protocols");
    let mut found = 0;
    for entry in fs::read_dir(dir).expect("protocols/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pp") {
            continue;
        }
        found += 1;
        let source = fs::read_to_string(&path).expect("readable");
        let program = parse_program(&source).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!program.name.is_empty());
        assert!(!program.threads.is_empty());
    }
    assert!(found >= 2, "expected at least two shipped protocol files");
}

#[test]
fn shipped_leader_election_file_elects_a_leader() {
    let source = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/protocols/leader_election.pp"
    ))
    .expect("file exists");
    let program = parse_program(&source).expect("parses");
    let l = program.vars.get("L").expect("L");
    let mut exec = Executor::new(&program, &[(vec![], 400)], 99);
    let it = exec
        .run_until(300, |e| e.count_where(&Guard::var(l)) == 1)
        .expect("elects a unique leader");
    assert!(it < 100);
}

#[test]
fn shipped_rumor_file_completes() {
    let source = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/protocols/rumor_with_skeptics.pp"
    ))
    .expect("file exists");
    let program = parse_program(&source).expect("parses");
    let r = program.vars.get("R").expect("R");
    let s = program.vars.get("S").expect("S");
    let done = program.vars.get("Done").expect("Done");
    let mut exec = Executor::new(&program, &[(vec![r], 5), (vec![s], 20), (vec![], 375)], 7);
    let it = exec
        .run_until(100, |e| e.count_where(&Guard::var(done)) == e.n())
        .expect("rumor reaches everyone and Done is raised");
    assert!(it < 60);
}
