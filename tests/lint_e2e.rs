//! End-to-end checks on `ppsim lint`: each diagnostic the analyzer promises
//! is pinned against a small fixture protocol, with its code, severity,
//! source line, and the process exit code. Also asserts the shipped
//! protocol files and every builtin stay warnings-only (exit 0) — the same
//! gate CI applies.

use population_protocols::core::engine::json::{parse_jsonl, Json};
use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ppsim-lint-{}-{name}.pp", std::process::id()))
}

/// Writes `source` to a temp `.pp` file, lints it with `--json`, and
/// returns the exit code plus the parsed JSONL records.
fn lint_json(label: &str, source: &str) -> (i32, Vec<Json>) {
    let path = tmp(label);
    std::fs::write(&path, source).expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .arg("lint")
        .arg(&path)
        .arg("--json")
        .output()
        .expect("spawn ppsim lint");
    let _ = std::fs::remove_file(&path);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let records = parse_jsonl(&stdout).expect("lint --json output parses as JSONL");
    (out.status.code().expect("exit code"), records)
}

/// The first record with the given code, or a panic listing what was found.
fn find<'a>(records: &'a [Json], code: &str) -> &'a Json {
    records
        .iter()
        .find(|r| r.get("code").and_then(Json::as_str) == Some(code))
        .unwrap_or_else(|| {
            let codes: Vec<_> = records
                .iter()
                .map(|r| r.get("code").and_then(Json::as_str).unwrap_or("?"))
                .collect();
            panic!("no {code} record; found {codes:?}")
        })
}

fn severity(record: &Json) -> &str {
    record
        .get("severity")
        .and_then(Json::as_str)
        .expect("severity")
}

fn line(record: &Json) -> u64 {
    record.get("line").and_then(Json::as_u64).expect("line")
}

#[test]
fn unsatisfiable_guard_is_an_error_with_span() {
    let (code, records) = lint_json(
        "dead-rule",
        "\
def protocol DeadRule
  var A as input, Y as output:
  thread Main:
    execute ruleset:
      > (A & !A) + (.) -> (Y) + (.)
      > (A) + (.) -> (Y) + (.)
",
    );
    let d = find(&records, "PP101");
    assert_eq!(severity(d), "error");
    assert_eq!(line(d), 5, "{d:?}");
    assert_eq!(code, 1, "errors make lint exit nonzero");
}

#[test]
fn shadowed_rule_is_a_warning_with_span() {
    let (code, records) = lint_json(
        "shadowed",
        "\
def protocol Shadowed
  var A as input, B as input, Y as output:
  thread Main:
    execute ruleset:
      > (A) + (.) -> (!A & Y) + (.)
      > (A & B) + (.) -> (B & Y) + (.)
",
    );
    let d = find(&records, "PP103");
    assert_eq!(severity(d), "warning");
    assert_eq!(line(d), 6, "span points at the shadowed rule: {d:?}");
    assert_eq!(code, 0, "warnings alone keep exit 0");
}

#[test]
fn non_conjunctive_post_condition_is_an_error_with_span() {
    let (code, records) = lint_json(
        "disjunctive-post",
        "\
def protocol BadPost
  var A as input, B, Y as output:
  thread Main:
    execute ruleset:
      > (A) + (.) -> (A | B) + (.)
",
    );
    let d = find(&records, "PP002");
    assert_eq!(severity(d), "error");
    assert_eq!(line(d), 5, "{d:?}");
    assert_eq!(code, 1);
}

#[test]
fn unreachable_rule_under_initial_support_is_flagged() {
    // B has no init, is not an input, and nothing ever sets it: the second
    // rule can never fire from any declared initial configuration.
    let (code, records) = lint_json(
        "unreachable",
        "\
def protocol Unreachable
  var A as input, B, Y as output:
  thread Main:
    execute ruleset:
      > (A) + (.) -> (Y) + (.)
      > (B) + (.) -> (!Y) + (.)
",
    );
    let d = find(&records, "PP105");
    assert_eq!(severity(d), "warning");
    assert_eq!(line(d), 6, "{d:?}");
    assert_eq!(code, 0);
}

#[test]
fn use_before_assign_is_flagged_at_the_read() {
    let (code, records) = lint_json(
        "use-before-assign",
        "\
def protocol UseBeforeAssign
  var A as input, X, Y as output:
  thread Main:
    repeat:
      Y := X
",
    );
    let d = find(&records, "PP201");
    assert_eq!(severity(d), "warning");
    assert_eq!(line(d), 5, "{d:?}");
    assert_eq!(code, 0);
}

#[test]
fn never_written_output_is_an_error_at_the_declaration() {
    let (code, records) = lint_json(
        "never-written",
        "\
def protocol NeverWritten
  var A as input, Y as output:
  thread Main:
    execute ruleset:
      > (A) + (!A) -> (A) + (A)
",
    );
    let d = find(&records, "PP202");
    assert_eq!(severity(d), "error");
    assert_eq!(line(d), 2, "span points at the declaration: {d:?}");
    assert_eq!(code, 1);
}

#[test]
fn human_rendering_includes_carets_and_summary() {
    let path = tmp("human");
    std::fs::write(
        &path,
        "\
def protocol DeadRule
  var A as input, Y as output:
  thread Main:
    execute ruleset:
      > (A & !A) + (.) -> (Y) + (.)
      > (A) + (.) -> (Y) + (.)
",
    )
    .expect("write fixture");
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .arg("lint")
        .arg(&path)
        .output()
        .expect("spawn ppsim lint");
    let _ = std::fs::remove_file(&path);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("error[PP101]"), "{stdout}");
    assert!(stdout.contains("--> line 5"), "{stdout}");
    assert!(stdout.contains('^'), "caret rendering present: {stdout}");
    assert!(
        stdout.contains("error(s)"),
        "summary line present: {stdout}"
    );
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn json_records_carry_target_and_message() {
    let (_, records) = lint_json(
        "fields",
        "\
def protocol Fields
  var A as input, Y as output:
  thread Main:
    execute ruleset:
      > (A & !A) + (.) -> (Y) + (.)
      > (A) + (.) -> (Y) + (.)
",
    );
    assert!(!records.is_empty());
    for r in &records {
        assert!(r.get("target").and_then(Json::as_str).is_some(), "{r:?}");
        assert!(r.get("code").and_then(Json::as_str).is_some(), "{r:?}");
        assert!(r.get("message").and_then(Json::as_str).is_some(), "{r:?}");
    }
}

#[test]
fn shipped_protocol_files_are_warnings_only() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("protocols");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("protocols dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pp") {
            continue;
        }
        checked += 1;
        let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
            .arg("lint")
            .arg(&path)
            .output()
            .expect("spawn ppsim lint");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{} must lint without errors:\n{}",
            path.display(),
            String::from_utf8_lossy(&out.stdout)
        );
    }
    assert!(checked >= 2, "expected shipped .pp files, found {checked}");
}

#[test]
fn builtins_are_warnings_only() {
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args(["lint", "--builtin", "all"])
        .output()
        .expect("spawn ppsim lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "builtins must lint without errors:\n{stdout}"
    );
    assert!(stdout.contains("builtin:leader"), "{stdout}");
}

#[test]
fn builtin_corpus_is_pp207_free_and_pins_pp191() {
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args(["lint", "--builtin", "all", "--json"])
        .output()
        .expect("spawn ppsim lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let records = parse_jsonl(&stdout).expect("lint --json output parses as JSONL");

    // The enumeration backend lifts the packed-variable budget: nothing in
    // the builtin corpus may report PP207 any more.
    let pp207: Vec<_> = records
        .iter()
        .filter(|r| r.get("code").and_then(Json::as_str) == Some("PP207"))
        .map(|r| r.get("target").and_then(Json::as_str).unwrap_or("?"))
        .collect();
    assert!(pp207.is_empty(), "PP207 still fires for {pp207:?}");

    // Every over-budget builtin instead carries the PP191 info diagnostic,
    // with the live-state count pinned for plurality (496 of 2^9).
    let pp191_target = |target: &str| {
        records
            .iter()
            .find(|r| {
                r.get("code").and_then(Json::as_str) == Some("PP191")
                    && r.get("target").and_then(Json::as_str) == Some(target)
            })
            .unwrap_or_else(|| panic!("no PP191 record for {target}"))
    };
    let plur = pp191_target("builtin:plurality");
    assert_eq!(severity(plur), "info");
    let msg = plur.get("message").and_then(Json::as_str).expect("message");
    assert!(msg.contains("496 live states"), "{msg}");
    for target in [
        "builtin:plurality-exact-three",
        "builtin:semilinear-comparison",
    ] {
        assert_eq!(severity(pp191_target(target)), "info");
    }
}

#[test]
fn shipped_protocol_files_are_pp207_free() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("protocols");
    for entry in std::fs::read_dir(&dir).expect("protocols dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pp") {
            continue;
        }
        let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
            .arg("lint")
            .arg(&path)
            .arg("--json")
            .output()
            .expect("spawn ppsim lint");
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
        let records = parse_jsonl(&stdout).expect("lint --json output parses as JSONL");
        assert!(
            records
                .iter()
                .all(|r| r.get("code").and_then(Json::as_str) != Some("PP207")),
            "{} reports PP207:\n{stdout}",
            path.display()
        );
    }
}

#[test]
fn unknown_builtin_fails() {
    let out = Command::new(env!("CARGO_BIN_EXE_ppsim"))
        .args(["lint", "--builtin", "nonsense"])
        .output()
        .expect("spawn ppsim lint");
    assert_eq!(out.status.code(), Some(1));
}
