//! Property-based cross-backend tests: the agent-array, count-based, and
//! accelerated simulators must realize the same stochastic process, and the
//! rules formalism must agree with hand-coded protocols.

use population_protocols::core::engine::accel::AcceleratedPopulation;
use population_protocols::core::engine::counts::CountPopulation;
use population_protocols::core::engine::population::Population;
use population_protocols::core::engine::protocol::TableProtocol;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::{run_until, Simulator};
use population_protocols::core::engine::stats::Summary;
use population_protocols::core::rules::{parse::parse_ruleset, FlagProtocol, VarSet};
use proptest::prelude::*;

/// Mean fratricide completion time for each backend over several seeds.
fn fratricide_mean(backend: &str, leaders: u64, followers: u64, runs: u64) -> f64 {
    let protocol = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
    let times: Vec<f64> = (0..runs)
        .map(|seed| {
            let mut rng = SimRng::seed_from(seed * 31 + 5);
            match backend {
                "agents" => {
                    let mut pop = Population::from_counts(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                "counts" => {
                    let mut pop = CountPopulation::from_counts(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                "accel" => {
                    let mut pop =
                        AcceleratedPopulation::from_counts(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                _ => unreachable!(),
            }
        })
        .collect();
    Summary::of(&times).mean
}

#[test]
fn all_backends_agree_on_fratricide_time() {
    let agents = fratricide_mean("agents", 16, 112, 40);
    let counts = fratricide_mean("counts", 16, 112, 40);
    let accel = fratricide_mean("accel", 16, 112, 40);
    let reference = agents;
    for (name, value) in [("counts", counts), ("accel", accel)] {
        let rel = (value - reference).abs() / reference;
        assert!(
            rel < 0.25,
            "{name} backend mean {value} deviates from agent backend {reference}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Population size is conserved by every backend on a random cyclic
    /// protocol.
    #[test]
    fn conservation_on_random_protocols(seed in 0u64..1000, c0 in 1u64..50, c1 in 1u64..50, c2 in 1u64..50) {
        let protocol = TableProtocol::new(3, "cycle")
            .rule(0, 1, 1, 1)
            .rule(1, 2, 2, 2)
            .rule(2, 0, 0, 0);
        let n = c0 + c1 + c2;
        prop_assume!(n >= 2);
        let mut pop = CountPopulation::from_counts(&protocol, &[c0, c1, c2]);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..500 {
            pop.step(&mut rng);
            prop_assert_eq!(pop.counts().iter().sum::<u64>(), n);
        }
    }

    /// A FlagProtocol epidemic behaves identically to the equivalent
    /// TableProtocol epidemic (same state space, same dynamics).
    #[test]
    fn dsl_epidemic_matches_table_epidemic(seed in 0u64..500) {
        // DSL version.
        let mut vars = VarSet::new();
        let rules = parse_ruleset("(I) + (!I) -> (I) + (I)\n(!I) + (I) -> (I) + (I)", &mut vars).unwrap();
        let dsl = FlagProtocol::new(vars, rules, "epidemic");
        let mut pop_dsl = CountPopulation::from_counts(&dsl, &[127, 1]);
        let mut rng = SimRng::seed_from(seed);
        let t_dsl = run_until(&mut pop_dsl, &mut rng, 1e4, 1, |s| s.count(0) == 0).unwrap();

        // Hand-coded version. Note: the DSL protocol has 2 rules picked
        // uniformly and both fire on their orientation, so rates match the
        // two-rule table protocol exactly when scaled identically. We only
        // require both to complete within a factor-3 envelope per seed pair
        // (they use different randomness).
        let table = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
        let mut pop_tab = CountPopulation::from_counts(&table, &[127, 1]);
        let mut rng = SimRng::seed_from(seed + 1);
        let t_tab = run_until(&mut pop_tab, &mut rng, 1e4, 1, |s| s.count(0) == 0).unwrap();
        // Both are Θ(log n); sanity-bound the ratio loosely.
        prop_assert!(t_dsl / t_tab < 8.0 && t_tab / t_dsl < 8.0,
            "epidemic times diverge wildly: dsl {} vs table {}", t_dsl, t_tab);
    }

    /// The accelerated backend never reports Silent while a reactive pair
    /// exists, and vice versa.
    #[test]
    fn accel_silence_is_sound(leaders in 0u64..6, followers in 2u64..40) {
        let protocol = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
        prop_assume!(leaders + followers >= 2);
        let mut pop = AcceleratedPopulation::from_counts(&protocol, &[followers, leaders]);
        let mut rng = SimRng::seed_from(leaders * 100 + followers);
        use population_protocols::core::engine::sim::StepOutcome;
        let outcome = pop.step(&mut rng);
        if leaders >= 2 {
            prop_assert_ne!(outcome, StepOutcome::Silent);
        } else {
            prop_assert_eq!(outcome, StepOutcome::Silent);
        }
    }
}
