//! Cross-backend equivalence tests: the agent-array, count-based, sparse,
//! accelerated, and matching simulators must realize the same stochastic
//! process, per-step `step()` and batched `step_batch()` must induce the
//! same run distribution, and the rules formalism must agree with
//! hand-coded protocols.
//!
//! Random cases are drawn from seeded [`SimRng`] streams, so every failure
//! reproduces from the printed case index.

use population_protocols::core::engine::accel::AcceleratedPopulation;
use population_protocols::core::engine::counts::{CountPopulation, SparseCountPopulation};
use population_protocols::core::engine::matching::MatchingPopulation;
use population_protocols::core::engine::metrics;
use population_protocols::core::engine::population::Population;
use population_protocols::core::engine::protocol::TableProtocol;
use population_protocols::core::engine::rng::SimRng;
use population_protocols::core::engine::sim::{run_until, Simulator, StepOutcome};
use population_protocols::core::engine::stats::{
    chi_square_p_value, chi_square_two_sample, Summary,
};
use population_protocols::core::rules::{parse::parse_ruleset, FlagProtocol, VarSet};

/// Mean fratricide completion time for each backend over several seeds.
fn fratricide_mean(backend: &str, leaders: u64, followers: u64, runs: u64) -> f64 {
    let protocol = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
    let times: Vec<f64> = (0..runs)
        .map(|seed| {
            let mut rng = SimRng::seed_from(seed * 31 + 5);
            match backend {
                "agents" => {
                    let mut pop = Population::from_counts(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                "counts" => {
                    let mut pop = CountPopulation::from_counts(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                "sparse" => {
                    let mut pop =
                        SparseCountPopulation::from_dense(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                "accel" => {
                    let mut pop =
                        AcceleratedPopulation::from_counts(&protocol, &[followers, leaders]);
                    run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
                }
                _ => unreachable!(),
            }
        })
        .collect();
    Summary::of(&times).mean
}

#[test]
fn all_backends_agree_on_fratricide_time() {
    let agents = fratricide_mean("agents", 16, 112, 40);
    let counts = fratricide_mean("counts", 16, 112, 40);
    let sparse = fratricide_mean("sparse", 16, 112, 40);
    let accel = fratricide_mean("accel", 16, 112, 40);
    let reference = agents;
    for (name, value) in [("counts", counts), ("sparse", sparse), ("accel", accel)] {
        let rel = (value - reference).abs() / reference;
        assert!(
            rel < 0.25,
            "{name} backend mean {value} deviates from agent backend {reference}"
        );
    }
}

/// The 3-state cyclic protocol used by the statistical equivalence tests:
/// it keeps all three states populated at moderate times, giving the
/// chi-square tests nontrivial categories.
fn cycle() -> TableProtocol {
    TableProtocol::new(3, "cycle")
        .rule(0, 1, 1, 1)
        .rule(1, 2, 2, 2)
        .rule(2, 0, 0, 0)
}

const EQUIV_N: [u64; 3] = [80, 80, 80];
const EQUIV_RUNS: u64 = 120;
const EQUIV_TARGET_STEPS: u64 = 240 * 4; // 4 parallel rounds at n = 240

/// Advances `sim` to at least `target` steps using per-interaction `step()`.
fn drive_stepwise(sim: &mut dyn Simulator, rng: &mut SimRng, target: u64) {
    while sim.steps() < target {
        if sim.step(rng) == StepOutcome::Silent {
            break;
        }
    }
}

/// Advances `sim` to at least `target` steps using `step_batch` in chunks
/// (exercising batch-boundary truncation by using a chunk that does not
/// divide the target).
fn drive_batched(sim: &mut dyn Simulator, rng: &mut SimRng, target: u64) {
    while sim.steps() < target {
        let out = sim.step_batch(rng, (target - sim.steps()).min(97));
        if out.silent || out.executed == 0 {
            break;
        }
    }
}

/// One independent observation per run: the count of state 0 at the fixed
/// parallel time. (Pooling all state counts across runs would violate the
/// chi-square independence assumption — within a run the counts sum to n,
/// so pooled cells carry run-to-run variance the test doesn't model.)
fn per_run_observations<S: Simulator>(
    make: impl Fn() -> S,
    seed_base: u64,
    batched: bool,
) -> Vec<f64> {
    (0..EQUIV_RUNS)
        .map(|run| {
            let mut sim = make();
            let mut rng = SimRng::seed_from(seed_base + run);
            if batched {
                drive_batched(&mut sim, &mut rng, EQUIV_TARGET_STEPS);
            } else {
                drive_stepwise(&mut sim, &mut rng, EQUIV_TARGET_STEPS);
            }
            sim.count(0) as f64
        })
        .collect()
}

/// Bins two samples on a shared equal-width grid and chi-squares the
/// histograms. Each sample element must be an independent observation.
fn binned_chi_square(a: &[f64], b: &[f64], bins: usize) -> (f64, usize, f64) {
    let max = a.iter().chain(b).fold(0.0f64, |m, &v| m.max(v));
    let width = (max + 1e-9) / bins as f64;
    let hist = |data: &[f64]| {
        let mut h = vec![0u64; bins];
        for &v in data {
            h[((v / width) as usize).min(bins - 1)] += 1;
        }
        h
    };
    let (stat, dof) = chi_square_two_sample(&hist(a), &hist(b));
    let p = chi_square_p_value(stat, dof);
    (stat, dof, p)
}

/// Chi-square homogeneity of the per-run state-0 count under step vs
/// step_batch driving; the null hypothesis (same distribution) must not be
/// rejected at α = 0.001.
fn assert_step_batch_equivalent<S: Simulator>(name: &str, make: impl Fn() -> S, seed: u64) {
    let stepwise = per_run_observations(&make, seed, false);
    let batched = per_run_observations(&make, seed + 50_000, true);
    let (stat, dof, p) = binned_chi_square(&stepwise, &batched, 6);
    assert!(
        p > 0.001,
        "{name}: step vs step_batch distributions differ \
         (chi² = {stat:.2}, dof = {dof}, p = {p:.5})"
    );
}

#[test]
fn step_batch_matches_step_on_population() {
    assert_step_batch_equivalent(
        "Population",
        || Population::from_counts(cycle(), &EQUIV_N),
        100,
    );
}

#[test]
fn step_batch_matches_step_on_count_population() {
    assert_step_batch_equivalent(
        "CountPopulation",
        || CountPopulation::from_counts(cycle(), &EQUIV_N),
        200,
    );
}

#[test]
fn step_batch_matches_step_on_sparse_count_population() {
    assert_step_batch_equivalent(
        "SparseCountPopulation",
        || SparseCountPopulation::from_dense(cycle(), &EQUIV_N),
        300,
    );
}

#[test]
fn step_batch_matches_step_on_accelerated_population() {
    assert_step_batch_equivalent(
        "AcceleratedPopulation",
        || AcceleratedPopulation::from_counts(cycle(), &EQUIV_N),
        400,
    );
}

#[test]
fn step_batch_matches_step_on_matching_population() {
    assert_step_batch_equivalent(
        "MatchingPopulation",
        || MatchingPopulation::from_counts(cycle(), &EQUIV_N),
        500,
    );
}

/// Initial counts for the reactive-dense equivalence suite: at n = 3000 a
/// collision-free epoch covers ≈ 34 interactions of which ≈ 11 are
/// reactive, so `CountPopulation` and `AcceleratedPopulation` route their
/// batches through the contingency-table collision path (the per-step and
/// agent-array backends provide the reference distribution).
const DENSE_N: [u64; 3] = [1_000, 1_000, 1_000];
const DENSE_RUNS: u64 = 100;
const DENSE_TARGET_STEPS: u64 = 3_000 * 2; // 2 parallel rounds at n = 3000

/// As [`per_run_observations`] but for the dense scenario.
fn dense_observations<S: Simulator>(
    make: impl Fn() -> S,
    seed_base: u64,
    batched: bool,
) -> Vec<f64> {
    (0..DENSE_RUNS)
        .map(|run| {
            let mut sim = make();
            let mut rng = SimRng::seed_from(seed_base + run);
            if batched {
                drive_batched(&mut sim, &mut rng, DENSE_TARGET_STEPS);
            } else {
                drive_stepwise(&mut sim, &mut rng, DENSE_TARGET_STEPS);
            }
            sim.count(0) as f64
        })
        .collect()
}

/// Chi-square homogeneity of step vs step_batch driving on the dense
/// cycle-3 workload (collision-batch regime for the count backends).
fn assert_dense_step_batch_equivalent<S: Simulator>(name: &str, make: impl Fn() -> S, seed: u64) {
    let stepwise = dense_observations(&make, seed, false);
    let batched = dense_observations(&make, seed + 50_000, true);
    let (stat, dof, p) = binned_chi_square(&stepwise, &batched, 6);
    assert!(
        p > 0.001,
        "{name} (dense): step vs step_batch distributions differ \
         (chi² = {stat:.2}, dof = {dof}, p = {p:.5})"
    );
}

#[test]
fn dense_step_batch_matches_step_on_population() {
    assert_dense_step_batch_equivalent(
        "Population",
        || Population::from_counts(cycle(), &DENSE_N),
        1_100,
    );
}

#[test]
fn dense_step_batch_matches_step_on_count_population() {
    assert_dense_step_batch_equivalent(
        "CountPopulation",
        || CountPopulation::from_counts(cycle(), &DENSE_N),
        1_200,
    );
}

#[test]
fn dense_step_batch_matches_step_on_sparse_count_population() {
    assert_dense_step_batch_equivalent(
        "SparseCountPopulation",
        || SparseCountPopulation::from_dense(cycle(), &DENSE_N),
        1_300,
    );
}

#[test]
fn dense_step_batch_matches_step_on_accelerated_population() {
    assert_dense_step_batch_equivalent(
        "AcceleratedPopulation",
        || AcceleratedPopulation::from_counts(cycle(), &DENSE_N),
        1_400,
    );
}

#[test]
fn dense_step_batch_matches_step_on_matching_population() {
    assert_dense_step_batch_equivalent(
        "MatchingPopulation",
        || MatchingPopulation::from_counts(cycle(), &DENSE_N),
        1_500,
    );
}

/// The dense scenario must actually route through the collision-batch
/// regime (otherwise the dense equivalence tests above silently degrade to
/// re-testing the leap path). Counter deltas are lower bounds because the
/// metrics registry is process-global and other tests may record
/// concurrently.
#[test]
fn dense_scenario_uses_collision_epochs() {
    metrics::enable();
    let before = metrics::snapshot();
    let mut count_pop = CountPopulation::from_counts(cycle(), &DENSE_N);
    let mut accel_pop = AcceleratedPopulation::from_counts(cycle(), &DENSE_N);
    let mut rng = SimRng::seed_from(77);
    count_pop.step_batch(&mut rng, DENSE_TARGET_STEPS);
    accel_pop.step_batch(&mut rng, DENSE_TARGET_STEPS);
    let after = metrics::snapshot();
    metrics::disable();
    let epochs = after.counter("collision_epochs") - before.counter("collision_epochs");
    let steps =
        after.counter("collision_batched_steps") - before.counter("collision_batched_steps");
    // Two backends × 6000 steps ÷ ≈ 35 steps/epoch ⇒ ≳ 300 epochs.
    assert!(epochs >= 100, "only {epochs} collision epochs recorded");
    assert!(
        steps >= 2 * DENSE_TARGET_STEPS - 200,
        "only {steps} steps settled via collision batches"
    );
}

/// Natural-log factorial table over a large range, for exact pmf
/// evaluation in the marginal tests (`ln x!` via cumulative sums — no
/// approximation beyond f64 rounding).
struct LnFact(Vec<f64>);

impl LnFact {
    fn new(limit: usize) -> Self {
        let mut t = vec![0.0f64; limit + 1];
        for x in 2..=limit {
            t[x] = t[x - 1] + (x as f64).ln();
        }
        Self(t)
    }

    fn get(&self, x: u64) -> f64 {
        self.0[x as usize]
    }
}

/// One-sample chi-square of integer samples against an exact pmf: bins a
/// ±5σ window around the mean, folds the tails into the edge bins, merges
/// cells until each expects ≥ 5 observations, and tests at α = 0.001.
fn assert_matches_exact_pmf(
    name: &str,
    samples: &[u64],
    mean: f64,
    sd: f64,
    ln_pmf: impl Fn(u64) -> f64,
) {
    let lo = (mean - 5.0 * sd).floor().max(0.0) as u64;
    let hi = (mean + 5.0 * sd).ceil() as u64;
    let bins = 24usize;
    let width = ((hi - lo) / bins as u64).max(1);
    let bin_of = |x: u64| -> usize {
        if x < lo {
            0
        } else {
            (((x - lo) / width) as usize).min(bins - 1)
        }
    };
    let mut probs = vec![0.0f64; bins];
    for x in lo..=hi {
        probs[bin_of(x)] += ln_pmf(x).exp();
    }
    // The mass outside ±5σ (≈ 6·10⁻⁷) goes to the edge bins; splitting it
    // evenly misattributes at most half of that, far below bin resolution.
    let leftover = (1.0 - probs.iter().sum::<f64>()).max(0.0);
    probs[0] += leftover / 2.0;
    probs[bins - 1] += leftover / 2.0;
    let mut obs = vec![0u64; bins];
    for &s in samples {
        obs[bin_of(s)] += 1;
    }
    // Merge adjacent cells until each expects ≥ 5 observations.
    let total = samples.len() as f64;
    let mut cells: Vec<(f64, f64)> = Vec::new();
    let mut acc = (0.0f64, 0.0f64);
    for (&o, &p) in obs.iter().zip(&probs) {
        acc.0 += o as f64;
        acc.1 += total * p;
        if acc.1 >= 5.0 {
            cells.push(acc);
            acc = (0.0, 0.0);
        }
    }
    if acc.1 > 0.0 {
        if let Some(last) = cells.last_mut() {
            last.0 += acc.0;
            last.1 += acc.1;
        }
    }
    let stat: f64 = cells.iter().map(|&(o, e)| (o - e) * (o - e) / e).sum();
    let dof = cells.len() - 1;
    let p = chi_square_p_value(stat, dof);
    assert!(
        p > 0.001,
        "{name}: samples deviate from the exact pmf \
         (chi² = {stat:.2}, dof = {dof}, p = {p:.5})"
    );
}

/// `rng.binomial` at count = 10⁶ against the exact binomial pmf — the
/// regime the removed normal-approximation path used to cover (it was
/// *not* exact; the mode-inversion sampler must be).
#[test]
fn binomial_marginal_matches_exact_pmf_at_large_count() {
    let count = 1_000_000u64;
    let p = 0.3f64;
    let lf = LnFact::new(count as usize);
    let ln_pmf = |x: u64| {
        lf.get(count) - lf.get(x) - lf.get(count - x)
            + x as f64 * p.ln()
            + (count - x) as f64 * (1.0 - p).ln()
    };
    let mut rng = SimRng::seed_from(314);
    let samples: Vec<u64> = (0..20_000).map(|_| rng.binomial(count, p)).collect();
    let mean = count as f64 * p;
    let sd = (count as f64 * p * (1.0 - p)).sqrt();
    assert_matches_exact_pmf("binomial(1e6, 0.3)", &samples, mean, sd, ln_pmf);
}

/// `rng.hypergeometric` with a 10⁶-agent urn against the exact pmf — the
/// marginal that anchors the collision-batch contingency-table chain.
#[test]
fn hypergeometric_marginal_matches_exact_pmf_at_large_count() {
    let total = 1_000_000u64;
    let tagged = 333_333u64;
    let draws = 1_254u64; // ≈ 2ℓ for an epoch at n = 10⁶
    let lf = LnFact::new(total as usize);
    let ln_pmf = |x: u64| {
        lf.get(tagged) - lf.get(x) - lf.get(tagged - x) + lf.get(total - tagged)
            - lf.get(draws - x)
            - lf.get(total - tagged - (draws - x))
            - (lf.get(total) - lf.get(draws) - lf.get(total - draws))
    };
    let mut rng = SimRng::seed_from(2_718);
    let samples: Vec<u64> = (0..20_000)
        .map(|_| rng.hypergeometric(total, tagged, draws))
        .collect();
    let frac = tagged as f64 / total as f64;
    let mean = draws as f64 * frac;
    let fpc = (total - draws) as f64 / (total - 1) as f64;
    let sd = (draws as f64 * frac * (1.0 - frac) * fpc).sqrt();
    assert_matches_exact_pmf("hypergeometric(1e6, 1/3, 1254)", &samples, mean, sd, ln_pmf);
}

/// The leaping batch path must also agree: fratricide on the count backend
/// is reactive-sparse, so `step_batch` spends most of its time in the
/// geometric-skip branch. Compare hitting-time distributions coarsely
/// (binned) between stepwise and batched driving.
#[test]
fn count_population_leaping_batch_matches_step_distribution() {
    let protocol = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
    let runs = 150u64;
    let mut times = [Vec::new(), Vec::new()];
    for (which, batched) in [(0usize, false), (1, true)] {
        for run in 0..runs {
            let mut pop = CountPopulation::from_counts(&protocol, &[112, 16]);
            let mut rng = SimRng::seed_from(7_000 + which as u64 * 100_000 + run);
            let t = if batched {
                // Large batches: the whole run is a handful of step_batch
                // calls dominated by geometric leaps.
                loop {
                    let out = pop.step_batch(&mut rng, 1 << 14);
                    if pop.count(1) == 1 || out.silent {
                        break pop.time();
                    }
                }
            } else {
                run_until(&mut pop, &mut rng, 1e7, 1, |s| s.count(1) == 1).unwrap()
            };
            times[which].push(t);
        }
    }
    // Bin the hitting times on a common grid and chi-square the histograms.
    let (stat, dof, p) = binned_chi_square(&times[0], &times[1], 6);
    assert!(
        p > 0.001,
        "leaping batch hitting times diverge (chi² = {stat:.2}, dof = {dof}, p = {p:.5})"
    );
}

/// `BatchOutcome::executed` accounting: the reported count must equal the
/// change in `steps()` exactly, on every backend, for random batch sizes.
#[test]
fn batch_executed_matches_steps_delta_exactly() {
    for case in 0..60u64 {
        let mut rng = SimRng::seed_from(10_000 + case);
        let max_steps = 1 + rng.below(2_000);
        let seed = rng.next_u64();

        let mut checks: Vec<(&str, Box<dyn Simulator>)> = vec![
            (
                "agents",
                Box::new(Population::from_counts(cycle(), &EQUIV_N)),
            ),
            (
                "counts",
                Box::new(CountPopulation::from_counts(cycle(), &EQUIV_N)),
            ),
            (
                "sparse",
                Box::new(SparseCountPopulation::from_dense(cycle(), &EQUIV_N)),
            ),
            (
                "accel",
                Box::new(AcceleratedPopulation::from_counts(cycle(), &EQUIV_N)),
            ),
            (
                "matching",
                Box::new(MatchingPopulation::from_counts(cycle(), &EQUIV_N)),
            ),
        ];
        for (name, sim) in checks.iter_mut() {
            let mut rng = SimRng::seed_from(seed);
            let before = sim.steps();
            let out = sim.step_batch(&mut rng, max_steps);
            let delta = sim.steps() - before;
            assert_eq!(
                out.executed, delta,
                "case {case} {name}: executed {} but steps moved {delta}",
                out.executed
            );
            assert!(
                out.changed <= out.executed,
                "case {case} {name}: more changes than steps"
            );
            if *name == "matching" {
                // Whole rounds only: may overshoot by < ⌊n/2⌋.
                let n = sim.n();
                assert!(
                    out.executed >= max_steps && out.executed < max_steps + n / 2,
                    "case {case} matching: executed {} for request {max_steps}",
                    out.executed
                );
            } else {
                assert_eq!(
                    out.executed, max_steps,
                    "case {case} {name}: non-silent batch must execute exactly"
                );
            }
        }
    }
}

/// A silent configuration yields `executed == 0`, `silent == true`, and no
/// `steps()` movement on the reactivity-tracking backends.
#[test]
fn silent_batches_consume_nothing() {
    let protocol = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
    let mut rng = SimRng::seed_from(42);
    // One leader: no reactive pair exists.
    let mut accel = AcceleratedPopulation::from_counts(&protocol, &[9, 1]);
    let out = accel.step_batch(&mut rng, 1_000);
    assert!(out.silent);
    assert_eq!(out.executed, 0);
    assert_eq!(accel.steps(), 0);

    let mut counts = CountPopulation::from_counts(&protocol, &[9, 1]);
    let out = counts.step_batch(&mut rng, 1_000);
    assert!(out.silent);
    assert_eq!(out.executed, 0);
    assert_eq!(counts.steps(), 0);
}

/// Population size is conserved by every backend on a random cyclic
/// protocol, under batched stepping.
#[test]
fn conservation_on_random_protocols() {
    for case in 0..16u64 {
        let mut rng = SimRng::seed_from(20_000 + case);
        let c0 = 1 + rng.below(49);
        let c1 = 1 + rng.below(49);
        let c2 = 1 + rng.below(49);
        let n = c0 + c1 + c2;
        let mut pop = CountPopulation::from_counts(cycle(), &[c0, c1, c2]);
        for chunk in 0..10 {
            pop.step_batch(&mut rng, 50);
            assert_eq!(
                pop.counts().iter().sum::<u64>(),
                n,
                "case {case} chunk {chunk}"
            );
        }
    }
}

/// A FlagProtocol epidemic behaves like the equivalent TableProtocol
/// epidemic (same state space, same dynamics, loose per-seed envelope).
#[test]
fn dsl_epidemic_matches_table_epidemic() {
    for case in 0..16u64 {
        let seed = 30_000 + case * 17;
        let mut vars = VarSet::new();
        let rules = parse_ruleset(
            "(I) + (!I) -> (I) + (I)\n(!I) + (I) -> (I) + (I)",
            &mut vars,
        )
        .unwrap();
        let dsl = FlagProtocol::new(vars, rules, "epidemic");
        let mut pop_dsl = CountPopulation::from_counts(&dsl, &[127, 1]);
        let mut rng = SimRng::seed_from(seed);
        let t_dsl = run_until(&mut pop_dsl, &mut rng, 1e4, 1, |s| s.count(0) == 0).unwrap();

        let table = TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1);
        let mut pop_tab = CountPopulation::from_counts(&table, &[127, 1]);
        let mut rng = SimRng::seed_from(seed + 1);
        let t_tab = run_until(&mut pop_tab, &mut rng, 1e4, 1, |s| s.count(0) == 0).unwrap();
        assert!(
            t_dsl / t_tab < 8.0 && t_tab / t_dsl < 8.0,
            "case {case}: epidemic times diverge wildly: dsl {t_dsl} vs table {t_tab}"
        );
    }
}

/// The accelerated backend never reports Silent while a reactive pair
/// exists, and vice versa.
#[test]
fn accel_silence_is_sound() {
    let protocol = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
    for leaders in 0u64..6 {
        for followers in 2u64..40 {
            let mut pop = AcceleratedPopulation::from_counts(&protocol, &[followers, leaders]);
            let mut rng = SimRng::seed_from(leaders * 100 + followers);
            let outcome = pop.step(&mut rng);
            if leaders >= 2 {
                assert_ne!(outcome, StepOutcome::Silent, "{leaders} leaders");
            } else {
                assert_eq!(outcome, StepOutcome::Silent, "{leaders} leaders");
            }
        }
    }
}
