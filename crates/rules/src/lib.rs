//! # pp-rules — the paper's boolean-flag rule formalism, executable
//!
//! Section 1.3 of *Population Protocols Are Fast* describes `O(1)`-state
//! protocols whose agent state is a tuple of boolean *state variables*, with
//! transition rules written as bit-mask formulas:
//!
//! ```text
//! ▷ (Σ₁) + (Σ₂) → (Σ₃) + (Σ₄)
//! ```
//!
//! A rule applies when the initiator satisfies `Σ₁` and the responder `Σ₂`;
//! executing it performs a *minimal update* so that `Σ₃`/`Σ₄` hold
//! afterwards. This crate implements that formalism on top of `pp-engine`:
//!
//! * [`var`] — named boolean variables packed into bitmask states,
//! * [`guard`] — boolean formulas with evaluation and literal extraction,
//! * [`rule`] — rules, minimal updates, rulesets, and the paper's
//!   LCM-padding thread composition,
//! * [`protocol`] — the [`FlagProtocol`] adapter to the simulation engine,
//!   supporting both the uniform-random-rule and first-match scheduling
//!   conventions,
//! * [`parse`] — a text parser for the paper notation (ASCII and Unicode),
//! * [`reach`] — the `{0, ≥1}`-support reachability closure over packed
//!   states, shared by the analyzer's lint checks and the enumeration
//!   compiler.
//!
//! # Examples
//!
//! The one-way epidemic, parsed from text and simulated:
//!
//! ```
//! use pp_rules::{parse::parse_ruleset, FlagProtocol, VarSet};
//! use pp_engine::counts::CountPopulation;
//! use pp_engine::rng::SimRng;
//! use pp_engine::sim::{run_until, Simulator};
//! use pp_engine::Protocol;
//!
//! let mut vars = VarSet::new();
//! let rules = parse_ruleset("(I) + (!I) -> (I) + (I)", &mut vars).unwrap();
//! let protocol = FlagProtocol::new(vars, rules, "epidemic");
//!
//! let informed = protocol.vars().get("I").unwrap();
//! let mut counts = vec![0u64; protocol.num_states()];
//! counts[0] = 1023;
//! counts[informed.mask() as usize] = 1;
//!
//! let mut pop = CountPopulation::from_counts(&protocol, &counts);
//! let mut rng = SimRng::seed_from(1);
//! let t = run_until(&mut pop, &mut rng, 1000.0, 32, |s| s.count(0) == 0);
//! assert!(t.is_some());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod guard;
pub mod parse;
pub mod protocol;
pub mod reach;
pub mod rule;
pub mod var;

pub use guard::Guard;
pub use protocol::{ExecutionMode, FlagProtocol};
pub use rule::{Rule, RuleError, Ruleset, Update};
pub use var::{Var, VarSet, MAX_VARS};
