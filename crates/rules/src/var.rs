//! Boolean state variables and the variable registry.
//!
//! Section 1.3 of the paper represents an `O(1)`-state agent as a tuple of
//! boolean *state variables* (flags). A protocol's state space is the set of
//! assignments to its flags, which we pack as a bitmask: bit `i` of the
//! state index is the value of variable `i`. This gives a dense state space
//! of size `2^v`, directly usable by the `pp-engine` simulators.

use std::collections::HashMap;
use std::fmt;

/// Maximum number of boolean variables per protocol (state space `2^20`).
pub const MAX_VARS: usize = 20;

/// A boolean state variable, identified by its bit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u8);

impl Var {
    /// Creates a variable with the given bit index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= MAX_VARS`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index < MAX_VARS, "variable index {index} >= {MAX_VARS}");
        Self(index as u8)
    }

    /// The bit index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The bitmask with only this variable's bit set.
    #[must_use]
    pub fn mask(self) -> u32 {
        1 << self.0
    }

    /// Whether this variable is set in the packed state `state`.
    #[must_use]
    pub fn is_set(self, state: u32) -> bool {
        state & self.mask() != 0
    }

    /// Returns `state` with this variable forced to `value`.
    #[must_use]
    pub fn assign(self, state: u32, value: bool) -> u32 {
        if value {
            state | self.mask()
        } else {
            state & !self.mask()
        }
    }
}

/// A registry assigning names to variables, defining a protocol's flag space.
///
/// # Examples
///
/// ```
/// use pp_rules::var::VarSet;
///
/// let mut vars = VarSet::new();
/// let a = vars.add("A");
/// let b = vars.add("B");
/// assert_eq!(vars.len(), 2);
/// assert_eq!(vars.get("A"), Some(a));
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSet {
    names: Vec<String>,
    by_name: HashMap<String, Var>,
}

impl VarSet {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry from a list of names.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or too many variables.
    #[must_use]
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        let mut set = Self::new();
        for n in names {
            set.add(n.as_ref());
        }
        set
    }

    /// Registers a new variable with `name` and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered, is empty, or the registry
    /// is full ([`MAX_VARS`]).
    pub fn add(&mut self, name: &str) -> Var {
        assert!(!name.is_empty(), "variable name must be non-empty");
        assert!(
            !self.by_name.contains_key(name),
            "duplicate variable name {name:?}"
        );
        let var = Var::new(self.names.len());
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), var);
        var
    }

    /// Looks up a variable by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not from this registry.
    #[must_use]
    pub fn name(&self, var: Var) -> &str {
        &self.names[var.index()]
    }

    /// Number of registered variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of packed states: `2^len`.
    #[must_use]
    pub fn num_states(&self) -> usize {
        1 << self.names.len()
    }

    /// Iterates over `(Var, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Var::new(i), n.as_str()))
    }

    /// Builds a packed state with exactly the given variables set.
    #[must_use]
    pub fn state_with(&self, on: &[Var]) -> u32 {
        on.iter().fold(0, |acc, v| acc | v.mask())
    }

    /// Renders a packed state as the set of on-variables, e.g. `{A, L}`.
    #[must_use]
    pub fn render_state(&self, state: u32) -> String {
        let on: Vec<&str> = self
            .iter()
            .filter(|(v, _)| v.is_set(state))
            .map(|(_, n)| n)
            .collect();
        format!("{{{}}}", on.join(","))
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vars[{}]", self.names.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_mask_and_assign() {
        let v = Var::new(3);
        assert_eq!(v.mask(), 8);
        assert!(!v.is_set(0));
        let s = v.assign(0, true);
        assert!(v.is_set(s));
        assert_eq!(v.assign(s, false), 0);
    }

    #[test]
    fn assign_is_idempotent() {
        let v = Var::new(1);
        let s = v.assign(v.assign(0b101, true), true);
        assert_eq!(s, 0b111);
        let s = v.assign(v.assign(s, false), false);
        assert_eq!(s, 0b101);
    }

    #[test]
    #[should_panic(expected = ">= 20")]
    fn var_index_bounded() {
        let _ = Var::new(MAX_VARS);
    }

    #[test]
    fn varset_registration() {
        let mut vs = VarSet::new();
        let a = vs.add("A");
        let b = vs.add("B");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(vs.num_states(), 4);
        assert_eq!(vs.name(b), "B");
        assert_eq!(vs.get("missing"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_names_rejected() {
        let mut vs = VarSet::new();
        vs.add("A");
        vs.add("A");
    }

    #[test]
    fn state_construction_and_rendering() {
        let vs = VarSet::from_names(&["A", "B", "C"]);
        let a = vs.get("A").unwrap();
        let c = vs.get("C").unwrap();
        let s = vs.state_with(&[a, c]);
        assert_eq!(s, 0b101);
        assert_eq!(vs.render_state(s), "{A,C}");
        assert_eq!(vs.render_state(0), "{}");
    }

    #[test]
    fn iter_is_in_index_order() {
        let vs = VarSet::from_names(&["X", "Y"]);
        let collected: Vec<_> = vs.iter().map(|(v, n)| (v.index(), n.to_string())).collect();
        assert_eq!(collected, vec![(0, "X".to_string()), (1, "Y".to_string())]);
    }
}
