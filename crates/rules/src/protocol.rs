//! Adapter from rulesets to the engine's [`Protocol`] trait.
//!
//! The paper's scheduling convention is: "the scheduler picks exactly one
//! rule uniformly at random from the set of rules of the protocol, and
//! executes it for the interacting agent pair if it is matching." That is
//! the default [`ExecutionMode::UniformRule`]. The alternative systematic
//! convention (execute the first matching rule, top-down) is available as
//! [`ExecutionMode::FirstMatch`]; the paper notes protocols translate
//! between the conventions.

use crate::rule::Ruleset;
use crate::var::VarSet;
use pp_engine::protocol::{Protocol, ProtocolSpec};
use pp_engine::rng::SimRng;

/// How a ruleset resolves an interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Pick one rule uniformly at random; execute it if matching (paper
    /// convention, default).
    #[default]
    UniformRule,
    /// Execute the first matching rule in ruleset order.
    FirstMatch,
}

/// A population protocol defined by a [`Ruleset`] over a [`VarSet`].
///
/// The packed state space has `2^v` states for `v` variables.
///
/// # Examples
///
/// ```
/// use pp_rules::{FlagProtocol, Ruleset, Rule, Guard, VarSet};
/// use pp_engine::counts::CountPopulation;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{run_until, Simulator};
///
/// // Leader fratricide: (L) + (L) -> (L) + (!L).
/// let mut vars = VarSet::new();
/// let l = vars.add("L");
/// let rule = Rule::new(
///     Guard::var(l), Guard::var(l),
///     &Guard::var(l), &Guard::not_var(l),
/// ).unwrap();
/// let protocol = FlagProtocol::new(vars, Ruleset::from_rules(vec![rule]), "fratricide");
/// let leader_state = protocol.vars().state_with(&[l]) as usize;
///
/// let mut counts = vec![0u64; protocol.vars().num_states()];
/// counts[leader_state] = 50;
/// let mut pop = CountPopulation::from_counts(&protocol, &counts);
/// let mut rng = SimRng::seed_from(1);
/// run_until(&mut pop, &mut rng, 1e6, 1, |s| s.count(leader_state) == 1).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct FlagProtocol {
    vars: VarSet,
    ruleset: Ruleset,
    mode: ExecutionMode,
    name: String,
}

impl FlagProtocol {
    /// Creates a protocol with the default (uniform-rule) execution mode.
    ///
    /// # Panics
    ///
    /// Panics if the ruleset is empty.
    #[must_use]
    pub fn new(vars: VarSet, ruleset: Ruleset, name: impl Into<String>) -> Self {
        assert!(!ruleset.is_empty(), "protocol needs at least one rule");
        Self {
            vars,
            ruleset,
            mode: ExecutionMode::UniformRule,
            name: name.into(),
        }
    }

    /// Switches the execution mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The variable registry.
    #[must_use]
    pub fn vars(&self) -> &VarSet {
        &self.vars
    }

    /// The ruleset.
    #[must_use]
    pub fn ruleset(&self) -> &Ruleset {
        &self.ruleset
    }

    /// Renders all rules in the paper's notation, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        self.ruleset
            .rules()
            .iter()
            .map(|r| format!("> {}", r.render(&self.vars)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Protocol for FlagProtocol {
    fn num_states(&self) -> usize {
        self.vars.num_states()
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        let (a, b) = (a as u32, b as u32);
        match self.mode {
            ExecutionMode::UniformRule => {
                let rule = &self.ruleset.rules()[rng.index(self.ruleset.len())];
                if rule.matches(a, b) && (rule.probability >= 1.0 || rng.chance(rule.probability)) {
                    let (a2, b2) = rule.apply(a, b);
                    (a2 as usize, b2 as usize)
                } else {
                    (a as usize, b as usize)
                }
            }
            ExecutionMode::FirstMatch => {
                for rule in self.ruleset.rules() {
                    if rule.matches(a, b) {
                        if rule.probability >= 1.0 || rng.chance(rule.probability) {
                            let (a2, b2) = rule.apply(a, b);
                            return (a2 as usize, b2 as usize);
                        }
                        return (a as usize, b as usize);
                    }
                }
                (a as usize, b as usize)
            }
        }
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        self.ruleset
            .rules()
            .iter()
            .any(|r| r.is_effective_on(a as u32, b as u32))
    }

    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        Some(ProtocolSpec::outcomes(self, a, b))
    }

    fn state_label(&self, state: usize) -> String {
        self.vars.render_state(state as u32)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl ProtocolSpec for FlagProtocol {
    fn outcomes(&self, a: usize, b: usize) -> Vec<((usize, usize), f64)> {
        let (a32, b32) = (a as u32, b as u32);
        let mut out: Vec<((usize, usize), f64)> = Vec::new();
        let mut identity = 0.0;
        match self.mode {
            ExecutionMode::UniformRule => {
                let per_rule = 1.0 / self.ruleset.len() as f64;
                for rule in self.ruleset.rules() {
                    if rule.matches(a32, b32) {
                        let (a2, b2) = rule.apply(a32, b32);
                        let p = per_rule * rule.probability;
                        push_outcome(&mut out, (a2 as usize, b2 as usize), p);
                        identity += per_rule * (1.0 - rule.probability);
                    } else {
                        identity += per_rule;
                    }
                }
            }
            ExecutionMode::FirstMatch => {
                let mut matched = false;
                for rule in self.ruleset.rules() {
                    if rule.matches(a32, b32) {
                        let (a2, b2) = rule.apply(a32, b32);
                        push_outcome(&mut out, (a2 as usize, b2 as usize), rule.probability);
                        identity += 1.0 - rule.probability;
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    identity = 1.0;
                }
            }
        }
        if identity > 0.0 {
            push_outcome(&mut out, (a, b), identity);
        }
        out
    }
}

fn push_outcome(out: &mut Vec<((usize, usize), f64)>, key: (usize, usize), p: f64) {
    if p <= 0.0 {
        return;
    }
    if let Some(entry) = out.iter_mut().find(|(k, _)| *k == key) {
        entry.1 += p;
    } else {
        out.push((key, p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Guard;
    use crate::rule::Rule;
    use pp_engine::counts::CountPopulation;
    use pp_engine::sim::{run_until, Simulator};

    /// (L) + (L) -> (L) + (!L) plus an unrelated flag M that must never move.
    fn fratricide() -> (FlagProtocol, u32, u32) {
        let mut vars = VarSet::new();
        let l = vars.add("L");
        let m = vars.add("M");
        let rule = Rule::new(
            Guard::var(l),
            Guard::var(l),
            &Guard::var(l),
            &Guard::not_var(l),
        )
        .unwrap();
        let p = FlagProtocol::new(vars, Ruleset::from_rules(vec![rule]), "fratricide");
        (p, l.mask(), m.mask())
    }

    #[test]
    fn uniform_rule_mode_applies_matching_rule() {
        let (p, l, _) = fratricide();
        let mut rng = SimRng::seed_from(1);
        let (a2, b2) = p.interact(l as usize, l as usize, &mut rng);
        assert_eq!(a2 as u32, l);
        assert_eq!(b2, 0);
    }

    #[test]
    fn untouched_variables_survive() {
        let (p, l, m) = fratricide();
        let mut rng = SimRng::seed_from(2);
        let s = (l | m) as usize;
        let (a2, b2) = p.interact(s, s, &mut rng);
        // Responder loses L but keeps M (minimal update).
        assert_eq!(a2 as u32, l | m);
        assert_eq!(b2 as u32, m);
    }

    #[test]
    fn non_matching_pairs_are_noops() {
        let (p, l, _) = fratricide();
        let mut rng = SimRng::seed_from(3);
        assert_eq!(p.interact(0, l as usize, &mut rng), (0, l as usize));
        assert!(!p.is_reactive(0, l as usize));
        assert!(p.is_reactive(l as usize, l as usize));
    }

    #[test]
    fn uniform_mode_rule_dilution() {
        // Two rules, only one matches (0,0): it should fire ~half the time.
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let r1 = Rule::new(
            Guard::not_var(a),
            Guard::not_var(a),
            &Guard::var(a),
            &Guard::True,
        )
        .unwrap();
        let r2 = Rule::new(Guard::var(a), Guard::var(a), &Guard::True, &Guard::True).unwrap();
        let p = FlagProtocol::new(vars, Ruleset::from_rules(vec![r1, r2]), "dilute");
        let mut rng = SimRng::seed_from(4);
        let fired = (0..20_000)
            .filter(|_| p.interact(0, 0, &mut rng) != (0, 0))
            .count();
        let rate = fired as f64 / 20_000.0;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn first_match_mode_is_deterministic() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let b = vars.add("B");
        // Two rules both matching state 0: first sets A, second sets B.
        let r1 = Rule::new(Guard::True, Guard::True, &Guard::var(a), &Guard::True).unwrap();
        let r2 = Rule::new(Guard::True, Guard::True, &Guard::var(b), &Guard::True).unwrap();
        let p = FlagProtocol::new(vars, Ruleset::from_rules(vec![r1, r2]), "fm")
            .with_mode(ExecutionMode::FirstMatch);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10 {
            let (a2, _) = p.interact(0, 0, &mut rng);
            assert_eq!(a2 as u32, a.mask(), "first rule must win");
        }
    }

    #[test]
    fn outcomes_sum_to_one() {
        let (p, l, m) = fratricide();
        for &(a, b) in &[(l, l), (0, l), (l | m, l), (0, 0)] {
            let outs = p.outcomes(a as usize, b as usize);
            let total: f64 = outs.iter().map(|&(_, q)| q).sum();
            assert!((total - 1.0).abs() < 1e-12, "pair ({a},{b}) total {total}");
        }
    }

    #[test]
    fn probabilistic_rule_outcomes() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let r = Rule::new(Guard::not_var(a), Guard::True, &Guard::var(a), &Guard::True)
            .unwrap()
            .with_probability(0.25);
        let p = FlagProtocol::new(vars, Ruleset::from_rules(vec![r]), "prob");
        let outs = p.outcomes(0, 0);
        let fire = outs.iter().find(|(k, _)| *k == (1, 0)).unwrap().1;
        let stay = outs.iter().find(|(k, _)| *k == (0, 0)).unwrap().1;
        assert!((fire - 0.25).abs() < 1e-12);
        assert!((stay - 0.75).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_fratricide_converges() {
        let (p, l, _) = fratricide();
        let leader = l as usize;
        let mut counts = vec![0u64; p.num_states()];
        counts[leader] = 64;
        let mut pop = CountPopulation::from_counts(&p, &counts);
        let mut rng = SimRng::seed_from(6);
        let t = run_until(&mut pop, &mut rng, 1e6, 4, |s| s.count(leader) == 1);
        assert!(t.is_some(), "fratricide converges to a single leader");
    }
}
