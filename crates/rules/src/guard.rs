//! Boolean formulas over state variables, used as rule guards and branch
//! conditions.
//!
//! Guards evaluate against a packed state bitmask. The paper's rule bodies
//! (post-conditions) are conjunctions of literals; guards on the left-hand
//! side and `if exists (…)` conditions may be arbitrary boolean formulas.

use crate::var::{Var, VarSet};
use std::fmt;

/// A boolean formula over state variables.
///
/// # Examples
///
/// ```
/// use pp_rules::guard::Guard;
/// use pp_rules::var::VarSet;
///
/// let vs = VarSet::from_names(&["A", "B"]);
/// let a = vs.get("A").unwrap();
/// let b = vs.get("B").unwrap();
/// let g = Guard::var(a).and(Guard::var(b).not());
/// assert!(g.eval(0b01)); //  A ∧ ¬B
/// assert!(!g.eval(0b11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// The empty formula `(.)` — matches any agent.
    True,
    /// A single variable.
    Var(Var),
    /// Negation.
    Not(Box<Guard>),
    /// Conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Disjunction.
    Or(Box<Guard>, Box<Guard>),
}

impl Guard {
    /// The always-true guard `(.)`.
    #[must_use]
    pub fn any() -> Self {
        Guard::True
    }

    /// A guard testing a single variable.
    #[must_use]
    pub fn var(v: Var) -> Self {
        Guard::Var(v)
    }

    /// A guard testing the negation of a single variable.
    #[must_use]
    pub fn not_var(v: Var) -> Self {
        Guard::Var(v).not()
    }

    /// Negates this guard.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Guard::Not(Box::new(self))
    }

    /// Conjunction with another guard.
    #[must_use]
    pub fn and(self, other: Guard) -> Self {
        Guard::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another guard.
    #[must_use]
    pub fn or(self, other: Guard) -> Self {
        Guard::Or(Box::new(self), Box::new(other))
    }

    /// Conjunction of a list of literals, `(var, polarity)` pairs.
    #[must_use]
    pub fn all_of(literals: &[(Var, bool)]) -> Self {
        literals.iter().fold(Guard::True, |acc, &(v, pos)| {
            let lit = if pos {
                Guard::var(v)
            } else {
                Guard::not_var(v)
            };
            if acc == Guard::True {
                lit
            } else {
                acc.and(lit)
            }
        })
    }

    /// Evaluates the guard against a packed state.
    #[must_use]
    pub fn eval(&self, state: u32) -> bool {
        match self {
            Guard::True => true,
            Guard::Var(v) => v.is_set(state),
            Guard::Not(g) => !g.eval(state),
            Guard::And(a, b) => a.eval(state) && b.eval(state),
            Guard::Or(a, b) => a.eval(state) || b.eval(state),
        }
    }

    /// If this guard is a pure conjunction of literals, returns them.
    ///
    /// Returns `None` if the formula contains `Or`, or a `Not` applied to a
    /// non-variable. `True` yields an empty list. Duplicate or contradictory
    /// literals are returned as-is (callers detect contradictions via
    /// [`Guard::eval`]).
    #[must_use]
    pub fn literals(&self) -> Option<Vec<(Var, bool)>> {
        let mut out = Vec::new();
        if self.collect_literals(&mut out, false) {
            Some(out)
        } else {
            None
        }
    }

    fn collect_literals(&self, out: &mut Vec<(Var, bool)>, negated: bool) -> bool {
        match self {
            Guard::True => !negated,
            Guard::Var(v) => {
                out.push((*v, !negated));
                true
            }
            Guard::Not(g) => match g.as_ref() {
                Guard::Var(v) => {
                    out.push((*v, negated));
                    true
                }
                _ => false,
            },
            Guard::And(a, b) if !negated => {
                a.collect_literals(out, false) && b.collect_literals(out, false)
            }
            _ => false,
        }
    }

    /// The set of variables mentioned anywhere in the formula.
    #[must_use]
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Guard::True => {}
            Guard::Var(v) => out.push(*v),
            Guard::Not(g) => g.collect_vars(out),
            Guard::And(a, b) | Guard::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Renders the guard using the paper's notation, with names from `vars`.
    #[must_use]
    pub fn render(&self, vars: &VarSet) -> String {
        match self {
            Guard::True => ".".to_string(),
            Guard::Var(v) => vars.name(*v).to_string(),
            Guard::Not(g) => match g.as_ref() {
                Guard::Var(v) => format!("!{}", vars.name(*v)),
                inner => format!("!({})", inner.render(vars)),
            },
            Guard::And(a, b) => format!(
                "{} & {}",
                a.render_child(vars, true),
                b.render_child(vars, true)
            ),
            Guard::Or(a, b) => format!(
                "{} | {}",
                a.render_child(vars, false),
                b.render_child(vars, false)
            ),
        }
    }

    fn render_child(&self, vars: &VarSet, in_and: bool) -> String {
        let needs_parens = matches!((self, in_and), (Guard::Or(_, _), true));
        if needs_parens {
            format!("({})", self.render(vars))
        } else {
            self.render(vars)
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::True => write!(f, "."),
            Guard::Var(v) => write!(f, "v{}", v.index()),
            Guard::Not(g) => write!(f, "!({g})"),
            Guard::And(a, b) => write!(f, "({a} & {b})"),
            Guard::Or(a, b) => write!(f, "({a} | {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_vars() -> (VarSet, Var, Var, Var) {
        let vs = VarSet::from_names(&["A", "B", "C"]);
        let a = vs.get("A").unwrap();
        let b = vs.get("B").unwrap();
        let c = vs.get("C").unwrap();
        (vs, a, b, c)
    }

    #[test]
    fn true_matches_everything() {
        for s in 0..8 {
            assert!(Guard::any().eval(s));
        }
    }

    #[test]
    fn literal_evaluation() {
        let (_, a, _, _) = three_vars();
        assert!(Guard::var(a).eval(0b001));
        assert!(!Guard::var(a).eval(0b110));
        assert!(Guard::not_var(a).eval(0b110));
    }

    #[test]
    fn compound_formulas() {
        let (_, a, b, c) = three_vars();
        let g = Guard::var(a).and(Guard::var(b)).or(Guard::var(c));
        assert!(g.eval(0b011)); // A ∧ B
        assert!(g.eval(0b100)); // C
        assert!(!g.eval(0b001)); // only A
    }

    #[test]
    fn demorgan_holds() {
        let (_, a, b, _) = three_vars();
        let lhs = Guard::var(a).or(Guard::var(b)).not();
        let rhs = Guard::not_var(a).and(Guard::not_var(b));
        for s in 0..8 {
            assert_eq!(lhs.eval(s), rhs.eval(s), "state {s:#b}");
        }
    }

    #[test]
    fn literals_extracted_from_conjunction() {
        let (_, a, b, c) = three_vars();
        let g = Guard::var(a).and(Guard::not_var(b)).and(Guard::var(c));
        let lits = g.literals().expect("pure conjunction");
        assert_eq!(lits, vec![(a, true), (b, false), (c, true)]);
    }

    #[test]
    fn literals_reject_disjunction() {
        let (_, a, b, _) = three_vars();
        assert!(Guard::var(a).or(Guard::var(b)).literals().is_none());
        assert!(Guard::var(a).and(Guard::var(b)).not().literals().is_none());
    }

    #[test]
    fn all_of_builds_conjunction() {
        let (_, a, b, _) = three_vars();
        let g = Guard::all_of(&[(a, true), (b, false)]);
        assert!(g.eval(0b001));
        assert!(!g.eval(0b011));
        assert_eq!(g.literals().unwrap(), vec![(a, true), (b, false)]);
    }

    #[test]
    fn all_of_empty_is_true() {
        assert_eq!(Guard::all_of(&[]), Guard::True);
    }

    #[test]
    fn vars_are_collected_sorted_unique() {
        let (_, a, b, c) = three_vars();
        let g = Guard::var(c)
            .and(Guard::var(a))
            .or(Guard::var(a).and(Guard::var(b)));
        assert_eq!(g.vars(), vec![a, b, c]);
    }

    #[test]
    fn render_uses_paper_notation() {
        let (vs, a, b, _) = three_vars();
        let g = Guard::var(a).and(Guard::not_var(b));
        assert_eq!(g.render(&vs), "A & !B");
        assert_eq!(Guard::any().render(&vs), ".");
    }

    #[test]
    fn render_parenthesizes_or_inside_and() {
        let (vs, a, b, c) = three_vars();
        let g = Guard::var(a).or(Guard::var(b)).and(Guard::var(c));
        assert_eq!(g.render(&vs), "(A | B) & C");
    }
}
