//! Transition rules `▷ (Σ₁) + (Σ₂) → (Σ₃) + (Σ₄)` with the paper's
//! minimal-update semantics, and rulesets with thread composition.
//!
//! A rule is applicable to an ordered agent pair when the initiator
//! satisfies `Σ₁` and the responder satisfies `Σ₂`. Executing it performs a
//! *minimal update*: each post-condition is a conjunction of literals, and
//! exactly those variables are forced to the stated polarity — all other
//! variables keep their values.

use crate::guard::Guard;
use crate::var::VarSet;
use std::fmt;

/// A minimal update: force the `set` bits on and the `clear` bits off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Update {
    /// Bits forced on.
    pub set: u32,
    /// Bits forced off.
    pub clear: u32,
}

impl Update {
    /// The identity update (post-condition `(.)`).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds an update from a post-condition guard, which must be a pure
    /// conjunction of literals (or `(.)`).
    ///
    /// # Errors
    ///
    /// Returns an error if the guard is not a conjunction of literals or
    /// contains contradictory literals (`X ∧ ¬X`).
    pub fn from_guard(guard: &Guard) -> Result<Self, RuleError> {
        let lits = guard
            .literals()
            .ok_or(RuleError::PostConditionNotLiterals)?;
        let mut update = Update::none();
        for (v, pos) in lits {
            if pos {
                update.set |= v.mask();
            } else {
                update.clear |= v.mask();
            }
        }
        if update.set & update.clear != 0 {
            return Err(RuleError::ContradictoryPostCondition);
        }
        Ok(update)
    }

    /// Applies the update to a packed state.
    #[must_use]
    pub fn apply(self, state: u32) -> u32 {
        (state | self.set) & !self.clear
    }

    /// Whether the update can ever change a state.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self.set == 0 && self.clear == 0
    }

    /// Whether applying the update to `state` would change it.
    #[must_use]
    pub fn changes(self, state: u32) -> bool {
        self.apply(state) != state
    }
}

/// Errors arising when constructing rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleError {
    /// A post-condition was not a conjunction of literals.
    PostConditionNotLiterals,
    /// A post-condition contained `X ∧ ¬X`.
    ContradictoryPostCondition,
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::PostConditionNotLiterals => {
                write!(f, "post-condition must be a conjunction of literals")
            }
            RuleError::ContradictoryPostCondition => {
                write!(f, "post-condition contains a contradictory literal pair")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// A transition rule `▷ (Σ₁) + (Σ₂) → (Σ₃) + (Σ₄)`, optionally probabilistic.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Guard on the initiator.
    pub guard_a: Guard,
    /// Guard on the responder.
    pub guard_b: Guard,
    /// Minimal update applied to the initiator.
    pub update_a: Update,
    /// Minimal update applied to the responder.
    pub update_b: Update,
    /// Probability that the rule fires when selected and matching (the
    /// *randomized* model gives agents a constant number of coin flips per
    /// interaction). Must lie in `(0, 1]`.
    pub probability: f64,
}

impl Rule {
    /// Creates a deterministic rule from guards and post-condition guards.
    ///
    /// # Errors
    ///
    /// Returns an error if a post-condition is not a conjunction of
    /// literals.
    pub fn new(
        guard_a: Guard,
        guard_b: Guard,
        post_a: &Guard,
        post_b: &Guard,
    ) -> Result<Self, RuleError> {
        Ok(Self {
            guard_a,
            guard_b,
            update_a: Update::from_guard(post_a)?,
            update_b: Update::from_guard(post_b)?,
            probability: 1.0,
        })
    }

    /// Sets the firing probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    #[must_use]
    pub fn with_probability(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "rule probability must be in (0, 1]");
        self.probability = p;
        self
    }

    /// Whether the rule matches the ordered state pair.
    #[must_use]
    pub fn matches(&self, a: u32, b: u32) -> bool {
        self.guard_a.eval(a) && self.guard_b.eval(b)
    }

    /// Applies the rule's updates to the matched pair.
    #[must_use]
    pub fn apply(&self, a: u32, b: u32) -> (u32, u32) {
        (self.update_a.apply(a), self.update_b.apply(b))
    }

    /// Whether the rule, if selected for this pair, could change any state.
    #[must_use]
    pub fn is_effective_on(&self, a: u32, b: u32) -> bool {
        self.matches(a, b) && (self.update_a.changes(a) || self.update_b.changes(b))
    }

    /// Renders the rule in the paper's notation.
    #[must_use]
    pub fn render(&self, vars: &VarSet) -> String {
        let post = |u: Update| -> String {
            if u.is_identity() {
                return ".".to_string();
            }
            let mut parts = Vec::new();
            for (v, name) in vars.iter() {
                if u.set & v.mask() != 0 {
                    parts.push(name.to_string());
                } else if u.clear & v.mask() != 0 {
                    parts.push(format!("!{name}"));
                }
            }
            parts.join(" & ")
        };
        let prob = if (self.probability - 1.0).abs() < f64::EPSILON {
            String::new()
        } else {
            format!(" @ {}", self.probability)
        };
        format!(
            "({}) + ({}) -> ({}) + ({}){}",
            self.guard_a.render(vars),
            self.guard_b.render(vars),
            post(self.update_a),
            post(self.update_b),
            prob
        )
    }
}

/// An ordered collection of rules forming one protocol (or one thread).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ruleset {
    rules: Vec<Rule>,
}

impl Ruleset {
    /// Creates an empty ruleset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ruleset from rules.
    #[must_use]
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        Self { rules }
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// The rules in order.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the ruleset has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Composes threads into a single ruleset such that selecting a rule
    /// uniformly at random is equivalent to selecting a thread uniformly and
    /// then one of its rules uniformly.
    ///
    /// Following the paper's convention, each thread's rules are replicated
    /// up to the least common multiple of the thread sizes ("creating a
    /// constant number of copies of the respective rules up to the least
    /// common multiple of the number of rules of respective threads").
    /// Threads that are empty contribute a single identity no-op rule so
    /// they still consume their fair share of the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty.
    #[must_use]
    pub fn compose(threads: &[Ruleset]) -> Ruleset {
        assert!(!threads.is_empty(), "compose requires at least one thread");
        let noop = Rule {
            guard_a: Guard::True,
            guard_b: Guard::True,
            update_a: Update::none(),
            update_b: Update::none(),
            probability: 1.0,
        };
        let sizes: Vec<usize> = threads.iter().map(|t| t.len().max(1)).collect();
        let lcm = sizes.iter().copied().fold(1usize, lcm);
        let mut out = Ruleset::new();
        for (thread, &size) in threads.iter().zip(&sizes) {
            let copies = lcm / size;
            for _ in 0..copies {
                if thread.is_empty() {
                    out.push(noop.clone());
                } else {
                    for r in &thread.rules {
                        out.push(r.clone());
                    }
                }
            }
        }
        out
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl FromIterator<Rule> for Ruleset {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Self {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for Ruleset {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarSet;

    fn setup() -> (VarSet, Guard, Guard) {
        let vs = VarSet::from_names(&["A", "B"]);
        let a = Guard::var(vs.get("A").unwrap());
        let b = Guard::var(vs.get("B").unwrap());
        (vs, a, b)
    }

    #[test]
    fn update_applies_minimally() {
        let (vs, _, _) = setup();
        let b = vs.get("B").unwrap();
        // Post-condition (B): set B, leave A untouched.
        let u = Update::from_guard(&Guard::var(b)).unwrap();
        assert_eq!(u.apply(0b01), 0b11);
        assert_eq!(u.apply(0b00), 0b10);
        assert!(u.changes(0b01));
        assert!(!u.changes(0b10));
    }

    #[test]
    fn update_from_true_is_identity() {
        let u = Update::from_guard(&Guard::True).unwrap();
        assert!(u.is_identity());
        assert_eq!(u.apply(0b11), 0b11);
    }

    #[test]
    fn update_rejects_disjunction() {
        let (_, a, b) = setup();
        assert_eq!(
            Update::from_guard(&a.clone().or(b)),
            Err(RuleError::PostConditionNotLiterals)
        );
        let _ = a;
    }

    #[test]
    fn update_rejects_contradiction() {
        let (vs, _, _) = setup();
        let a = vs.get("A").unwrap();
        let g = Guard::var(a).and(Guard::not_var(a));
        assert_eq!(
            Update::from_guard(&g),
            Err(RuleError::ContradictoryPostCondition)
        );
    }

    #[test]
    fn rule_matching_and_application() {
        let (vs, ga, gb) = setup();
        let b = vs.get("B").unwrap();
        // (A) + (!A) -> (A & B) + (B)
        let rule = Rule::new(
            ga.clone(),
            ga.clone().not(),
            &ga.clone().and(Guard::var(b)),
            &Guard::var(b),
        )
        .unwrap();
        assert!(rule.matches(0b01, 0b10));
        assert!(!rule.matches(0b01, 0b01));
        let (a2, b2) = rule.apply(0b01, 0b10);
        assert_eq!(a2, 0b11);
        assert_eq!(b2, 0b10);
        let _ = gb;
    }

    #[test]
    fn effectiveness_accounts_for_current_state() {
        let (vs, ga, _) = setup();
        let b = vs.get("B").unwrap();
        let rule = Rule::new(ga.clone(), Guard::True, &Guard::var(b), &Guard::True).unwrap();
        // Initiator already has B: rule matches but changes nothing.
        assert!(!rule.is_effective_on(0b11, 0b00));
        assert!(rule.is_effective_on(0b01, 0b00));
    }

    #[test]
    fn render_matches_paper_notation() {
        let (vs, ga, _) = setup();
        let b = vs.get("B").unwrap();
        let rule = Rule::new(ga, Guard::True, &Guard::var(b).not().not(), &Guard::True);
        // !!B is not a literal conjunction.
        assert!(rule.is_err());
        let a = vs.get("A").unwrap();
        let ok = Rule::new(
            Guard::var(a),
            Guard::True,
            &Guard::not_var(a).and(Guard::var(b)),
            &Guard::True,
        )
        .unwrap();
        assert_eq!(ok.render(&vs), "(A) + (.) -> (!A & B) + (.)");
    }

    #[test]
    fn compose_pads_to_lcm() {
        let (_, ga, gb) = setup();
        let r1 = Rule::new(ga.clone(), Guard::True, &Guard::True, &Guard::True).unwrap();
        let r2 = Rule::new(gb.clone(), Guard::True, &Guard::True, &Guard::True).unwrap();
        let t1 = Ruleset::from_rules(vec![r1.clone(), r1.clone()]); // 2 rules
        let t2 = Ruleset::from_rules(vec![r2.clone(), r2.clone(), r2.clone()]); // 3 rules
        let composed = Ruleset::compose(&[t1, t2]);
        // LCM(2,3)=6 → each thread contributes 6 rules.
        assert_eq!(composed.len(), 12);
        let from_t1 = composed.rules().iter().filter(|r| r.guard_a == ga).count();
        assert_eq!(from_t1, 6);
    }

    #[test]
    fn compose_gives_empty_thread_a_noop_share() {
        let (_, ga, _) = setup();
        let r1 = Rule::new(ga, Guard::True, &Guard::True, &Guard::True).unwrap();
        let t1 = Ruleset::from_rules(vec![r1]);
        let t2 = Ruleset::new();
        let composed = Ruleset::compose(&[t1, t2]);
        assert_eq!(composed.len(), 2);
    }

    #[test]
    fn probability_validation() {
        let (_, ga, _) = setup();
        let r = Rule::new(ga, Guard::True, &Guard::True, &Guard::True).unwrap();
        let r = r.with_probability(0.5);
        assert_eq!(r.probability, 0.5);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn zero_probability_rejected() {
        let (_, ga, _) = setup();
        let r = Rule::new(ga, Guard::True, &Guard::True, &Guard::True).unwrap();
        let _ = r.with_probability(0.0);
    }
}
