//! `{0, ≥1}`-support reachability: a sound abstraction of which packed
//! agent states can ever occur, given the declared initial supports.
//!
//! The abstraction tracks only the *support* of a configuration — the set
//! of states held by at least one agent — and closes it under all
//! transitions, ignoring counts:
//!
//! * a rule can rewrite an initiator in state `a` whenever some state in
//!   the support satisfies the responder guard (and symmetrically);
//! * a population-wide assignment `X := Σ` maps every supported state
//!   through the assignment (the old states are conservatively *kept*,
//!   since threads interleave and agents may be mid-interaction);
//! * a coin assignment adds both outcomes.
//!
//! Ignoring counts and keeping superseded states only ever *adds* states,
//! so the closure over-approximates every real execution: if a state (or
//! a rule's firing) is unreachable here, it is unreachable in every run
//! from the declared initial supports. The converse does not hold — the
//! abstraction may consider states reachable that no real run produces.
//!
//! The fixpoint is computed with a worklist: work is proportional to the
//! number of *live* states discovered (times rules and assignments), not to
//! the full `2^k` space, so the closure is cheap exactly when a protocol's
//! reachable set is small — which is what makes it usable both for lint
//! checks and as a compilation substrate (reachable-state enumeration, see
//! `pp-lang`'s `enumerate` backend). Only the dense membership bitmap is
//! `2^k`-sized, so the cap is the full variable budget [`MAX_VARS`] (a
//! 1 MiB bitmap at `k = 20`).

use crate::guard::Guard;
use crate::rule::{Rule, Ruleset};
use crate::var::{Var, VarSet, MAX_VARS};

/// Maximum variable count for the support closure. Equal to the packing
/// budget [`MAX_VARS`], so every representable protocol gets a closure; the
/// `skipped` escape hatch remains for defensive callers.
pub const REACH_VAR_CAP: usize = MAX_VARS;

/// An abstract population-wide assignment transition.
#[derive(Debug, Clone)]
pub enum AbstractAssign {
    /// `var := formula` evaluated on each agent's own state.
    Formula(Var, Guard),
    /// `var := {on, off}` — both outcomes possible.
    Coin(Var),
}

/// The model handed to the support closure: everything that can rewrite
/// agent states, plus the initial supports.
#[derive(Debug, Clone, Default)]
pub struct SupportModel<'a> {
    /// All rulesets that can ever run (raw threads, `execute` blocks).
    pub rulesets: Vec<&'a Ruleset>,
    /// All population-wide assignments that can ever run.
    pub assigns: Vec<AbstractAssign>,
    /// The declared initial supports (packed states present at time 0).
    pub initial: Vec<u32>,
}

/// The result of the support closure.
#[derive(Debug, Clone)]
pub struct SupportClosure {
    /// `reachable[s]` is true when packed state `s` may occur.
    pub reachable: Vec<bool>,
    /// The reachable packed states in ascending order. This is the
    /// canonical enumeration order: dense ids handed out by consumers
    /// (e.g. the enumeration compiler) index into this list, so id
    /// assignment is deterministic regardless of discovery order.
    pub live: Vec<u32>,
    /// True when the state space exceeded [`REACH_VAR_CAP`] and the
    /// closure was not computed (all queries answer "reachable").
    pub skipped: bool,
}

impl SupportClosure {
    /// Whether packed state `s` may occur (always true when skipped).
    #[must_use]
    pub fn may_occur(&self, s: u32) -> bool {
        self.skipped || self.reachable.get(s as usize).copied().unwrap_or(false)
    }

    /// Whether some reachable state satisfies the guard.
    #[must_use]
    pub fn any_satisfies(&self, guard: &Guard) -> bool {
        if self.skipped {
            return true;
        }
        self.live.iter().any(|&s| guard.eval(s))
    }

    /// Number of reachable states (0 when skipped).
    #[must_use]
    pub fn count(&self) -> usize {
        self.live.len()
    }
}

/// Worklist arena: dense membership bitmap plus the discovery-ordered list
/// of live states (which doubles as the queue).
struct Frontier {
    reachable: Vec<bool>,
    live: Vec<u32>,
}

impl Frontier {
    fn add(&mut self, s: u32) {
        let i = s as usize;
        if !self.reachable[i] {
            self.reachable[i] = true;
            self.live.push(s);
        }
    }
}

/// Computes the support closure for `model` over `vars`.
///
/// Complexity: `O(live · (rules + assigns))` guard evaluations plus at most
/// two prefix rescans per rule (when a rule's partner side is first
/// witnessed *after* states matching the other side were already
/// processed), instead of the naive `O(passes · 2^k · rules)` scan.
#[must_use]
pub fn support_closure(vars: &VarSet, model: &SupportModel<'_>) -> SupportClosure {
    if vars.len() > REACH_VAR_CAP {
        return SupportClosure {
            reachable: Vec::new(),
            live: Vec::new(),
            skipped: true,
        };
    }
    let n = vars.num_states();
    let mut fr = Frontier {
        reachable: vec![false; n],
        live: Vec::new(),
    };
    for &s in &model.initial {
        fr.add((s as usize % n) as u32);
    }
    let rules: Vec<&Rule> = model
        .rulesets
        .iter()
        .flat_map(|rs| rs.rules().iter())
        .collect();
    // Per rule: whether some live state has been seen satisfying the
    // initiator (a) / responder (b) guard. A rule's updates apply only once
    // both sides are witnessed.
    let mut a_sat = vec![false; rules.len()];
    let mut b_sat = vec![false; rules.len()];
    let mut head = 0usize;
    while head < fr.live.len() {
        let s = fr.live[head];
        head += 1;
        for assign in &model.assigns {
            match assign {
                AbstractAssign::Formula(v, g) => fr.add(v.assign(s, g.eval(s))),
                AbstractAssign::Coin(v) => {
                    fr.add(v.assign(s, true));
                    fr.add(v.assign(s, false));
                }
            }
        }
        for (i, rule) in rules.iter().enumerate() {
            let ga = rule.guard_a.eval(s);
            let gb = rule.guard_b.eval(s);
            if ga && !a_sat[i] {
                // First initiator witness. Every state seen so far that
                // matches the responder guard (including `s` itself) can
                // now rewrite through the responder update.
                a_sat[i] = true;
                if b_sat[i] || gb {
                    let seen = fr.live.len();
                    for j in 0..seen {
                        let t = fr.live[j];
                        if rule.guard_b.eval(t) {
                            fr.add(rule.update_b.apply(t));
                        }
                    }
                }
            }
            if gb && !b_sat[i] {
                // First responder witness: symmetric rescan.
                b_sat[i] = true;
                if a_sat[i] {
                    let seen = fr.live.len();
                    for j in 0..seen {
                        let t = fr.live[j];
                        if rule.guard_a.eval(t) {
                            fr.add(rule.update_a.apply(t));
                        }
                    }
                }
            }
            if a_sat[i] && b_sat[i] {
                if ga {
                    fr.add(rule.update_a.apply(s));
                }
                if gb {
                    fr.add(rule.update_b.apply(s));
                }
            }
        }
    }
    fr.live.sort_unstable();
    SupportClosure {
        reachable: fr.reachable,
        live: fr.live,
        skipped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ruleset;

    fn closure_of(text: &str, initial_names: &[&[&str]]) -> (VarSet, Ruleset, SupportClosure) {
        let mut vars = VarSet::new();
        let ruleset = parse_ruleset(text, &mut vars).unwrap();
        let initial: Vec<u32> = initial_names
            .iter()
            .map(|names| {
                let on: Vec<Var> = names.iter().map(|n| vars.get(n).unwrap()).collect();
                vars.state_with(&on)
            })
            .collect();
        let model = SupportModel {
            rulesets: vec![&ruleset],
            assigns: Vec::new(),
            initial,
        };
        let closure = support_closure(&vars, &model);
        (vars, ruleset, closure)
    }

    #[test]
    fn epidemic_reaches_all_infected() {
        let (vars, _, closure) = closure_of("(I) + (!I) -> (I) + (I)", &[&["I"], &[]]);
        let i = vars.get("I").unwrap();
        assert!(closure.may_occur(i.mask()));
        assert!(closure.may_occur(0));
        assert_eq!(closure.count(), 2);
    }

    #[test]
    fn rule_needing_missing_partner_adds_nothing() {
        // (B) responder is required but B never occurs, so !A stays out.
        let text = "(A) + (B) -> (!A) + (B)";
        let (vars, _, closure) = closure_of(text, &[&["A"]]);
        let a = vars.get("A").unwrap();
        assert_eq!(closure.count(), 1, "only the initial A state");
        assert!(closure.may_occur(a.mask()));
    }

    #[test]
    fn late_partner_witness_unlocks_earlier_states() {
        // The initial state {A} matches the initiator guard, but the
        // responder witness {A, B} only appears later via the assignment.
        // The rescan must then go back and rewrite {A} through update_a.
        let mut vars = VarSet::new();
        let ruleset = parse_ruleset("(A) + (B) -> (C) + (B)", &mut vars).unwrap();
        let a = vars.get("A").unwrap();
        let b = vars.get("B").unwrap();
        let c = vars.get("C").unwrap();
        let model = SupportModel {
            rulesets: vec![&ruleset],
            assigns: vec![AbstractAssign::Formula(b, Guard::var(a))],
            initial: vec![a.mask()],
        };
        let closure = support_closure(&vars, &model);
        assert!(closure.may_occur(a.mask() | b.mask()), "assign target");
        assert!(
            closure.may_occur(a.mask() | c.mask()),
            "{{A}} rewritten after the responder witness appeared: {:?}",
            closure.live
        );
        assert!(
            closure.may_occur(a.mask() | b.mask() | c.mask()),
            "the witness itself also rewrites"
        );
    }

    #[test]
    fn live_list_is_sorted_and_matches_bitmap() {
        let text = "(A) + (.) -> (!A & B) + (.)\n(B) + (A) -> (C & !B) + (A)";
        let (_, _, closure) = closure_of(text, &[&["A"], &[]]);
        let mut sorted = closure.live.clone();
        sorted.sort_unstable();
        assert_eq!(closure.live, sorted, "live list is ascending");
        let from_bitmap: Vec<u32> = closure
            .reachable
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(s, _)| s as u32)
            .collect();
        assert_eq!(closure.live, from_bitmap);
    }

    #[test]
    fn coin_assignment_adds_both_outcomes() {
        let mut vars = VarSet::new();
        let f = vars.add("F");
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: vec![AbstractAssign::Coin(f)],
            initial: vec![0],
        };
        let closure = support_closure(&vars, &model);
        assert!(closure.may_occur(0));
        assert!(closure.may_occur(f.mask()));
    }

    #[test]
    fn full_variable_budget_is_no_longer_skipped() {
        // The cap equals MAX_VARS now: a 20-variable space (previously far
        // over the old 16-variable cap) computes a real closure.
        assert_eq!(REACH_VAR_CAP, MAX_VARS);
        let mut vars = VarSet::new();
        for i in 0..MAX_VARS {
            vars.add(&format!("V{i}"));
        }
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: Vec::new(),
            initial: vec![0],
        };
        let closure = support_closure(&vars, &model);
        assert!(!closure.skipped);
        assert_eq!(closure.count(), 1);
        assert!(!closure.may_occur(12345));
    }
}
