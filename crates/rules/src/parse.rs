//! Text parser for the paper's rule notation.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! ruleset :=  rule (newline rule)*
//! rule    :=  ['>'] '(' guard ')' '+' '(' guard ')' '->'
//!             '(' guard ')' '+' '(' guard ')' ['@' float]
//! guard   :=  '.' | or
//! or      :=  and ('|' and)*
//! and     :=  atom ('&' atom)*
//! atom    :=  '!' atom | '(' or ')' | ident | '.'
//! ```
//!
//! Identifiers name state variables; unknown names are registered on the
//! fly when parsing with a mutable [`VarSet`]. Lines starting with `#` and
//! blank lines are skipped. Post-conditions must be conjunctions of
//! literals, matching the minimal-update semantics.
//!
//! Parse errors carry full position information — 1-based line and column
//! plus the offending source line — and render with a caret, so tooling
//! (`ppsim lint`, the `pp-analyze` crate) can point at the exact spot.
//! [`parse_ruleset_spanned`] additionally reports the [`Span`] of every
//! parsed rule for diagnostic attribution.
//!
//! # Examples
//!
//! ```
//! use pp_rules::parse::parse_ruleset;
//! use pp_rules::var::VarSet;
//!
//! let mut vars = VarSet::new();
//! let ruleset = parse_ruleset(
//!     "# leader fratricide\n> (L) + (L) -> (L) + (!L)",
//!     &mut vars,
//! ).unwrap();
//! assert_eq!(ruleset.len(), 1);
//! assert!(vars.get("L").is_some());
//! ```

use crate::guard::Guard;
use crate::rule::{Rule, RuleError, Ruleset, Update};
use crate::var::VarSet;
use std::fmt;

/// A region of source text: 1-based line, 1-based character column, and
/// length in characters.
///
/// Columns count Unicode scalar values, not bytes, so spans stay aligned
/// with what a terminal displays for the Unicode rule notation (`▷`, `¬`,
/// `→`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based character column of the first spanned character.
    pub col: usize,
    /// Length of the span in characters (0 for point spans).
    pub len: usize,
}

impl Span {
    /// A span covering `len` characters starting at `line`/`col`.
    #[must_use]
    pub fn new(line: usize, col: usize, len: usize) -> Self {
        Self { line, col, len }
    }

    /// A zero-length span at a position.
    #[must_use]
    pub fn point(line: usize, col: usize) -> Self {
        Self { line, col, len: 0 }
    }
}

/// What category of problem a [`ParseRuleError`] reports.
///
/// Well-formedness violations of the paper's rule shape (§1.3: a
/// post-condition must be a conjunction of literals, and must not demand
/// `X ∧ ¬X`) are distinguished from plain syntax errors so static-analysis
/// tooling can assign them dedicated diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A syntax error: unexpected token, bad number, trailing input, …
    Syntax,
    /// A post-condition that is not a conjunction of literals.
    PostConditionNotLiterals,
    /// A post-condition containing a contradictory literal pair.
    ContradictoryPostCondition,
}

/// A parse error with position information and the offending source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseRuleError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// 1-based character column of the error within the source line.
    pub col: usize,
    /// Error category (syntax vs. post-condition well-formedness).
    pub kind: ParseErrorKind,
    /// Description of the problem.
    pub message: String,
    /// The offending source line, as written (trailing whitespace removed).
    pub source: String,
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)?;
        if !self.source.is_empty() {
            let caret_pad: String = self
                .source
                .chars()
                .take(self.col.saturating_sub(1))
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            write!(f, "\n  | {}\n  | {caret_pad}^", self.source)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseRuleError {}

/// Internal parser error: 0-based character offset into the parsed slice
/// plus category and message. Converted to [`ParseRuleError`] at the API
/// boundary, where the line number and column offset are known.
struct PErr {
    col0: usize,
    kind: ParseErrorKind,
    message: String,
}

impl PErr {
    fn syntax(col0: usize, message: impl Into<String>) -> Self {
        Self {
            col0,
            kind: ParseErrorKind::Syntax,
            message: message.into(),
        }
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    /// Characters consumed so far (0-based offset of the next character).
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Plus,
    Arrow,
    And,
    Or,
    Not,
    Dot,
    At,
    Ident(String),
    Number(f64),
    End,
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            chars: s.chars().peekable(),
            pos: 0,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Lexes the next token, returning it with its 0-based start offset.
    fn next_tok(&mut self) -> Result<(Tok, usize), PErr> {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
        let start = self.pos;
        let Some(&c) = self.chars.peek() else {
            return Ok((Tok::End, start));
        };
        let tok = match c {
            '(' => {
                self.bump();
                Tok::LParen
            }
            ')' => {
                self.bump();
                Tok::RParen
            }
            '+' => {
                self.bump();
                Tok::Plus
            }
            '&' => {
                self.bump();
                Tok::And
            }
            '|' => {
                self.bump();
                Tok::Or
            }
            '!' | '¬' => {
                self.bump();
                Tok::Not
            }
            '.' => {
                self.bump();
                Tok::Dot
            }
            '@' => {
                self.bump();
                Tok::At
            }
            '-' => {
                self.bump();
                if self.bump() == Some('>') {
                    Tok::Arrow
                } else {
                    return Err(PErr::syntax(start, "expected '>' after '-'"));
                }
            }
            '→' => {
                self.bump();
                Tok::Arrow
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit() || *c == '.') {
                    num.push(self.bump().expect("peeked"));
                }
                num.parse::<f64>()
                    .map(Tok::Number)
                    .map_err(|e| PErr::syntax(start, format!("bad number {num:?}: {e}")))?
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_' || *c == '\'')
                {
                    ident.push(self.bump().expect("peeked"));
                }
                Tok::Ident(ident)
            }
            other => {
                return Err(PErr::syntax(
                    start,
                    format!("unexpected character {other:?}"),
                ))
            }
        };
        Ok((tok, start))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Tok,
    /// 0-based start offset of `current` within the parsed slice.
    current_col0: usize,
    vars: &'a mut VarSet,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str, vars: &'a mut VarSet) -> Result<Self, PErr> {
        let mut lexer = Lexer::new(s);
        let (current, current_col0) = lexer.next_tok()?;
        Ok(Self {
            lexer,
            current,
            current_col0,
            vars,
        })
    }

    fn advance(&mut self) -> Result<(), PErr> {
        let (tok, col0) = self.lexer.next_tok()?;
        self.current = tok;
        self.current_col0 = col0;
        Ok(())
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), PErr> {
        if &self.current == tok {
            self.advance()
        } else {
            Err(PErr::syntax(
                self.current_col0,
                format!("expected {tok:?}, found {:?}", self.current),
            ))
        }
    }

    fn guard(&mut self) -> Result<Guard, PErr> {
        // `.` is handled as an atom, so compound guards containing it
        // (e.g. `. & A`) parse uniformly.
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Guard, PErr> {
        let mut left = self.and_expr()?;
        while self.current == Tok::Or {
            self.advance()?;
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Guard, PErr> {
        let mut left = self.atom()?;
        while self.current == Tok::And {
            self.advance()?;
            let right = self.atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Guard, PErr> {
        match self.current.clone() {
            Tok::Dot => {
                // `.` (the empty formula) is allowed as an atom so that
                // rendered compound guards like `. & A` re-parse.
                self.advance()?;
                Ok(Guard::True)
            }
            Tok::Not => {
                self.advance()?;
                Ok(self.atom()?.not())
            }
            Tok::LParen => {
                self.advance()?;
                let inner = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                self.advance()?;
                let var = match self.vars.get(&name) {
                    Some(v) => v,
                    None => self.vars.add(&name),
                };
                Ok(Guard::var(var))
            }
            other => Err(PErr::syntax(
                self.current_col0,
                format!("expected a guard atom, found {other:?}"),
            )),
        }
    }

    fn paren_guard(&mut self) -> Result<Guard, PErr> {
        self.expect(&Tok::LParen)?;
        let g = self.guard()?;
        self.expect(&Tok::RParen)?;
        Ok(g)
    }

    /// Parses a post-condition guard and validates the minimal-update
    /// well-formedness immediately, so the error points at the offending
    /// post-condition (not the whole rule).
    fn post_condition(&mut self) -> Result<Guard, PErr> {
        let start = self.current_col0;
        let guard = self.paren_guard()?;
        if let Err(e) = Update::from_guard(&guard) {
            let kind = match e {
                RuleError::PostConditionNotLiterals => ParseErrorKind::PostConditionNotLiterals,
                RuleError::ContradictoryPostCondition => ParseErrorKind::ContradictoryPostCondition,
            };
            return Err(PErr {
                col0: start,
                kind,
                message: e.to_string(),
            });
        }
        Ok(guard)
    }

    fn rule(&mut self) -> Result<Rule, PErr> {
        let guard_a = self.paren_guard()?;
        self.expect(&Tok::Plus)?;
        let guard_b = self.paren_guard()?;
        self.expect(&Tok::Arrow)?;
        let post_a = self.post_condition()?;
        self.expect(&Tok::Plus)?;
        let post_b = self.post_condition()?;
        let mut rule = Rule::new(guard_a, guard_b, &post_a, &post_b)
            .expect("post-conditions validated by post_condition()");
        if self.current == Tok::At {
            self.advance()?;
            match self.current.clone() {
                Tok::Number(p) => {
                    if !(p > 0.0 && p <= 1.0) {
                        return Err(PErr::syntax(
                            self.current_col0,
                            format!("probability {p} out of (0, 1]"),
                        ));
                    }
                    rule = rule.with_probability(p);
                    self.advance()?;
                }
                other => {
                    return Err(PErr::syntax(
                        self.current_col0,
                        format!("expected probability after '@', found {other:?}"),
                    ))
                }
            }
        }
        if self.current != Tok::End {
            return Err(PErr::syntax(
                self.current_col0,
                format!("trailing input: {:?}", self.current),
            ));
        }
        Ok(rule)
    }
}

/// Strips the optional `▷`/`>` rule prefix and leading whitespace,
/// returning the remaining slice and its character offset within `line`.
fn strip_rule_prefix(line: &str) -> (&str, usize) {
    let trimmed = line
        .trim()
        .trim_start_matches('▷')
        .trim_start_matches('>')
        .trim();
    if trimmed.is_empty() {
        return (trimmed, line.chars().count());
    }
    // `trimmed` is a subslice of `line`, so pointer arithmetic gives the
    // byte offset; convert to a character offset for column reporting.
    let byte_off = trimmed.as_ptr() as usize - line.as_ptr() as usize;
    (trimmed, line[..byte_off].chars().count())
}

/// Parses a single rule at a known source line, returning the rule and its
/// span (covering the rule text, prefix excluded).
fn parse_rule_line(
    line: &str,
    vars: &mut VarSet,
    line_no: usize,
) -> Result<(Rule, Span), ParseRuleError> {
    let (trimmed, prefix_chars) = strip_rule_prefix(line);
    let fail = |e: PErr| ParseRuleError {
        line: line_no,
        col: prefix_chars + e.col0 + 1,
        kind: e.kind,
        message: e.message,
        source: line.trim_end().to_string(),
    };
    let mut parser = Parser::new(trimmed, vars).map_err(fail)?;
    let rule = parser.rule().map_err(fail)?;
    let span = Span::new(line_no, prefix_chars + 1, trimmed.chars().count());
    Ok((rule, span))
}

/// Parses a single rule line (optionally prefixed with `>` or `▷`).
///
/// Unknown variable names are added to `vars`.
///
/// # Errors
///
/// Returns a [`ParseRuleError`] describing the first syntax problem, with
/// its column and the offending source text.
pub fn parse_rule(line: &str, vars: &mut VarSet) -> Result<Rule, ParseRuleError> {
    parse_rule_line(line, vars, 1).map(|(rule, _)| rule)
}

/// Parses a multi-line ruleset. Blank lines and `#`-comments are skipped.
///
/// # Errors
///
/// Returns a [`ParseRuleError`] with the offending line number, column,
/// and source line.
pub fn parse_ruleset(text: &str, vars: &mut VarSet) -> Result<Ruleset, ParseRuleError> {
    parse_ruleset_spanned(text, vars).map(|(rules, _)| rules)
}

/// Parses a multi-line ruleset, also returning the source [`Span`] of each
/// rule (parallel to [`Ruleset::rules`]).
///
/// This is the entry point for diagnostic tooling: each span covers the
/// rule's text on its line (1-based line and column), so analyses over the
/// ruleset can point back at the exact source location.
///
/// # Errors
///
/// Returns a [`ParseRuleError`] with the offending line number, column,
/// and source line.
pub fn parse_ruleset_spanned(
    text: &str,
    vars: &mut VarSet,
) -> Result<(Ruleset, Vec<Span>), ParseRuleError> {
    let mut out = Ruleset::new();
    let mut spans = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (rule, span) = parse_rule_line(raw, vars, idx + 1)?;
        out.push(rule);
        spans.push(span);
    }
    Ok((out, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rule() {
        let mut vars = VarSet::new();
        let r = parse_rule("(L) + (L) -> (L) + (!L)", &mut vars).unwrap();
        let l = vars.get("L").unwrap();
        assert!(r.matches(l.mask(), l.mask()));
        let (a2, b2) = r.apply(l.mask(), l.mask());
        assert_eq!(a2, l.mask());
        assert_eq!(b2, 0);
    }

    #[test]
    fn parses_dot_guards() {
        let mut vars = VarSet::new();
        let r = parse_rule("(.) + (X) -> (.) + (!X)", &mut vars).unwrap();
        let x = vars.get("X").unwrap();
        assert!(r.matches(0, x.mask()));
        assert!(r.matches(x.mask(), x.mask()));
    }

    #[test]
    fn parses_complex_guards() {
        let mut vars = VarSet::new();
        let r = parse_rule("(A & !B) + (A | B) -> (A & B) + (.)", &mut vars).unwrap();
        let a = vars.get("A").unwrap();
        let b = vars.get("B").unwrap();
        assert!(r.matches(a.mask(), b.mask()));
        assert!(!r.matches(a.mask() | b.mask(), b.mask()));
        assert!(!r.matches(a.mask(), 0));
    }

    #[test]
    fn parses_probability_suffix() {
        let mut vars = VarSet::new();
        let r = parse_rule("(A) + (.) -> (!A) + (.) @ 0.5", &mut vars).unwrap();
        assert_eq!(r.probability, 0.5);
    }

    #[test]
    fn parses_unicode_notation() {
        let mut vars = VarSet::new();
        let r = parse_rule("▷ (X) + (¬X) → (¬X) + (.)", &mut vars).unwrap();
        let x = vars.get("X").unwrap();
        assert!(r.matches(x.mask(), 0));
    }

    #[test]
    fn rejects_disjunctive_post_condition() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (A | B) + (.)", &mut vars).unwrap_err();
        assert!(err.message.contains("conjunction of literals"), "{err}");
        assert_eq!(err.kind, ParseErrorKind::PostConditionNotLiterals);
        // Points at the opening paren of the offending post-condition.
        assert_eq!(err.col, 14, "{err}");
    }

    #[test]
    fn rejects_contradictory_post_condition() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (.) + (A & !A)", &mut vars).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ContradictoryPostCondition);
        assert_eq!(err.col, 20, "{err}");
    }

    #[test]
    fn rejects_bad_probability() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (.) + (.) @ 2.0", &mut vars).unwrap_err();
        assert!(err.message.contains("out of"), "{err}");
        assert_eq!(err.kind, ParseErrorKind::Syntax);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (.) + (.) extra", &mut vars).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        assert_eq!(err.col, 24, "caret at the trailing token: {err}");
    }

    #[test]
    fn ruleset_skips_comments_and_blanks() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset(
            "# a comment\n\n(A) + (A) -> (A) + (!A)\n  \n# another\n(A) + (!A) -> (A) + (.)\n",
            &mut vars,
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn ruleset_error_reports_line_number() {
        let mut vars = VarSet::new();
        let err = parse_ruleset("(A) + (A) -> (A) + (!A)\n(bogus", &mut vars).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.source, "(bogus");
    }

    #[test]
    fn error_columns_account_for_rule_prefix() {
        let mut vars = VarSet::new();
        //        123456789…: `>` and two spaces shift the rule by 4 chars.
        let err = parse_rule(">   (A) + (A) -> (A | B) + (.)", &mut vars).unwrap_err();
        assert_eq!(err.col, 18, "{err}");
        let err2 = parse_rule("▷ (A) + (A) -> (A | B) + (.)", &mut vars).unwrap_err();
        assert_eq!(err2.col, 16, "unicode prefix counts as one column: {err2}");
    }

    #[test]
    fn display_shows_source_line_and_caret() {
        let mut vars = VarSet::new();
        let err = parse_ruleset(
            "(A) + (.) -> (.) + (.)\n(A) + (A) -> (A | B) + (.)",
            &mut vars,
        )
        .unwrap_err();
        let rendered = err.to_string();
        assert!(
            rendered.contains("line 2, col 14"),
            "position in header: {rendered}"
        );
        assert!(
            rendered.contains("(A) + (A) -> (A | B) + (.)"),
            "source line shown: {rendered}"
        );
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(
            caret_line.chars().filter(|&c| c == '^').count(),
            1,
            "caret rendered: {rendered}"
        );
        assert_eq!(
            caret_line.chars().count(),
            4 + 14,
            "caret under column 14 (after the `  | ` gutter): {rendered}"
        );
    }

    #[test]
    fn spanned_ruleset_reports_rule_locations() {
        let mut vars = VarSet::new();
        let text = "# comment\n> (A) + (.) -> (!A) + (.)\n\n  (B) + (.) -> (!B) + (.)";
        let (rules, spans) = parse_ruleset_spanned(text, &mut vars).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(spans[0], Span::new(2, 3, 23));
        assert_eq!(spans[1], Span::new(4, 3, 23));
    }

    #[test]
    fn roundtrip_through_render() {
        let mut vars = VarSet::new();
        let original = "(A & !B) + (.) -> (A & B) + (!A)";
        let r = parse_rule(original, &mut vars).unwrap();
        let rendered = r.render(&vars);
        let mut vars2 = vars.clone();
        let r2 = parse_rule(&rendered, &mut vars2).unwrap();
        // Semantically identical: same matches and applications on all states.
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(r.matches(a, b), r2.matches(a, b));
                if r.matches(a, b) {
                    assert_eq!(r.apply(a, b), r2.apply(a, b));
                }
            }
        }
    }

    #[test]
    fn primed_identifiers_allowed() {
        let mut vars = VarSet::new();
        let r = parse_rule("(A') + (B') -> (!A') + (!B')", &mut vars).unwrap();
        assert!(vars.get("A'").is_some());
        let a = vars.get("A'").unwrap();
        let b = vars.get("B'").unwrap();
        assert!(r.matches(a.mask(), b.mask()));
    }
}
