//! Text parser for the paper's rule notation.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! ruleset :=  rule (newline rule)*
//! rule    :=  ['>'] '(' guard ')' '+' '(' guard ')' '->'
//!             '(' guard ')' '+' '(' guard ')' ['@' float]
//! guard   :=  '.' | or
//! or      :=  and ('|' and)*
//! and     :=  atom ('&' atom)*
//! atom    :=  '!' atom | '(' or ')' | ident | '.'
//! ```
//!
//! Identifiers name state variables; unknown names are registered on the
//! fly when parsing with a mutable [`VarSet`]. Lines starting with `#` and
//! blank lines are skipped. Post-conditions must be conjunctions of
//! literals, matching the minimal-update semantics.
//!
//! # Examples
//!
//! ```
//! use pp_rules::parse::parse_ruleset;
//! use pp_rules::var::VarSet;
//!
//! let mut vars = VarSet::new();
//! let ruleset = parse_ruleset(
//!     "# leader fratricide\n> (L) + (L) -> (L) + (!L)",
//!     &mut vars,
//! ).unwrap();
//! assert_eq!(ruleset.len(), 1);
//! assert!(vars.get("L").is_some());
//! ```

use crate::guard::Guard;
use crate::rule::{Rule, Ruleset};
use crate::var::VarSet;
use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseRuleError {
    /// 1-based line number within the parsed text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseRuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseRuleError {}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Plus,
    Arrow,
    And,
    Or,
    Not,
    Dot,
    At,
    Ident(String),
    Number(f64),
    End,
}

impl<'a> Lexer<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            chars: s.chars().peekable(),
        }
    }

    fn next_tok(&mut self) -> Result<Tok, String> {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
        let Some(&c) = self.chars.peek() else {
            return Ok(Tok::End);
        };
        match c {
            '(' => {
                self.chars.next();
                Ok(Tok::LParen)
            }
            ')' => {
                self.chars.next();
                Ok(Tok::RParen)
            }
            '+' => {
                self.chars.next();
                Ok(Tok::Plus)
            }
            '&' => {
                self.chars.next();
                Ok(Tok::And)
            }
            '|' => {
                self.chars.next();
                Ok(Tok::Or)
            }
            '!' | '¬' => {
                self.chars.next();
                Ok(Tok::Not)
            }
            '.' => {
                self.chars.next();
                Ok(Tok::Dot)
            }
            '@' => {
                self.chars.next();
                Ok(Tok::At)
            }
            '-' => {
                self.chars.next();
                if self.chars.next() == Some('>') {
                    Ok(Tok::Arrow)
                } else {
                    Err("expected '>' after '-'".to_string())
                }
            }
            '→' => {
                self.chars.next();
                Ok(Tok::Arrow)
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit() || *c == '.') {
                    num.push(self.chars.next().expect("peeked"));
                }
                num.parse::<f64>()
                    .map(Tok::Number)
                    .map_err(|e| format!("bad number {num:?}: {e}"))
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_alphanumeric() || *c == '_' || *c == '\'')
                {
                    ident.push(self.chars.next().expect("peeked"));
                }
                Ok(Tok::Ident(ident))
            }
            other => Err(format!("unexpected character {other:?}")),
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    current: Tok,
    vars: &'a mut VarSet,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str, vars: &'a mut VarSet) -> Result<Self, String> {
        let mut lexer = Lexer::new(s);
        let current = lexer.next_tok()?;
        Ok(Self {
            lexer,
            current,
            vars,
        })
    }

    fn advance(&mut self) -> Result<(), String> {
        self.current = self.lexer.next_tok()?;
        Ok(())
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), String> {
        if &self.current == tok {
            self.advance()
        } else {
            Err(format!("expected {tok:?}, found {:?}", self.current))
        }
    }

    fn guard(&mut self) -> Result<Guard, String> {
        // `.` is handled as an atom, so compound guards containing it
        // (e.g. `. & A`) parse uniformly.
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Guard, String> {
        let mut left = self.and_expr()?;
        while self.current == Tok::Or {
            self.advance()?;
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Guard, String> {
        let mut left = self.atom()?;
        while self.current == Tok::And {
            self.advance()?;
            let right = self.atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Guard, String> {
        match self.current.clone() {
            Tok::Dot => {
                // `.` (the empty formula) is allowed as an atom so that
                // rendered compound guards like `. & A` re-parse.
                self.advance()?;
                Ok(Guard::True)
            }
            Tok::Not => {
                self.advance()?;
                Ok(self.atom()?.not())
            }
            Tok::LParen => {
                self.advance()?;
                let inner = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                self.advance()?;
                let var = match self.vars.get(&name) {
                    Some(v) => v,
                    None => self.vars.add(&name),
                };
                Ok(Guard::var(var))
            }
            other => Err(format!("expected a guard atom, found {other:?}")),
        }
    }

    fn paren_guard(&mut self) -> Result<Guard, String> {
        self.expect(&Tok::LParen)?;
        let g = self.guard()?;
        self.expect(&Tok::RParen)?;
        Ok(g)
    }

    fn rule(&mut self) -> Result<Rule, String> {
        let guard_a = self.paren_guard()?;
        self.expect(&Tok::Plus)?;
        let guard_b = self.paren_guard()?;
        self.expect(&Tok::Arrow)?;
        let post_a = self.paren_guard()?;
        self.expect(&Tok::Plus)?;
        let post_b = self.paren_guard()?;
        let mut rule = Rule::new(guard_a, guard_b, &post_a, &post_b).map_err(|e| e.to_string())?;
        if self.current == Tok::At {
            self.advance()?;
            match self.current.clone() {
                Tok::Number(p) => {
                    if !(p > 0.0 && p <= 1.0) {
                        return Err(format!("probability {p} out of (0, 1]"));
                    }
                    rule = rule.with_probability(p);
                    self.advance()?;
                }
                other => return Err(format!("expected probability after '@', found {other:?}")),
            }
        }
        if self.current != Tok::End {
            return Err(format!("trailing input: {:?}", self.current));
        }
        Ok(rule)
    }
}

/// Parses a single rule line (optionally prefixed with `>` or `▷`).
///
/// Unknown variable names are added to `vars`.
///
/// # Errors
///
/// Returns a [`ParseRuleError`] describing the first syntax problem.
pub fn parse_rule(line: &str, vars: &mut VarSet) -> Result<Rule, ParseRuleError> {
    let trimmed = line
        .trim()
        .trim_start_matches('▷')
        .trim_start_matches('>')
        .trim();
    let mut parser =
        Parser::new(trimmed, vars).map_err(|message| ParseRuleError { line: 1, message })?;
    parser
        .rule()
        .map_err(|message| ParseRuleError { line: 1, message })
}

/// Parses a multi-line ruleset. Blank lines and `#`-comments are skipped.
///
/// # Errors
///
/// Returns a [`ParseRuleError`] with the offending line number.
pub fn parse_ruleset(text: &str, vars: &mut VarSet) -> Result<Ruleset, ParseRuleError> {
    let mut out = Ruleset::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = parse_rule(line, vars).map_err(|mut e| {
            e.line = idx + 1;
            e
        })?;
        out.push(rule);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_rule() {
        let mut vars = VarSet::new();
        let r = parse_rule("(L) + (L) -> (L) + (!L)", &mut vars).unwrap();
        let l = vars.get("L").unwrap();
        assert!(r.matches(l.mask(), l.mask()));
        let (a2, b2) = r.apply(l.mask(), l.mask());
        assert_eq!(a2, l.mask());
        assert_eq!(b2, 0);
    }

    #[test]
    fn parses_dot_guards() {
        let mut vars = VarSet::new();
        let r = parse_rule("(.) + (X) -> (.) + (!X)", &mut vars).unwrap();
        let x = vars.get("X").unwrap();
        assert!(r.matches(0, x.mask()));
        assert!(r.matches(x.mask(), x.mask()));
    }

    #[test]
    fn parses_complex_guards() {
        let mut vars = VarSet::new();
        let r = parse_rule("(A & !B) + (A | B) -> (A & B) + (.)", &mut vars).unwrap();
        let a = vars.get("A").unwrap();
        let b = vars.get("B").unwrap();
        assert!(r.matches(a.mask(), b.mask()));
        assert!(!r.matches(a.mask() | b.mask(), b.mask()));
        assert!(!r.matches(a.mask(), 0));
    }

    #[test]
    fn parses_probability_suffix() {
        let mut vars = VarSet::new();
        let r = parse_rule("(A) + (.) -> (!A) + (.) @ 0.5", &mut vars).unwrap();
        assert_eq!(r.probability, 0.5);
    }

    #[test]
    fn parses_unicode_notation() {
        let mut vars = VarSet::new();
        let r = parse_rule("▷ (X) + (¬X) → (¬X) + (.)", &mut vars).unwrap();
        let x = vars.get("X").unwrap();
        assert!(r.matches(x.mask(), 0));
    }

    #[test]
    fn rejects_disjunctive_post_condition() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (A | B) + (.)", &mut vars).unwrap_err();
        assert!(err.message.contains("conjunction of literals"), "{err}");
    }

    #[test]
    fn rejects_bad_probability() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (.) + (.) @ 2.0", &mut vars).unwrap_err();
        assert!(err.message.contains("out of"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut vars = VarSet::new();
        let err = parse_rule("(A) + (.) -> (.) + (.) extra", &mut vars).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn ruleset_skips_comments_and_blanks() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset(
            "# a comment\n\n(A) + (A) -> (A) + (!A)\n  \n# another\n(A) + (!A) -> (A) + (.)\n",
            &mut vars,
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn ruleset_error_reports_line_number() {
        let mut vars = VarSet::new();
        let err = parse_ruleset("(A) + (A) -> (A) + (!A)\n(bogus", &mut vars).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn roundtrip_through_render() {
        let mut vars = VarSet::new();
        let original = "(A & !B) + (.) -> (A & B) + (!A)";
        let r = parse_rule(original, &mut vars).unwrap();
        let rendered = r.render(&vars);
        let mut vars2 = vars.clone();
        let r2 = parse_rule(&rendered, &mut vars2).unwrap();
        // Semantically identical: same matches and applications on all states.
        for a in 0..4u32 {
            for b in 0..4u32 {
                assert_eq!(r.matches(a, b), r2.matches(a, b));
                if r.matches(a, b) {
                    assert_eq!(r.apply(a, b), r2.apply(a, b));
                }
            }
        }
    }

    #[test]
    fn primed_identifiers_allowed() {
        let mut vars = VarSet::new();
        let r = parse_rule("(A') + (B') -> (!A') + (!B')", &mut vars).unwrap();
        assert!(vars.get("A'").is_some());
        let a = vars.get("A'").unwrap();
        let b = vars.get("B'").unwrap();
        assert!(r.matches(a.mask(), b.mask()));
    }
}
