//! Property tests for the rule DSL: parse/render round-trips, minimal
//! update semantics, and guard algebra.

use pp_rules::parse::parse_rule;
use pp_rules::{Guard, Rule, Ruleset, Update, Var, VarSet};
use proptest::prelude::*;

fn vars3() -> VarSet {
    VarSet::from_names(&["A", "B", "C"])
}

/// Strategy: an arbitrary guard over 3 variables with bounded depth.
fn guard_strategy() -> impl Strategy<Value = Guard> {
    let leaf = prop_oneof![
        Just(Guard::True),
        (0usize..3).prop_map(|i| Guard::var(Var::new(i))),
        (0usize..3).prop_map(|i| Guard::not_var(Var::new(i))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|g| g.not()),
        ]
    })
}

/// Strategy: a conjunction-of-literals guard (usable as post-condition).
fn literal_conj_strategy() -> impl Strategy<Value = Guard> {
    proptest::collection::vec((0usize..3, any::<bool>()), 0..3).prop_map(|lits| {
        let unique: Vec<(Var, bool)> = {
            let mut seen = std::collections::HashMap::new();
            for (i, pos) in lits {
                seen.insert(i, pos);
            }
            seen.into_iter().map(|(i, p)| (Var::new(i), p)).collect()
        };
        Guard::all_of(&unique)
    })
}

proptest! {
    /// Rendering a guard and re-parsing it (as part of a rule) preserves
    /// semantics on every state.
    #[test]
    fn guard_render_roundtrip(g in guard_strategy()) {
        let vars = vars3();
        let rendered = g.render(&vars);
        let rule_text = format!("({rendered}) + (.) -> (.) + (.)");
        let mut vars2 = vars.clone();
        let rule = parse_rule(&rule_text, &mut vars2).expect("re-parses");
        for state in 0..8u32 {
            prop_assert_eq!(g.eval(state), rule.guard_a.eval(state),
                "state {:#b} disagrees for {}", state, rendered);
        }
    }

    /// Full rule round-trip: render then parse gives the same matches and
    /// applications everywhere.
    #[test]
    fn rule_render_roundtrip(g1 in guard_strategy(), g2 in guard_strategy(),
                             p1 in literal_conj_strategy(), p2 in literal_conj_strategy()) {
        let vars = vars3();
        let rule = match Rule::new(g1, g2, &p1, &p2) {
            Ok(r) => r,
            Err(_) => return Ok(()), // contradictory post-condition: skip
        };
        let rendered = rule.render(&vars);
        let mut vars2 = vars.clone();
        let reparsed = parse_rule(&rendered, &mut vars2).expect("re-parses");
        for a in 0..8u32 {
            for b in 0..8u32 {
                prop_assert_eq!(rule.matches(a, b), reparsed.matches(a, b));
                if rule.matches(a, b) {
                    prop_assert_eq!(rule.apply(a, b), reparsed.apply(a, b));
                }
            }
        }
    }

    /// Minimal update: applying an update twice equals applying it once
    /// (idempotence), and untouched bits are preserved.
    #[test]
    fn updates_are_idempotent_and_minimal(p in literal_conj_strategy(), state in 0u32..8) {
        let u = Update::from_guard(&p).expect("literal conjunction");
        let once = u.apply(state);
        prop_assert_eq!(u.apply(once), once, "idempotent");
        // The post-condition holds after the update.
        prop_assert!(p.eval(once));
        // Bits not mentioned are untouched.
        let touched = u.set | u.clear;
        prop_assert_eq!(state & !touched, once & !touched);
    }

    /// Guard evaluation respects boolean algebra: double negation.
    #[test]
    fn double_negation(g in guard_strategy(), state in 0u32..8) {
        prop_assert_eq!(g.clone().not().not().eval(state), g.eval(state));
    }

    /// Composition preserves per-thread uniform selection: composing a
    /// ruleset with itself doubles the length but keeps semantics.
    #[test]
    fn compose_self_preserves_rules(g in guard_strategy()) {
        let rule = Rule::new(g, Guard::True, &Guard::True, &Guard::True).unwrap();
        let rs = Ruleset::from_rules(vec![rule.clone()]);
        let composed = Ruleset::compose(&[rs.clone(), rs]);
        prop_assert_eq!(composed.len(), 2);
        for r in composed.rules() {
            prop_assert_eq!(r, &rule);
        }
    }

    /// literals() and all_of() are mutually inverse on literal sets.
    #[test]
    fn literals_roundtrip(p in literal_conj_strategy()) {
        if let Some(lits) = p.literals() {
            let rebuilt = Guard::all_of(&lits);
            for state in 0..8u32 {
                prop_assert_eq!(p.eval(state), rebuilt.eval(state));
            }
        }
    }
}
