//! Property tests for the rule DSL: parse/render round-trips, minimal
//! update semantics, and guard algebra.
//!
//! Cases are drawn from seeded [`SimRng`] streams (one deterministic seed
//! per case), so any failure reproduces from the printed case index.

use pp_engine::rng::SimRng;
use pp_rules::parse::parse_rule;
use pp_rules::{Guard, Rule, Ruleset, Update, Var, VarSet};

const CASES: u64 = 256;

fn vars3() -> VarSet {
    VarSet::from_names(&["A", "B", "C"])
}

/// An arbitrary guard over 3 variables with bounded recursion depth.
fn random_guard(rng: &mut SimRng, depth: u32) -> Guard {
    let branch = if depth == 0 {
        rng.below(3)
    } else {
        rng.below(6)
    };
    match branch {
        0 => Guard::True,
        1 => Guard::var(Var::new(rng.index(3))),
        2 => Guard::not_var(Var::new(rng.index(3))),
        3 => random_guard(rng, depth - 1).and(random_guard(rng, depth - 1)),
        4 => random_guard(rng, depth - 1).or(random_guard(rng, depth - 1)),
        _ => random_guard(rng, depth - 1).not(),
    }
}

/// A conjunction-of-literals guard (usable as a post-condition): each of
/// the 3 variables independently appears positively, negatively, or not
/// at all.
fn random_literal_conj(rng: &mut SimRng) -> Guard {
    let mut lits = Vec::new();
    for i in 0..3usize {
        match rng.below(3) {
            0 => lits.push((Var::new(i), true)),
            1 => lits.push((Var::new(i), false)),
            _ => {}
        }
    }
    Guard::all_of(&lits)
}

/// Rendering a guard and re-parsing it (as part of a rule) preserves
/// semantics on every state.
#[test]
fn guard_render_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(2_100 + case);
        let g = random_guard(&mut rng, 3);
        let vars = vars3();
        let rendered = g.render(&vars);
        let rule_text = format!("({rendered}) + (.) -> (.) + (.)");
        let mut vars2 = vars.clone();
        let rule = parse_rule(&rule_text, &mut vars2).expect("re-parses");
        for state in 0..8u32 {
            assert_eq!(
                g.eval(state),
                rule.guard_a.eval(state),
                "case {case}: state {state:#b} disagrees for {rendered}"
            );
        }
    }
}

/// Full rule round-trip: render then parse gives the same matches and
/// applications everywhere.
#[test]
fn rule_render_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(2_200 + case);
        let g1 = random_guard(&mut rng, 3);
        let g2 = random_guard(&mut rng, 3);
        let p1 = random_literal_conj(&mut rng);
        let p2 = random_literal_conj(&mut rng);
        let vars = vars3();
        let rule = match Rule::new(g1, g2, &p1, &p2) {
            Ok(r) => r,
            Err(_) => continue, // contradictory post-condition: skip
        };
        let rendered = rule.render(&vars);
        let mut vars2 = vars.clone();
        let reparsed = parse_rule(&rendered, &mut vars2).expect("re-parses");
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(rule.matches(a, b), reparsed.matches(a, b), "case {case}");
                if rule.matches(a, b) {
                    assert_eq!(rule.apply(a, b), reparsed.apply(a, b), "case {case}");
                }
            }
        }
    }
}

/// Minimal update: applying an update twice equals applying it once
/// (idempotence), and untouched bits are preserved.
#[test]
fn updates_are_idempotent_and_minimal() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(2_300 + case);
        let p = random_literal_conj(&mut rng);
        let state = rng.next_u64() as u32 % 8;
        let u = Update::from_guard(&p).expect("literal conjunction");
        let once = u.apply(state);
        assert_eq!(u.apply(once), once, "case {case}: idempotent");
        // The post-condition holds after the update.
        assert!(p.eval(once), "case {case}");
        // Bits not mentioned are untouched.
        let touched = u.set | u.clear;
        assert_eq!(state & !touched, once & !touched, "case {case}");
    }
}

/// Guard evaluation respects boolean algebra: double negation.
#[test]
fn double_negation() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(2_400 + case);
        let g = random_guard(&mut rng, 3);
        let state = rng.next_u64() as u32 % 8;
        assert_eq!(
            g.clone().not().not().eval(state),
            g.eval(state),
            "case {case}"
        );
    }
}

/// Composition preserves per-thread uniform selection: composing a
/// ruleset with itself doubles the length but keeps semantics.
#[test]
fn compose_self_preserves_rules() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(2_500 + case);
        let g = random_guard(&mut rng, 3);
        let rule = Rule::new(g, Guard::True, &Guard::True, &Guard::True).unwrap();
        let rs = Ruleset::from_rules(vec![rule.clone()]);
        let composed = Ruleset::compose(&[rs.clone(), rs]);
        assert_eq!(composed.len(), 2, "case {case}");
        for r in composed.rules() {
            assert_eq!(r, &rule, "case {case}");
        }
    }
}

/// literals() and all_of() are mutually inverse on literal sets.
#[test]
fn literals_roundtrip() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(2_600 + case);
        let p = random_literal_conj(&mut rng);
        if let Some(lits) = p.literals() {
            let rebuilt = Guard::all_of(&lits);
            for state in 0..8u32 {
                assert_eq!(p.eval(state), rebuilt.eval(state), "case {case}");
            }
        }
    }
}
