//! Seeded property test: `parse(render(x)) == x` for rules and rulesets.
//!
//! Generates random rules whose shape the renderer preserves — guards are
//! left-associated `|`-chains of left-associated `&`-chains (matching the
//! parser's associativity), post-conditions are conjunctions of literals,
//! and probabilities are dyadic so their decimal rendering is exact — then
//! asserts the rendered text parses back to a structurally equal value
//! without registering any new variables.

use pp_rules::parse::{parse_rule, parse_ruleset};
use pp_rules::{Guard, Rule, Ruleset, Var, VarSet};

/// Minimal xorshift64* PRNG so the test needs no dependencies and every
/// run explores the same cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A guard atom: a literal, `.`, or (depth permitting) a negated subguard.
fn gen_atom(rng: &mut Rng, vars: &[Var], depth: u32) -> Guard {
    match rng.below(8) {
        0 if depth > 0 => gen_guard(rng, vars, depth - 1).not(),
        1 => Guard::any(),
        r => {
            let v = vars[(r as usize) % vars.len()];
            if rng.below(2) == 0 {
                Guard::var(v)
            } else {
                Guard::not_var(v)
            }
        }
    }
}

/// A renderer-stable guard: a left-assoc `|`-chain of left-assoc
/// `&`-chains of atoms, mirroring how the parser associates operators.
fn gen_guard(rng: &mut Rng, vars: &[Var], depth: u32) -> Guard {
    let n_or = 1 + rng.below(2);
    let mut guard: Option<Guard> = None;
    for _ in 0..n_or {
        let n_and = 1 + rng.below(3);
        let mut conj: Option<Guard> = None;
        for _ in 0..n_and {
            let atom = gen_atom(rng, vars, depth);
            conj = Some(match conj {
                None => atom,
                Some(g) => g.and(atom),
            });
        }
        let conj = conj.expect("n_and >= 1");
        guard = Some(match guard {
            None => conj,
            Some(g) => g.or(conj),
        });
    }
    guard.expect("n_or >= 1")
}

/// A post-condition: a conjunction of literals over a random subset of the
/// variables (possibly empty, rendering as `.`).
fn gen_post(rng: &mut Rng, vars: &[Var]) -> Guard {
    let mut literals = Vec::new();
    for &v in vars {
        match rng.below(4) {
            0 => literals.push((v, true)),
            1 => literals.push((v, false)),
            _ => {}
        }
    }
    Guard::all_of(&literals)
}

fn gen_rule(rng: &mut Rng, vars: &[Var]) -> Rule {
    let guard_a = gen_guard(rng, vars, 2);
    let guard_b = gen_guard(rng, vars, 2);
    let post_a = gen_post(rng, vars);
    let post_b = gen_post(rng, vars);
    let rule = Rule::new(guard_a, guard_b, &post_a, &post_b)
        .expect("generated post-conditions are conjunctions of literals");
    // Dyadic probabilities print exactly in decimal, so `@ p` round-trips.
    match rng.below(4) {
        0 => rule.with_probability(0.5),
        1 => rule.with_probability(0.25),
        _ => rule,
    }
}

fn gen_vars(rng: &mut Rng) -> (VarSet, Vec<Var>) {
    let names = ["A", "B", "C", "D", "E", "F"];
    let count = 2 + rng.below(4) as usize;
    let mut set = VarSet::new();
    let vars = names[..count].iter().map(|n| set.add(n)).collect();
    (set, vars)
}

#[test]
fn random_rules_roundtrip_through_render() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for case in 0..300 {
        let (vars, var_list) = gen_vars(&mut rng);
        let rule = gen_rule(&mut rng, &var_list);
        let rendered = rule.render(&vars);
        let mut vars2 = vars.clone();
        let reparsed = parse_rule(&rendered, &mut vars2)
            .unwrap_or_else(|e| panic!("case {case}: {rendered:?} failed to re-parse: {e}"));
        assert_eq!(reparsed, rule, "case {case}: {rendered:?}");
        assert_eq!(vars2, vars, "case {case}: re-parse registered new vars");
    }
}

#[test]
fn random_rulesets_roundtrip_through_render() {
    let mut rng = Rng(0xD1B5_4A32_D192_ED03);
    for case in 0..100 {
        let (vars, var_list) = gen_vars(&mut rng);
        let rules: Vec<Rule> = (0..1 + rng.below(4))
            .map(|_| gen_rule(&mut rng, &var_list))
            .collect();
        let ruleset = Ruleset::from_rules(rules);
        // Render one rule per line, with the optional `>` prefix on some.
        let rendered: String = ruleset
            .rules()
            .iter()
            .map(|r| {
                if rng.below(2) == 0 {
                    format!("> {}", r.render(&vars))
                } else {
                    r.render(&vars)
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let mut vars2 = vars.clone();
        let reparsed = parse_ruleset(&rendered, &mut vars2)
            .unwrap_or_else(|e| panic!("case {case}: {rendered:?} failed to re-parse: {e}"));
        assert_eq!(reparsed, ruleset, "case {case}: {rendered:?}");
        assert_eq!(vars2, vars, "case {case}: re-parse registered new vars");
    }
}
