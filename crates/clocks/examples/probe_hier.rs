//! Scratch probe: hierarchy rate separation.
use pp_clocks::hierarchy::ClockHierarchy;
use pp_clocks::junta::PairwiseElimination;
use pp_clocks::oscillator::Dk18Oscillator;
use pp_engine::obj::ObjPopulation;
use pp_engine::rng::SimRng;

fn main() {
    let n = 3000usize;
    let h = ClockHierarchy::new(Dk18Oscillator::new(), PairwiseElimination::new(), 2, 6, 12);
    let mut pop = ObjPopulation::from_fn(&h, n, |_| h.initial_agent());
    let mut rng = SimRng::seed_from(5);
    let mut last = [None::<u8>; 2];
    let mut ticks = [Vec::new(), Vec::new()];
    while pop.time() < 40000.0 {
        pop.step_batch(&mut rng, n as u64);
        if pop.time() < 150.0 {
            continue;
        }
        // majority phase per level
        for lvl in 0..2 {
            let mut hist = [0u64; 12];
            for a in pop.iter() {
                hist[a.cur[lvl].phase as usize] += 1;
            }
            let maj = (0..12).max_by_key(|&p| hist[p]).unwrap() as u8;
            if last[lvl] != Some(maj) {
                ticks[lvl].push((pop.time(), maj));
                last[lvl] = Some(maj);
            }
        }
    }
    for (lvl, t) in ticks.iter().enumerate() {
        let g: Vec<f64> = t.windows(2).map(|w| w[1].0 - w[0].0).collect();
        let mean = g.iter().sum::<f64>() / g.len().max(1) as f64;
        let bad = t
            .windows(2)
            .filter(|w| (w[1].1 + 12 - w[0].1) % 12 != 1)
            .count();
        println!(
            "level {lvl}: ticks={} mean_gap={mean:.1} bad_seq={bad}",
            t.len()
        );
    }
    // also report X count
    let x = pop.count_where(|a| h.is_x(a));
    println!("final #X = {x}");
}
