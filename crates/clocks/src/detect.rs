//! Oscillation analysis: dominance events, rotation order, and period
//! measurement from species-count time series.
//!
//! Theorem 5.1 characterizes correct oscillator operation by (i) `a_min`
//! (the smallest species count) staying small and (ii) each species
//! periodically being held by almost all agents, rotating in cyclic order.
//! These utilities extract exactly those features from recorded traces so
//! experiments can verify them quantitatively.

use crate::oscillator::NUM_SPECIES;

/// One dominance event: a species exceeded the dominance threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dominance {
    /// Parallel time at which the species first crossed the threshold in
    /// this event.
    pub time: f64,
    /// The dominant species (0, 1, or 2).
    pub species: usize,
}

/// Extracts the sequence of dominance events from a trace of
/// `(time, [#A₁, #A₂, #A₃])` rows.
///
/// A species becomes dominant when its share of the species population
/// (excluding source agents) exceeds `threshold`; the next event is only
/// recorded once a *different* species becomes dominant, so consecutive
/// events always name different species.
///
/// # Panics
///
/// Panics if `threshold` is not in `(0.5, 1.0)` (values ≤ ½ would allow two
/// simultaneous dominants).
#[must_use]
pub fn dominance_events(trace: &[(f64, [u64; NUM_SPECIES])], threshold: f64) -> Vec<Dominance> {
    assert!(
        threshold > 0.5 && threshold < 1.0,
        "threshold must be in (0.5, 1.0)"
    );
    let mut events = Vec::new();
    let mut current: Option<usize> = None;
    for &(time, counts) in trace {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            continue;
        }
        for (s, &c) in counts.iter().enumerate() {
            if c as f64 / total as f64 > threshold && current != Some(s) {
                events.push(Dominance { time, species: s });
                current = Some(s);
            }
        }
    }
    events
}

/// Checks that a dominance sequence follows the cyclic order
/// `A₁ → A₂ → A₃ → A₁ …`, returning the number of violations.
#[must_use]
pub fn rotation_violations(events: &[Dominance]) -> usize {
    events
        .windows(2)
        .filter(|w| w[1].species != (w[0].species + 1) % NUM_SPECIES)
        .count()
}

/// Measures full oscillation periods: the time between successive dominance
/// events of the *same* species. Returns one duration per completed cycle.
#[must_use]
pub fn periods(events: &[Dominance]) -> Vec<f64> {
    let mut last_seen: [Option<f64>; NUM_SPECIES] = [None; NUM_SPECIES];
    let mut out = Vec::new();
    for e in events {
        if let Some(prev) = last_seen[e.species] {
            out.push(e.time - prev);
        }
        last_seen[e.species] = Some(e.time);
    }
    out
}

/// The smallest species count in a row (`a_min` in the paper's notation).
#[must_use]
pub fn a_min(counts: &[u64; NUM_SPECIES]) -> u64 {
    *counts.iter().min().expect("3 species")
}

/// Share of the largest species in a row, in `[0, 1]` (`0` for an all-zero
/// row). Healthy rotation spends most of its time near 1; corruption
/// flattens the distribution and pushes this toward `1/3`.
#[must_use]
pub fn majority_share(counts: &[u64; NUM_SPECIES]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let max = *counts.iter().max().expect("3 species");
    max as f64 / total as f64
}

/// First time in the trace at which `a_min` drops below `bound`
/// (Theorem 5.1(i) "escape from the central region"), or `None`.
#[must_use]
pub fn escape_time(trace: &[(f64, [u64; NUM_SPECIES])], bound: u64) -> Option<f64> {
    trace
        .iter()
        .find(|(_, c)| a_min(c) < bound)
        .map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: f64, a: u64, b: u64, c: u64) -> (f64, [u64; NUM_SPECIES]) {
        (t, [a, b, c])
    }

    #[test]
    fn dominance_extraction_basic() {
        let trace = vec![
            row(0.0, 34, 33, 33),
            row(1.0, 95, 3, 2),
            row(2.0, 90, 8, 2),
            row(3.0, 5, 92, 3),
            row(4.0, 2, 5, 93),
        ];
        let ev = dominance_events(&trace, 0.9);
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].species, 0);
        assert_eq!(ev[1].species, 1);
        assert_eq!(ev[2].species, 2);
        assert_eq!(rotation_violations(&ev), 0);
    }

    #[test]
    fn dominance_requires_change_of_species() {
        let trace = vec![row(0.0, 95, 3, 2), row(1.0, 96, 2, 2), row(2.0, 97, 2, 1)];
        let ev = dominance_events(&trace, 0.9);
        assert_eq!(ev.len(), 1, "sustained dominance is a single event");
    }

    #[test]
    fn rotation_violation_detected() {
        let ev = vec![
            Dominance {
                time: 0.0,
                species: 0,
            },
            Dominance {
                time: 1.0,
                species: 2,
            },
        ];
        assert_eq!(rotation_violations(&ev), 1);
    }

    #[test]
    fn periods_from_same_species_returns() {
        let ev = vec![
            Dominance {
                time: 0.0,
                species: 0,
            },
            Dominance {
                time: 1.0,
                species: 1,
            },
            Dominance {
                time: 2.0,
                species: 2,
            },
            Dominance {
                time: 3.5,
                species: 0,
            },
            Dominance {
                time: 4.5,
                species: 1,
            },
        ];
        let p = periods(&ev);
        assert_eq!(p, vec![3.5, 3.5]);
    }

    #[test]
    fn majority_share_handles_edge_rows() {
        assert_eq!(majority_share(&[0, 0, 0]), 0.0);
        assert_eq!(majority_share(&[10, 0, 0]), 1.0);
        let flat = majority_share(&[33, 33, 34]);
        assert!((flat - 0.34).abs() < 1e-12);
    }

    #[test]
    fn escape_time_finds_first_crossing() {
        let trace = vec![
            row(0.0, 34, 33, 33),
            row(2.0, 50, 40, 10),
            row(3.0, 80, 19, 1),
        ];
        assert_eq!(escape_time(&trace, 5), Some(3.0));
        assert_eq!(escape_time(&trace, 1), None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_validated() {
        let _ = dominance_events(&[], 0.4);
    }

    #[test]
    fn zero_total_rows_skipped() {
        let trace = vec![row(0.0, 0, 0, 0), row(1.0, 10, 0, 0)];
        let ev = dominance_events(&trace, 0.9);
        assert_eq!(ev.len(), 1);
    }
}
