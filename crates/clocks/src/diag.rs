//! Paper-facing diagnostic observers: dominance-rotation recording, per-level
//! tick tracing, and good-iteration estimation.
//!
//! Where [`crate::detect`] provides pure functions over already-recorded
//! traces, this module provides the *recorders* that hook into live runs:
//!
//! * [`DominanceRecorder`] — an [`Observer`] that samples species counts on
//!   a parallel-time grid and summarizes the oscillator's rotation as
//!   dominance events, period lists, and a log₂ period histogram. Theorem
//!   5.1 predicts a rotation period of `Θ(log n)`; the recorded median
//!   period makes that measurable per run.
//! * [`TickTracer`] — tracks the majority phase of every level of a
//!   [`ClockHierarchy`] population and records each majority-phase change
//!   ("tick") with its parallel time. Adjacent levels should tick at rates
//!   separated by `Θ(log n)` (Section 5.3); the per-level tick lists expose
//!   exactly that. Ticks can be re-emitted as [`pp_engine::trace`] events.
//! * [`GoodIterationEstimator`] — accumulates per-iteration good/bad
//!   verdicts for compiled-program runs and reports the good fraction. The
//!   paper's simulation argument needs most gated windows to be "good"
//!   (every agent participates, clocks in phase); this estimator quantifies
//!   how often that holds empirically.
//! * [`RecoveryProbe`] and [`rotation_recovery`] — fault-recovery
//!   measurement. The probe timestamps when an arbitrary scalar health
//!   statistic (majority share, tick rate, `a_min`, …) returns to a
//!   pre-fault band and stays there; `rotation_recovery` applies the same
//!   idea to a [`DominanceRecorder`] trace, declaring recovery when the
//!   post-fault rotation period comes back within tolerance of the
//!   pre-fault median. Together they quantify the self-stabilization the
//!   clock constructions are claimed to have.

use crate::detect::{dominance_events, periods, Dominance};
use crate::hierarchy::HierAgent;
use crate::oscillator::{Oscillator, NUM_SPECIES};
use pp_engine::obj::{ObjPopulation, ObjProtocol};
use pp_engine::observe::Observer;
use pp_engine::sim::Simulator;
use pp_engine::trace::Tracer;

/// Records species counts of an oscillator run on a parallel-time grid and
/// summarizes the dominance rotation.
///
/// Attach to any dense-backend run of an [`Oscillator`] protocol via
/// [`pp_engine::sim::run_rounds`]; afterwards query [`DominanceRecorder::events`],
/// [`DominanceRecorder::periods`], [`DominanceRecorder::median_period`], or
/// [`DominanceRecorder::period_histogram`].
///
/// # Examples
///
/// ```
/// use pp_clocks::diag::DominanceRecorder;
/// use pp_clocks::oscillator::{central_init, Dk18Oscillator};
/// use pp_engine::counts::CountPopulation;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::run_rounds;
///
/// let osc = Dk18Oscillator::new();
/// let mut pop = CountPopulation::from_counts(&osc, &central_init(&osc, 2000, 5));
/// let mut rec = DominanceRecorder::new(osc, 0.8, 0.5);
/// let mut rng = SimRng::seed_from(1);
/// run_rounds(&mut pop, 150.0, &mut rng, &mut [&mut rec]);
/// assert!(rec.events().len() > 3, "the oscillator rotates");
/// ```
#[derive(Debug, Clone)]
pub struct DominanceRecorder<O> {
    oscillator: O,
    threshold: f64,
    /// Sampling interval in rounds.
    every_rounds: f64,
    next_step: u64,
    rows: Vec<(f64, [u64; NUM_SPECIES])>,
}

impl<O: Oscillator> DominanceRecorder<O> {
    /// Creates a recorder sampling every `every_rounds` rounds and calling
    /// a species dominant when its share exceeds `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `every_rounds <= 0` or `threshold` is not in `(0.5, 1.0)`.
    #[must_use]
    pub fn new(oscillator: O, threshold: f64, every_rounds: f64) -> Self {
        assert!(every_rounds > 0.0);
        assert!(
            threshold > 0.5 && threshold < 1.0,
            "threshold must be in (0.5, 1.0)"
        );
        Self {
            oscillator,
            threshold,
            every_rounds,
            next_step: 0,
            rows: Vec::new(),
        }
    }

    /// The sampled `(time, [#A₁, #A₂, #A₃])` rows.
    #[must_use]
    pub fn rows(&self) -> &[(f64, [u64; NUM_SPECIES])] {
        &self.rows
    }

    /// Dominance events extracted from the recorded rows.
    #[must_use]
    pub fn events(&self) -> Vec<Dominance> {
        dominance_events(&self.rows, self.threshold)
    }

    /// Full-cycle periods (same-species return times) in rounds.
    #[must_use]
    pub fn periods(&self) -> Vec<f64> {
        periods(&self.events())
    }

    /// Median rotation period in rounds, or `None` before the first
    /// completed cycle. Theorem 5.1 predicts `Θ(log n)`.
    #[must_use]
    pub fn median_period(&self) -> Option<f64> {
        let mut p = self.periods();
        if p.is_empty() {
            return None;
        }
        p.sort_by(|a, b| a.partial_cmp(b).expect("periods are finite"));
        Some(p[p.len() / 2])
    }

    /// Log₂-bucketed histogram of rotation periods: bucket `i` counts
    /// periods `p` with `⌈p⌉ ∈ [2^{i−1}+1 .. 2^i]` (bucket 0 counts `p ≤ 1`).
    /// Trailing empty buckets are trimmed.
    #[must_use]
    pub fn period_histogram(&self) -> Vec<u64> {
        let mut hist = Vec::new();
        for p in self.periods() {
            let v = p.ceil().max(0.0) as u64;
            let bucket = if v <= 1 {
                0
            } else {
                (64 - (v - 1).leading_zeros()) as usize
            };
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        hist
    }
}

impl<O: Oscillator> Observer for DominanceRecorder<O> {
    fn observe(&mut self, steps: u64, sim: &dyn Simulator) {
        if steps < self.next_step {
            return;
        }
        // Accumulate species counts state-by-state: no intermediate
        // count-vector allocation per checkpoint.
        let mut counts = [0u64; NUM_SPECIES];
        for state in 0..self.oscillator.num_states() {
            if let Some(s) = self.oscillator.species_of(state) {
                counts[s] += sim.count(state);
            }
        }
        self.rows.push((sim.time(), counts));
        let stride = (self.every_rounds * sim.n() as f64).max(1.0) as u64;
        self.next_step = steps + stride;
    }

    fn stride(&self, steps: u64, _sim: &dyn Simulator) -> u64 {
        self.next_step.saturating_sub(steps).max(1)
    }
}

/// One recorded tick: a level's majority phase changed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tick {
    /// Parallel time of the snapshot that first showed the new phase.
    pub time: f64,
    /// The new majority phase.
    pub phase: u8,
}

/// Tracks the majority phase of every level of a clock-hierarchy population
/// and records each change as a [`Tick`].
///
/// Call [`TickTracer::observe`] on a schedule of your choosing (e.g. every
/// few rounds between `run_rounds` calls); each call scans the population
/// once, `O(n · levels)`.
#[derive(Debug, Clone)]
pub struct TickTracer {
    modulus: usize,
    last: Vec<Option<u8>>,
    ticks: Vec<Vec<Tick>>,
    /// Parallel time spanned by observations, for rate estimates.
    first_time: Option<f64>,
    last_time: f64,
}

impl TickTracer {
    /// Creates a tracer for `levels` clock levels with phase modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or `m == 0`.
    #[must_use]
    pub fn new(levels: usize, m: u8) -> Self {
        assert!(levels > 0 && m > 0);
        Self {
            modulus: m as usize,
            last: vec![None; levels],
            ticks: vec![Vec::new(); levels],
            first_time: None,
            last_time: 0.0,
        }
    }

    /// Snapshots the population: computes each level's majority phase and
    /// records a [`Tick`] for every level whose majority changed. Accepts
    /// any structured-state protocol over [`HierAgent`] (by value or
    /// reference), i.e. any [`crate::hierarchy::ClockHierarchy`] run.
    pub fn observe<P: ObjProtocol<State = HierAgent>>(&mut self, pop: &ObjPopulation<P>) {
        let time = pop.time();
        self.first_time.get_or_insert(time);
        self.last_time = time;
        for level in 0..self.last.len() {
            let mut hist = vec![0u64; self.modulus];
            for agent in pop.iter() {
                hist[agent.cur[level].phase as usize % self.modulus] += 1;
            }
            let maj = (0..self.modulus)
                .max_by_key(|&p| hist[p])
                .expect("modulus > 0") as u8;
            if self.last[level] != Some(maj) {
                if self.last[level].is_some() {
                    self.ticks[level].push(Tick { time, phase: maj });
                }
                self.last[level] = Some(maj);
            }
        }
    }

    /// The recorded ticks of `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn ticks(&self, level: usize) -> &[Tick] {
        &self.ticks[level]
    }

    /// Number of ticks recorded at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn tick_count(&self, level: usize) -> usize {
        self.ticks[level].len()
    }

    /// Ticks per round at `level` over the observed window, or `None` if
    /// no time has elapsed. Adjacent levels should differ by `Θ(log n)`.
    #[must_use]
    pub fn rate(&self, level: usize) -> Option<f64> {
        let start = self.first_time?;
        let span = self.last_time - start;
        if span <= 0.0 {
            return None;
        }
        Some(self.ticks[level].len() as f64 / span)
    }

    /// Emits every recorded tick as a `"tick"` event on `tracer`, with
    /// `level`, `phase`, and simulation-`time` fields.
    pub fn write_events(&self, tracer: &mut Tracer) {
        use pp_engine::json::Json;
        for (level, ticks) in self.ticks.iter().enumerate() {
            for t in ticks {
                tracer.event(
                    "tick",
                    &[
                        ("level", Json::from(level)),
                        ("phase", Json::from(u64::from(t.phase))),
                        ("time", Json::from(t.time)),
                    ],
                );
            }
        }
    }
}

/// Estimates the fraction of "good" iterations of a compiled program run.
///
/// The hierarchy's simulation argument requires that in most gated windows
/// every agent performs its one inner interaction and commits (a *good
/// iteration*); program-level correctness then follows w.h.p. Callers decide
/// what "good" means for their program and feed verdicts via
/// [`GoodIterationEstimator::record`].
///
/// # Examples
///
/// ```
/// use pp_clocks::diag::GoodIterationEstimator;
///
/// let mut est = GoodIterationEstimator::new();
/// for i in 0..100u32 {
///     est.record(i % 10 != 0);
/// }
/// assert_eq!(est.total(), 100);
/// assert!((est.fraction().unwrap() - 0.9).abs() < 1e-12);
/// assert!(est.meets(0.8));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GoodIterationEstimator {
    good: u64,
    total: u64,
}

impl GoodIterationEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one iteration's verdict.
    pub fn record(&mut self, good: bool) {
        self.total += 1;
        if good {
            self.good += 1;
        }
    }

    /// Number of good iterations recorded.
    #[must_use]
    pub fn good(&self) -> u64 {
        self.good
    }

    /// Total iterations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Good fraction, or `None` before any iteration.
    #[must_use]
    pub fn fraction(&self) -> Option<f64> {
        (self.total > 0).then(|| self.good as f64 / self.total as f64)
    }

    /// Whether the good fraction is known and at least `threshold`.
    #[must_use]
    pub fn meets(&self, threshold: f64) -> bool {
        self.fraction().is_some_and(|f| f >= threshold)
    }
}

/// Timestamps when a scalar health statistic returns to a pre-fault band
/// and stays there.
///
/// The probe is statistic-agnostic: feed it majority share
/// ([`crate::detect::majority_share`]), per-level tick rate, `a_min`, or any
/// other per-sample number. Recovery is declared at the *first* sample of a
/// run of `required` consecutive in-band samples after the marked fault —
/// requiring a streak filters out single lucky samples mid-turbulence.
///
/// # Examples
///
/// ```
/// use pp_clocks::diag::RecoveryProbe;
///
/// // Healthy share ≥ 0.75; require 3 consecutive good samples.
/// let mut probe = RecoveryProbe::new(0.75, 1.0, 3);
/// probe.mark_fault(10.0);
/// for (t, share) in [(11.0, 0.4), (12.0, 0.8), (13.0, 0.5), // relapse
///                    (14.0, 0.8), (15.0, 0.9), (16.0, 0.85)] {
///     probe.sample(t, share);
/// }
/// assert_eq!(probe.recovered_at(), Some(14.0));
/// assert_eq!(probe.recovery_time(), Some(4.0));
/// ```
#[derive(Debug, Clone)]
pub struct RecoveryProbe {
    lo: f64,
    hi: f64,
    required: usize,
    fault_time: Option<f64>,
    streak: usize,
    streak_start: f64,
    recovered_at: Option<f64>,
}

impl RecoveryProbe {
    /// Creates a probe with healthy band `[lo, hi]`, declaring recovery
    /// after `required` consecutive in-band samples.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `required == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, required: usize) -> Self {
        assert!(lo <= hi, "band must satisfy lo <= hi");
        assert!(required > 0, "at least one confirming sample is required");
        Self {
            lo,
            hi,
            required,
            fault_time: None,
            streak: 0,
            streak_start: 0.0,
            recovered_at: None,
        }
    }

    /// Creates a probe whose band is the pre-fault baseline: the median of
    /// `baseline` samples widened by `tolerance` on each side (relative,
    /// e.g. `0.25` for ±25%).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is empty, contains non-finite values, or
    /// `tolerance < 0`; also under the same conditions as
    /// [`RecoveryProbe::new`].
    #[must_use]
    pub fn from_baseline(baseline: &[f64], tolerance: f64, required: usize) -> Self {
        assert!(!baseline.is_empty(), "baseline needs at least one sample");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let mut sorted = baseline.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("baseline samples are finite"));
        let median = sorted[sorted.len() / 2];
        let spread = median.abs() * tolerance;
        Self::new(median - spread, median + spread, required)
    }

    /// The healthy band `[lo, hi]`.
    #[must_use]
    pub fn band(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Marks the fault instant; resets any in-progress streak and a prior
    /// recovery verdict (re-marking measures recovery from the newest
    /// fault).
    pub fn mark_fault(&mut self, time: f64) {
        self.fault_time = Some(time);
        self.streak = 0;
        self.recovered_at = None;
    }

    /// Feeds one `(time, value)` sample. Samples at or before the marked
    /// fault are ignored (the baseline is the band, not the samples; a
    /// statistic completing exactly at the fault instant still measures the
    /// pre-fault regime, so it is not post-fault evidence). Returns `true`
    /// exactly once: on the sample completing the confirming streak.
    pub fn sample(&mut self, time: f64, value: f64) -> bool {
        let Some(fault) = self.fault_time else {
            return false;
        };
        if time <= fault || self.recovered_at.is_some() {
            return false;
        }
        if (self.lo..=self.hi).contains(&value) {
            if self.streak == 0 {
                self.streak_start = time;
            }
            self.streak += 1;
            if self.streak >= self.required {
                self.recovered_at = Some(self.streak_start);
                return true;
            }
        } else {
            self.streak = 0;
        }
        false
    }

    /// Parallel time of the first sample of the confirming streak, or
    /// `None` while not (yet) recovered.
    #[must_use]
    pub fn recovered_at(&self) -> Option<f64> {
        self.recovered_at
    }

    /// Rounds from the marked fault to recovery, or `None` while not (yet)
    /// recovered.
    #[must_use]
    pub fn recovery_time(&self) -> Option<f64> {
        Some(self.recovered_at? - self.fault_time?)
    }
}

/// Verdict of [`rotation_recovery`]: when the oscillator's dominance
/// rotation returned to its pre-fault period statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationRecovery {
    /// Median full-cycle period before the fault, in rounds.
    pub pre_median: f64,
    /// Parallel time at which the first in-band post-fault cycle completed.
    pub recovered_at: f64,
    /// Rounds from the fault to [`RotationRecovery::recovered_at`].
    pub recovery_time: f64,
}

/// Measures when dominance rotation recovers after a fault at `fault_time`,
/// from a [`DominanceRecorder`]-style trace of `(time, counts)` rows.
///
/// The pre-fault rows establish a baseline median full-cycle period;
/// recovery is the completion time of the first *entirely post-fault* cycle
/// whose period is within `tolerance` (relative, e.g. `0.75` for ±75%) of
/// that baseline. Cycles spanning the fault instant are excluded — an
/// inflated straddling period would otherwise delay the verdict
/// artificially. Returns `None` if the pre-fault trace completes no cycle
/// (no baseline) or no post-fault cycle ever lands in band (no recovery
/// within the trace).
///
/// # Panics
///
/// Panics if `threshold` is not in `(0.5, 1.0)` or `tolerance < 0`.
#[must_use]
pub fn rotation_recovery(
    rows: &[(f64, [u64; NUM_SPECIES])],
    threshold: f64,
    fault_time: f64,
    tolerance: f64,
) -> Option<RotationRecovery> {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let pre: Vec<_> = rows
        .iter()
        .filter(|&&(t, _)| t <= fault_time)
        .copied()
        .collect();
    let post: Vec<_> = rows
        .iter()
        .filter(|&&(t, _)| t > fault_time)
        .copied()
        .collect();
    let mut pre_periods = periods(&dominance_events(&pre, threshold));
    if pre_periods.is_empty() {
        return None;
    }
    pre_periods.sort_by(|a, b| a.partial_cmp(b).expect("periods are finite"));
    let pre_median = pre_periods[pre_periods.len() / 2];
    let (lo, hi) = (
        pre_median * (1.0 - tolerance).max(0.0),
        pre_median * (1.0 + tolerance),
    );
    // Walk post-fault events by hand (rather than through `periods`) to
    // keep each cycle's completion timestamp.
    let mut last_seen: [Option<f64>; NUM_SPECIES] = [None; NUM_SPECIES];
    for e in dominance_events(&post, threshold) {
        if let Some(prev) = last_seen[e.species] {
            let period = e.time - prev;
            if (lo..=hi).contains(&period) {
                return Some(RotationRecovery {
                    pre_median,
                    recovered_at: e.time,
                    recovery_time: e.time - fault_time,
                });
            }
        }
        last_seen[e.species] = Some(e.time);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClockHierarchy;
    use crate::junta::PairwiseElimination;
    use crate::oscillator::{central_init, Dk18Oscillator};
    use pp_engine::counts::CountPopulation;
    use pp_engine::json::parse_jsonl;
    use pp_engine::rng::SimRng;
    use pp_engine::sim::run_rounds;

    fn median_period_at(n: u64, seed: u64, rounds: f64) -> f64 {
        let osc = Dk18Oscillator::new();
        let mut pop = CountPopulation::from_counts(&osc, &central_init(&osc, n, 5));
        let mut rec = DominanceRecorder::new(osc, 0.8, 0.5);
        let mut rng = SimRng::seed_from(seed);
        run_rounds(&mut pop, rounds, &mut rng, &mut [&mut rec]);
        rec.median_period()
            .unwrap_or_else(|| panic!("no completed cycle at n={n}"))
    }

    #[test]
    fn dominance_recorder_measures_rotation() {
        let osc = Dk18Oscillator::new();
        let mut pop = CountPopulation::from_counts(&osc, &central_init(&osc, 2_000, 5));
        let mut rec = DominanceRecorder::new(osc, 0.8, 0.5);
        let mut rng = SimRng::seed_from(3);
        run_rounds(&mut pop, 200.0, &mut rng, &mut [&mut rec]);
        assert!(rec.rows().len() > 100, "grid sampled: {}", rec.rows().len());
        let events = rec.events();
        assert!(events.len() > 3, "rotation events: {}", events.len());
        let hist = rec.period_histogram();
        assert_eq!(
            hist.iter().sum::<u64>() as usize,
            rec.periods().len(),
            "histogram covers every period"
        );
        assert!(rec.median_period().unwrap() > 0.0);
    }

    #[test]
    fn median_dominance_period_grows_with_log_n() {
        // Theorem 5.1: rotation period Θ(log n). The median period over a
        // long seeded run must grow between well-separated sizes.
        let small = median_period_at(2_000, 11, 300.0);
        let large = median_period_at(50_000, 11, 300.0);
        assert!(
            large > small,
            "period should grow with n: small={small} large={large}"
        );
    }

    #[test]
    fn tick_tracer_records_base_level_ticks() {
        let h = ClockHierarchy::new(Dk18Oscillator::new(), PairwiseElimination::new(), 1, 6, 12);
        let n = 400usize;
        let mut pop = ObjPopulation::from_fn(&h, n, |_| h.initial_agent());
        let mut rng = SimRng::seed_from(42);
        let mut tracer = TickTracer::new(1, 12);
        while pop.time() < 600.0 {
            pop.run_rounds(5.0, &mut rng);
            tracer.observe(&pop);
        }
        assert!(
            tracer.tick_count(0) > 3,
            "base clock ticks: {}",
            tracer.tick_count(0)
        );
        for t in tracer.ticks(0) {
            assert!(t.phase < 12);
            assert!(t.time > 0.0);
        }
        assert!(tracer.rate(0).unwrap() > 0.0);
    }

    #[test]
    fn tick_tracer_events_roundtrip_through_jsonl() {
        let mut tt = TickTracer::new(2, 4);
        tt.last = vec![Some(0), Some(0)];
        tt.first_time = Some(0.0);
        tt.ticks[0].push(Tick {
            time: 1.5,
            phase: 1,
        });
        tt.ticks[1].push(Tick {
            time: 9.0,
            phase: 3,
        });
        let mut tr = Tracer::new();
        tt.write_events(&mut tr);
        let records = parse_jsonl(&tr.to_jsonl()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records[1]
                .get("level")
                .and_then(pp_engine::json::Json::as_u64),
            Some(1)
        );
        assert_eq!(
            records[1]
                .get("time")
                .and_then(pp_engine::json::Json::as_f64),
            Some(9.0)
        );
    }

    #[test]
    fn recovery_probe_requires_a_streak() {
        let mut probe = RecoveryProbe::new(0.5, 1.0, 2);
        assert!(!probe.sample(0.0, 0.9), "samples before mark_fault ignored");
        probe.mark_fault(5.0);
        assert!(!probe.sample(4.0, 0.9), "pre-fault samples ignored");
        assert!(!probe.sample(6.0, 0.9), "streak of 1 < required 2");
        assert!(!probe.sample(7.0, 0.2), "relapse resets the streak");
        assert!(!probe.sample(8.0, 0.8));
        assert!(probe.sample(9.0, 0.7), "second consecutive confirms");
        assert_eq!(probe.recovered_at(), Some(8.0), "streak start, not end");
        assert_eq!(probe.recovery_time(), Some(3.0));
        assert!(!probe.sample(10.0, 0.9), "fires only once");
    }

    #[test]
    fn recovery_probe_baseline_band() {
        let probe = RecoveryProbe::from_baseline(&[10.0, 12.0, 8.0, 11.0, 9.0], 0.5, 1);
        let (lo, hi) = probe.band();
        assert!((lo - 5.0).abs() < 1e-12, "median 10 widened to [5, 15]");
        assert!((hi - 15.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_recovery_excludes_straddling_cycles() {
        // Synthetic rotation with period 3; fault at t=10 followed by noise
        // rows, then clean rotation again from t=20.
        let mut rows = Vec::new();
        let push_cycle = |rows: &mut Vec<(f64, [u64; NUM_SPECIES])>, t0: f64| {
            rows.push((t0, [90, 5, 5]));
            rows.push((t0 + 1.0, [5, 90, 5]));
            rows.push((t0 + 2.0, [5, 5, 90]));
        };
        for i in 0..3 {
            push_cycle(&mut rows, f64::from(i) * 3.0);
        }
        for i in 0..10 {
            rows.push((10.0 + f64::from(i), [33, 33, 34])); // flattened
        }
        for i in 0..3 {
            push_cycle(&mut rows, 20.0 + f64::from(i) * 3.0);
        }
        let rec = rotation_recovery(&rows, 0.8, 10.0, 0.25).expect("recovers");
        assert!((rec.pre_median - 3.0).abs() < 1e-12);
        // First fully post-fault cycle completes at t = 23.
        assert!((rec.recovered_at - 23.0).abs() < 1e-12);
        assert!((rec.recovery_time - 13.0).abs() < 1e-12);
        // A trace with no pre-fault cycle yields no baseline.
        assert_eq!(rotation_recovery(&rows, 0.8, 0.5, 0.25), None);
    }

    /// Dents the oscillator three times mid-run — each injection pins 40%
    /// of the population into one species state, a heavy corruption of
    /// agent states that skews the rotation without flooding the source
    /// state `X` — and measures, per injection, the time until a full
    /// rotation cycle with a pre-fault-consistent period completes.
    ///
    /// (A `Randomize` corruption is deliberately *not* used here: it sends
    /// `frac/k` of the population into `X`, and the raw oscillator has no
    /// mechanism to shed source agents, so heavy randomization permanently
    /// damps the amplitude instead of testing recovery. The controlled
    /// clock's junta-elimination layer is what heals `X` pollution; see
    /// `elimination_invariant_survives_churn` below.)
    fn dent_recovery_times(n: u64, seed: u64) -> Vec<f64> {
        use crate::oscillator::Oscillator;
        use pp_engine::faults::{FaultSpec, FaultyPopulation};

        let fault_times = [120.0, 240.0, 360.0];
        let osc = Dk18Oscillator::new();
        let inner = CountPopulation::from_counts(&osc, &central_init(&osc, n, 5));
        let pin = osc.species_state(0);
        let spec = FaultSpec::new(seed ^ 0xfa17).byzantine((n * 2) / 5, pin, 120.0);
        let mut pop = FaultyPopulation::new(inner, &spec).expect("valid spec");
        let mut rec = DominanceRecorder::new(osc, 0.8, 0.25);
        let mut rng = SimRng::seed_from(seed);
        run_rounds(&mut pop, 470.0, &mut rng, &mut [&mut rec]);
        assert_eq!(pop.events().len(), 3, "all injections fired");
        fault_times
            .iter()
            .filter_map(|&ft| {
                // Window each measurement so the next injection cannot
                // contaminate it.
                let window: Vec<_> = rec
                    .rows()
                    .iter()
                    .copied()
                    .filter(|(t, _)| *t <= ft + 110.0)
                    .collect();
                rotation_recovery(&window, 0.8, ft, 0.35).map(|r| r.recovery_time)
            })
            .collect()
    }

    #[test]
    fn corruption_recovery_grows_with_log_n() {
        // Re-establishing a pre-fault-consistent rotation cycle takes at
        // least one full rotation period, and the period is Θ(log n)
        // (Theorem 5.1), so mean recovery time over several injections and
        // seeds must grow between well-separated sizes. Empirically the two
        // samples are pointwise disjoint (~25–46 rounds at n=10³ vs ~47–69
        // at n=64·10³), so the mean comparison has a wide safety margin.
        // (The detector is seed-sensitive: a heavy dent occasionally skews
        // the rotation past the in-window cutoff, so a typical seed yields
        // 2–3 of 3 recoveries with rare 0–1 duds. Four seeds with a
        // half-of-twelve floor keeps the test insensitive to trajectory
        // reshuffles from sampler changes, rather than anchoring it to one
        // lucky seed.)
        let mean_recovery = |n: u64| {
            let times: Vec<f64> = (0..4)
                .flat_map(|s| dent_recovery_times(n, 31 + s))
                .collect();
            assert!(
                times.len() >= 6,
                "most injections at n={n} must recover in-window ({} of 12 did)",
                times.len()
            );
            times.iter().sum::<f64>() / times.len() as f64
        };
        let small = mean_recovery(1_000);
        let large = mean_recovery(64_000);
        assert!(small > 0.0);
        assert!(
            large > small,
            "recovery should grow with n: small={small} large={large}"
        );
    }

    #[test]
    fn elimination_invariant_survives_churn() {
        use crate::junta::XControl;
        use pp_engine::faults::{FaultSpec, FaultyPopulation};

        let elim = PairwiseElimination::new();
        let n = 1_000u64;
        let mut counts = vec![0u64; 2];
        counts[elim.initial_state()] = n;
        let inner = CountPopulation::from_counts(elim, &counts);
        // 1% of agents churn every round; replacements join in the
        // protocol's initial state (X), exactly like real late joiners.
        let spec = FaultSpec::new(77).churn(1.0, 0.01, elim.initial_state());
        let mut pop = FaultyPopulation::new(inner, &spec).expect("valid spec");
        let mut rng = SimRng::seed_from(78);
        for _ in 0..200 {
            run_rounds(&mut pop, 1.0, &mut rng, &mut []);
            let x = elim.count_x(&pop.counts());
            assert!(x >= 1, "#X >= 1 must survive churn (got {x})");
        }
        assert!(!pop.events().is_empty(), "churn actually fired");
        // Elimination keeps re-absorbing joined X agents: #X settles at the
        // churn/elimination equilibrium, far below n but never 0.
        let x = elim.count_x(&pop.counts());
        assert!(
            (1..=300).contains(&x),
            "#X should settle low under churn, got {x}"
        );
    }

    #[test]
    fn good_iteration_estimator_counts() {
        let mut est = GoodIterationEstimator::new();
        assert_eq!(est.fraction(), None);
        assert!(!est.meets(0.0));
        est.record(true);
        est.record(false);
        est.record(true);
        assert_eq!(est.good(), 2);
        assert_eq!(est.total(), 3);
        assert!(est.meets(0.6));
        assert!(!est.meets(0.7));
    }
}
