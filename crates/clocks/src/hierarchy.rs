//! The hierarchy of phase clocks with logarithmically separated rates
//! (Section 5.3).
//!
//! Clock `C⁽⁰⁾` is the base [`crate::controlled::ControlledClock`] dynamic,
//! ticking every `Θ(log n)` rounds. Each higher clock `C⁽ʲ⁺¹⁾` is *a copy of
//! the same clock protocol*, but executed under a slowed scheduler emulated
//! by clock `C⁽ʲ⁾`:
//!
//! 1. when two agents meet while both their level-`j` phases equal the same
//!    value `≡ 0 (mod 4)` and both carry an armed trigger `S`, they simulate
//!    **one** interaction of the level-`j+1` protocol on their *current*
//!    copies, store the results in their *new* copies, and disarm `S`;
//! 2. when two agents meet while both their level-`j` phases equal the same
//!    value `≡ 2 (mod 4)`, each commits its new copy to current and rearms
//!    `S`.
//!
//! Because every agent performs at most one level-`j+1` interaction per
//! gating window and windows recur every 4 ticks of `C⁽ʲ⁾`, the level-`j+1`
//! protocol advances like a random-matching scheduler at a rate of `Θ(1)`
//! activation per `Θ(log n)` rounds of the level below — the required
//! `Θ(log n)` slowdown per level, giving tick rate `r⁽ʲ⁾ = Θ((α log n)^{j+1})`
//! rounds. The same control set `X` (from the shared [`XControl`] process)
//! drives the oscillator at *every* level.
//!
//! The composite per-agent state is structured (oscillator × detector ×
//! phase × doubt per level, plus current/new copies and triggers), so this
//! protocol uses the structured-state backend
//! ([`pp_engine::obj::ObjPopulation`]) rather than a dense index space.

use crate::junta::XControl;
use crate::oscillator::{Oscillator, NUM_SPECIES};
use crate::phase_clock::{detector_observe, doubt_consensus, DEFAULT_CONSENSUS_DEPTH};
use pp_engine::obj::ObjProtocol;
use pp_engine::rng::SimRng;

/// Maximum number of clock levels supported (fixed so agent states stay
/// `Copy` and allocation-free).
pub const MAX_LEVELS: usize = 4;

/// One clock level's per-agent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockLevel {
    /// Oscillator state (dense index into the oscillator protocol).
    pub osc: u8,
    /// Detector position in `0..3k`.
    pub det: u8,
    /// Phase counter in `0..m`.
    pub phase: u8,
    /// Doubt counter for phase consensus.
    pub doubt: u8,
}

/// Per-agent state of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierAgent {
    /// Control-process state (shared across levels).
    pub ctrl: u16,
    /// Current copies of each level's clock state.
    pub cur: [ClockLevel; MAX_LEVELS],
    /// New (pending) copies for levels ≥ 1.
    pub pending: [ClockLevel; MAX_LEVELS],
    /// Trigger bits `S` per level ≥ 1 (bit `j` = level `j` armed).
    pub trig: u8,
}

impl HierAgent {
    /// Whether level `j`'s trigger is armed.
    #[must_use]
    pub fn armed(&self, level: usize) -> bool {
        self.trig & (1 << level) != 0
    }

    fn set_armed(&mut self, level: usize, value: bool) {
        if value {
            self.trig |= 1 << level;
        } else {
            self.trig &= !(1 << level);
        }
    }
}

/// The clock-hierarchy protocol.
///
/// # Examples
///
/// ```
/// use pp_clocks::hierarchy::ClockHierarchy;
/// use pp_clocks::junta::PairwiseElimination;
/// use pp_clocks::oscillator::Dk18Oscillator;
/// use pp_engine::obj::ObjPopulation;
/// use pp_engine::rng::SimRng;
///
/// let hier = ClockHierarchy::new(Dk18Oscillator::new(), PairwiseElimination::new(), 2, 6, 12);
/// let mut pop = ObjPopulation::from_fn(&hier, 64, |_| hier.initial_agent());
/// let mut rng = SimRng::seed_from(0);
/// pop.run_rounds(5.0, &mut rng);
/// ```
#[derive(Debug, Clone)]
pub struct ClockHierarchy<O, C> {
    oscillator: O,
    control: C,
    levels: usize,
    k: u8,
    m: u8,
    consensus_depth: u8,
    /// Oscillator tempo divisor: oscillator rules execute with probability
    /// `1/tempo`, stretching the base period (and hence every leaf window
    /// of a compiled program) by ≈ `tempo`. This realizes the paper's
    /// "large constant α depending on the sequential code": programs whose
    /// per-leaf work needs more rounds per window compile with a larger
    /// tempo.
    tempo: u8,
}

impl<O: Oscillator, C: XControl> ClockHierarchy<O, C> {
    /// Creates a hierarchy of `levels` clocks with detector depth `k` and
    /// phase modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or exceeds [`MAX_LEVELS`], if `k` or `m` is
    /// 0, if `m` is not divisible by 4 (required by the gating scheme), or
    /// if the oscillator has more than 255 states.
    #[must_use]
    pub fn new(oscillator: O, control: C, levels: usize, k: u8, m: u8) -> Self {
        assert!((1..=MAX_LEVELS).contains(&levels), "levels out of range");
        assert!(k > 0 && m > 0, "k and m must be positive");
        assert!(m.is_multiple_of(4), "the gating scheme requires 4 | m");
        assert!(3 * (k as usize) < 256);
        assert!(oscillator.num_states() <= u8::MAX as usize);
        assert!(control.num_states() <= u16::MAX as usize);
        Self {
            oscillator,
            control,
            levels,
            k,
            m,
            consensus_depth: DEFAULT_CONSENSUS_DEPTH,
            tempo: 1,
        }
    }

    /// Sets the oscillator tempo divisor (≥ 1; see the field docs).
    ///
    /// # Panics
    ///
    /// Panics if `tempo == 0`.
    #[must_use]
    pub fn with_tempo(mut self, tempo: u8) -> Self {
        assert!(tempo >= 1);
        self.tempo = tempo;
        self
    }

    /// The oscillator tempo divisor.
    #[must_use]
    pub fn tempo(&self) -> u8 {
        self.tempo
    }

    /// Sets the doubt-gated consensus depth (0 disables).
    #[must_use]
    pub fn with_consensus_depth(mut self, depth: u8) -> Self {
        self.consensus_depth = depth;
        self
    }

    /// Number of clock levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Phase modulus `m`.
    #[must_use]
    pub fn modulus(&self) -> u8 {
        self.m
    }

    /// The control component.
    #[must_use]
    pub fn control(&self) -> &C {
        &self.control
    }

    /// The oscillator component.
    #[must_use]
    pub fn oscillator(&self) -> &O {
        &self.oscillator
    }

    /// The all-agents initial state: control initial, all levels at
    /// detector 0 / phase 0 with species consistent with the `X` flag, all
    /// triggers armed, pending copies equal to current.
    #[must_use]
    pub fn initial_agent(&self) -> HierAgent {
        let ctrl = self.control.initial_state() as u16;
        let osc = if self.control.is_x(ctrl as usize) {
            self.oscillator.x_state() as u8
        } else {
            self.oscillator.species_state(0) as u8
        };
        let level = ClockLevel {
            osc,
            det: 0,
            phase: 0,
            doubt: 0,
        };
        HierAgent {
            ctrl,
            cur: [level; MAX_LEVELS],
            pending: [level; MAX_LEVELS],
            trig: u8::MAX,
        }
    }

    /// Whether an agent is currently in the control set `X`.
    #[must_use]
    pub fn is_x(&self, agent: &HierAgent) -> bool {
        self.control.is_x(agent.ctrl as usize)
    }

    /// The phase of `agent`'s level-`level` clock.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn phase(&self, agent: &HierAgent, level: usize) -> u8 {
        assert!(level < self.levels);
        agent.cur[level].phase
    }

    /// The full time path of an agent: phases of all levels, outermost
    /// first (the paper's `τ = (τ_{l_max}, …, τ₁)`).
    #[must_use]
    pub fn time_path(&self, agent: &HierAgent) -> Vec<u8> {
        (0..self.levels).rev().map(|j| agent.cur[j].phase).collect()
    }

    /// One interaction of the level-`j` clock protocol applied to a state
    /// pair (inner thread choice: oscillator 1/2, detector+consensus 1/2).
    fn clock_interact(
        &self,
        a: ClockLevel,
        b: ClockLevel,
        a_is_x: bool,
        b_is_x: bool,
        rng: &mut SimRng,
    ) -> (ClockLevel, ClockLevel) {
        let mut a = a;
        let mut b = b;
        if rng.chance(0.5) {
            if self.tempo > 1 && rng.index(self.tempo as usize) != 0 {
                return (a, b);
            }
            // Oscillator sub-thread. X agents are pinned to the source
            // state, which the dense oscillator transition handles natively
            // (their osc component *is* the source state by invariant).
            let (oa, ob) = self
                .oscillator
                .interact(a.osc as usize, b.osc as usize, rng);
            // Keep X agents pinned to the source regardless of the rule.
            a.osc = if a_is_x {
                self.oscillator.x_state() as u8
            } else {
                oa as u8
            };
            b.osc = if b_is_x {
                self.oscillator.x_state() as u8
            } else {
                ob as u8
            };
        } else {
            let sp_a = self.oscillator.species_of(a.osc as usize);
            let sp_b = self.oscillator.species_of(b.osc as usize);
            let step_a = detector_observe(a.det, self.k, sp_b);
            let step_b = detector_observe(b.det, self.k, sp_a);
            a.det = step_a.position;
            b.det = step_b.position;
            if step_a.ticked {
                a.phase = (a.phase + 1) % self.m;
            }
            if step_b.ticked {
                b.phase = (b.phase + 1) % self.m;
            }
            if self.consensus_depth > 0 {
                let (pa, da) =
                    doubt_consensus(a.phase, a.doubt, b.phase, self.consensus_depth, self.m);
                let (pb, db) =
                    doubt_consensus(b.phase, b.doubt, a.phase, self.consensus_depth, self.m);
                a.phase = pa;
                a.doubt = da;
                b.phase = pb;
                b.doubt = db;
            }
        }
        (a, b)
    }

    /// Resamples every level's oscillator component after a control
    /// transition changed the agent's `X` membership.
    fn reconcile(&self, agent: &mut HierAgent, was_x: bool, rng: &mut SimRng) {
        let is_x = self.control.is_x(agent.ctrl as usize);
        if was_x == is_x {
            return;
        }
        for j in 0..self.levels {
            let osc = if is_x {
                self.oscillator.x_state() as u8
            } else {
                self.oscillator.species_state(rng.index(NUM_SPECIES)) as u8
            };
            agent.cur[j].osc = osc;
            agent.pending[j].osc = osc;
        }
    }
}

impl<O: Oscillator, C: XControl> ObjProtocol for ClockHierarchy<O, C> {
    type State = HierAgent;

    fn interact(&self, a: &HierAgent, b: &HierAgent, rng: &mut SimRng) -> (HierAgent, HierAgent) {
        let mut a = *a;
        let mut b = *b;

        // Base threads: control 1/6, level-0 oscillator 1/3, level-0 clock 1/2.
        match rng.index(6) {
            0 => {
                let (ca, cb) = self.control.interact(a.ctrl as usize, b.ctrl as usize, rng);
                let was_xa = self.control.is_x(a.ctrl as usize);
                let was_xb = self.control.is_x(b.ctrl as usize);
                a.ctrl = ca as u16;
                b.ctrl = cb as u16;
                self.reconcile(&mut a, was_xa, rng);
                self.reconcile(&mut b, was_xb, rng);
            }
            1 | 2 => {
                if self.tempo > 1 && rng.index(self.tempo as usize) != 0 {
                    return (a, b);
                }
                let a_is_x = self.is_x(&a);
                let b_is_x = self.is_x(&b);
                let (oa, ob) =
                    self.oscillator
                        .interact(a.cur[0].osc as usize, b.cur[0].osc as usize, rng);
                a.cur[0].osc = if a_is_x {
                    self.oscillator.x_state() as u8
                } else {
                    oa as u8
                };
                b.cur[0].osc = if b_is_x {
                    self.oscillator.x_state() as u8
                } else {
                    ob as u8
                };
            }
            _ => {
                let sp_a = self.oscillator.species_of(a.cur[0].osc as usize);
                let sp_b = self.oscillator.species_of(b.cur[0].osc as usize);
                let step_a = detector_observe(a.cur[0].det, self.k, sp_b);
                let step_b = detector_observe(b.cur[0].det, self.k, sp_a);
                a.cur[0].det = step_a.position;
                b.cur[0].det = step_b.position;
                if step_a.ticked {
                    a.cur[0].phase = (a.cur[0].phase + 1) % self.m;
                }
                if step_b.ticked {
                    b.cur[0].phase = (b.cur[0].phase + 1) % self.m;
                }
                if self.consensus_depth > 0 {
                    let (pa, da) = doubt_consensus(
                        a.cur[0].phase,
                        a.cur[0].doubt,
                        b.cur[0].phase,
                        self.consensus_depth,
                        self.m,
                    );
                    let (pb, db) = doubt_consensus(
                        b.cur[0].phase,
                        b.cur[0].doubt,
                        a.cur[0].phase,
                        self.consensus_depth,
                        self.m,
                    );
                    a.cur[0].phase = pa;
                    a.cur[0].doubt = da;
                    b.cur[0].phase = pb;
                    b.cur[0].doubt = db;
                }
            }
        }

        // Hierarchy rules, composed on top: level j is gated by the phases
        // of level j−1.
        let a_is_x = self.is_x(&a);
        let b_is_x = self.is_x(&b);
        for j in 1..self.levels {
            let pa = a.cur[j - 1].phase;
            let pb = b.cur[j - 1].phase;
            if pa != pb {
                continue;
            }
            if pa.is_multiple_of(4) && a.armed(j) && b.armed(j) {
                // Rule 1: simulate one inner interaction on current copies,
                // store into pending, disarm.
                let (na, nb) = self.clock_interact(a.cur[j], b.cur[j], a_is_x, b_is_x, rng);
                a.pending[j] = na;
                b.pending[j] = nb;
                a.set_armed(j, false);
                b.set_armed(j, false);
            } else if pa % 4 == 2 {
                // Rule 2: commit pending to current, rearm.
                if !a.armed(j) {
                    a.cur[j] = a.pending[j];
                    a.set_armed(j, true);
                }
                if !b.armed(j) {
                    b.cur[j] = b.pending[j];
                    b.set_armed(j, true);
                }
            }
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::FixedX;
    use crate::junta::PairwiseElimination;
    use crate::oscillator::Dk18Oscillator;
    use pp_engine::obj::ObjPopulation;

    fn hier(levels: usize) -> ClockHierarchy<Dk18Oscillator, PairwiseElimination> {
        ClockHierarchy::new(
            Dk18Oscillator::new(),
            PairwiseElimination::new(),
            levels,
            6,
            12,
        )
    }

    #[test]
    fn initial_agent_is_consistent() {
        let h = hier(3);
        let a = h.initial_agent();
        assert!(h.is_x(&a));
        assert_eq!(a.cur[0].osc as usize, h.oscillator().x_state());
        assert!(a.armed(1) && a.armed(2));
        assert_eq!(h.time_path(&a), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "4 | m")]
    fn modulus_must_be_divisible_by_four() {
        let _ = ClockHierarchy::new(Dk18Oscillator::new(), PairwiseElimination::new(), 2, 6, 10);
    }

    #[test]
    fn x_invariant_holds_across_levels() {
        let h = hier(2);
        let mut pop = ObjPopulation::from_fn(&h, 64, |_| h.initial_agent());
        let mut rng = SimRng::seed_from(1);
        pop.run_rounds(50.0, &mut rng);
        for agent in pop.iter() {
            let is_x = h.is_x(agent);
            for j in 0..2 {
                assert_eq!(
                    agent.cur[j].osc as usize == h.oscillator().x_state(),
                    is_x,
                    "level {j} source invariant"
                );
            }
        }
    }

    #[test]
    fn x_count_shrinks_but_stays_positive() {
        let h = hier(2);
        let mut pop = ObjPopulation::from_fn(&h, 128, |_| h.initial_agent());
        let mut rng = SimRng::seed_from(2);
        pop.run_rounds(200.0, &mut rng);
        let x = pop.count_where(|a| h.is_x(a));
        assert!(x >= 1);
        assert!(x < 40, "#X should have shrunk, got {x}");
    }

    #[test]
    fn gating_requires_matching_phases() {
        let h = hier(2);
        let mut rng = SimRng::seed_from(3);
        let mut a = h.initial_agent();
        let mut b = h.initial_agent();
        // Different level-0 phases: level-1 state must never change.
        a.cur[0].phase = 1;
        b.cur[0].phase = 2;
        let before_a = a.cur[1];
        for _ in 0..100 {
            let (na, nb) = h.interact(&a, &b, &mut rng);
            assert_eq!(na.cur[1], before_a, "gated level must not advance");
            // Keep phases pinned for the test (base threads may tick them).
            a = na;
            b = nb;
            a.cur[0].phase = 1;
            b.cur[0].phase = 2;
        }
    }

    #[test]
    fn trigger_disarms_after_inner_interaction_and_rearms_on_commit() {
        let h = hier(2);
        let mut rng = SimRng::seed_from(4);
        let mut a = h.initial_agent();
        let mut b = h.initial_agent();
        a.cur[0].phase = 0;
        b.cur[0].phase = 0;
        // Interact until the gating branch fires (phases stay 0 unless a
        // tick happens, which cannot happen from the all-X start).
        let mut fired = false;
        for _ in 0..200 {
            let (na, nb) = h.interact(&a, &b, &mut rng);
            a = na;
            b = nb;
            if !a.armed(1) {
                fired = true;
                break;
            }
        }
        assert!(fired, "rule 1 fires when both at phase 0 and armed");
        // Now move both to a commit phase.
        a.cur[0].phase = 2;
        b.cur[0].phase = 2;
        let mut committed = false;
        for _ in 0..200 {
            let (na, nb) = h.interact(&a, &b, &mut rng);
            a = na;
            b = nb;
            a.cur[0].phase = 2;
            b.cur[0].phase = 2;
            if a.armed(1) {
                committed = true;
                break;
            }
        }
        assert!(committed, "rule 2 rearms the trigger");
    }

    #[test]
    fn tempo_slows_tick_rate() {
        // Measure majority-phase changes over a fixed horizon with tempo 1
        // vs tempo 4: the slowed clock must tick substantially less often.
        let ticks_with_tempo = |tempo: u8| -> usize {
            let h =
                ClockHierarchy::new(Dk18Oscillator::new(), PairwiseElimination::new(), 1, 6, 12)
                    .with_tempo(tempo);
            let n = 400usize;
            let mut pop = ObjPopulation::from_fn(&h, n, |_| h.initial_agent());
            let mut rng = SimRng::seed_from(42);
            let mut last = None;
            let mut ticks = 0;
            while pop.time() < 800.0 {
                pop.run_rounds(5.0, &mut rng);
                let mut hist = [0u64; 12];
                for a in pop.iter() {
                    hist[a.cur[0].phase as usize] += 1;
                }
                let maj = (0..12).max_by_key(|&p| hist[p]).unwrap() as u8;
                if last != Some(maj) {
                    ticks += 1;
                    last = Some(maj);
                }
            }
            ticks
        };
        let fast = ticks_with_tempo(1);
        let slow = ticks_with_tempo(4);
        assert!(
            slow * 2 < fast,
            "tempo 4 should at least halve the tick count: fast={fast} slow={slow}"
        );
    }

    #[test]
    fn hierarchy_composes_with_klevel_decay() {
        use crate::junta::KLevelDecay;
        let h = ClockHierarchy::new(Dk18Oscillator::new(), KLevelDecay::new(2), 1, 6, 12);
        let mut pop = ObjPopulation::from_fn(&h, 256, |_| h.initial_agent());
        let mut rng = SimRng::seed_from(7);
        pop.run_rounds(100.0, &mut rng);
        // The k-level signal decays fast; X eventually vanishes entirely,
        // which the hierarchy must tolerate (clocks freeze, no panic).
        let x = pop.count_where(|a| h.is_x(a));
        assert!(x < 128, "k-level decay thinned X: {x}");
        // Invariant: species state consistent with X membership everywhere.
        for agent in pop.iter() {
            assert_eq!(
                agent.cur[0].osc as usize == h.oscillator().x_state(),
                h.is_x(agent)
            );
        }
    }

    #[test]
    fn hierarchy_composes_with_gs_junta() {
        use crate::junta::GsJunta;
        let h = ClockHierarchy::new(
            Dk18Oscillator::new(),
            GsJunta::new(GsJunta::cap_for(256)),
            1,
            6,
            12,
        );
        let mut pop = ObjPopulation::from_fn(&h, 256, |_| h.initial_agent());
        let mut rng = SimRng::seed_from(8);
        pop.run_rounds(300.0, &mut rng);
        let x = pop.count_where(|a| h.is_x(a));
        assert!(x >= 1, "junta never empties");
        assert!(x < 128, "junta thinned X: {x}");
    }

    #[test]
    fn single_level_hierarchy_matches_controlled_clock_shape() {
        // Smoke test: with 1 level, the hierarchy is just the base clock.
        let h = hier(1);
        let mut pop = ObjPopulation::from_fn(&h, 64, |_| h.initial_agent());
        let mut rng = SimRng::seed_from(5);
        pop.run_rounds(100.0, &mut rng);
        // Phases stay in range.
        for agent in pop.iter() {
            assert!(agent.cur[0].phase < 12);
            assert!(agent.cur[0].det < 18);
        }
        let _ = FixedX::new();
    }
}
