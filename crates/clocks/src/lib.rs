//! # pp-clocks — the synchronization machinery of *Population Protocols Are Fast*
//!
//! Section 5 of the paper constructs, out of nothing but pairwise random
//! interactions, a hierarchy of "phase clocks" that tick at rates separated
//! by `Θ(log n)` per level. This crate implements that construction
//! bottom-up:
//!
//! * [`oscillator`] — the self-organizing rock–paper–scissors dynamic
//!   (after \[DK18\]): three species plus a small *source* set `X`; the
//!   dominant species rotates with period `Θ(log n)` whenever
//!   `1 ≤ #X ≤ n^{1−ε}`. Includes the plain-RPS ablation, which never
//!   self-organizes — the reason the paper builds on \[DK18\].
//! * [`phase_clock`] — the modulo-`m` clock (Theorem 5.2): a detector that
//!   confirms species takeovers via `k` consecutive meetings, a phase
//!   counter ticking once per takeover, and fluke-robust doubt-gated
//!   consensus.
//! * [`junta`] — control of `#X`: pairwise elimination (Proposition 5.3,
//!   for always-correct protocols), the `k`-level decay signal
//!   (Proposition 5.5, for w.h.p. protocols), and a GS18-style junta
//!   election (Proposition 5.4, comparison point).
//! * [`controlled`] — the self-contained clock: an `X`-control process
//!   composed under the oscillator/detector/counter, realizing the paper's
//!   all-agents-start-identical startup story.
//! * [`hierarchy`] — clocks driving slowed copies of themselves
//!   (Section 5.3): gated simulation windows emulate a random-matching
//!   scheduler one activation per outer period, separating adjacent
//!   levels' tick rates by `Θ(log n)`.
//! * [`detect`] — measurement utilities: dominance events, rotation order,
//!   periods, escape times.
//! * [`diag`] — live diagnostic recorders built on the engine's telemetry:
//!   dominance-rotation periods, per-level tick rates, good-iteration
//!   fractions.
//!
//! # Examples
//!
//! Measure the oscillator's rotation period:
//!
//! ```
//! use pp_clocks::detect::{dominance_events, periods};
//! use pp_clocks::oscillator::{central_init, Dk18Oscillator, Oscillator};
//! use pp_engine::counts::CountPopulation;
//! use pp_engine::rng::SimRng;
//! use pp_engine::sim::Simulator;
//!
//! let osc = Dk18Oscillator::new();
//! let mut pop = CountPopulation::from_counts(&osc, &central_init(&osc, 2000, 5));
//! let mut rng = SimRng::seed_from(1);
//! let mut trace = Vec::new();
//! while pop.time() < 150.0 {
//!     pop.step_batch(&mut rng, 2000);
//!     trace.push((pop.time(), osc.species_counts(&pop.counts())));
//! }
//! let events = dominance_events(&trace, 0.8);
//! assert!(events.len() > 3, "the oscillator rotates");
//! let _ = periods(&events);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod controlled;
pub mod detect;
pub mod diag;
pub mod hierarchy;
pub mod junta;
pub mod oscillator;
pub mod phase_clock;

pub use controlled::{ControlledClock, FixedX};
pub use diag::{DominanceRecorder, GoodIterationEstimator, TickTracer};
pub use hierarchy::{ClockHierarchy, HierAgent};
pub use junta::{GsJunta, KLevelDecay, PairwiseElimination, XControl};
pub use oscillator::{Dk18Oscillator, Oscillator, RpsOscillator};
pub use phase_clock::PhaseClock;
