//! The modulo-`m` phase clock built on an oscillator (Section 5.2).
//!
//! Each agent composes three components:
//!
//! * an **oscillator** state (species + source, from [`crate::oscillator`]),
//! * a **detector** position `s ∈ {0, …, 3k−1}` arranged in three blocks of
//!   `k`: in block `i`, the agent waits to meet agents of species
//!   `(i+1) mod 3` in `k` consecutive clock-thread interactions. A meeting
//!   with a different species resets progress to the block start; completing
//!   the block confirms that species `(i+1)` has taken over and moves the
//!   agent to block `i+1` — a **tick**;
//! * a **phase counter** `c ∈ {0, …, m−1}` incremented on every tick,
//!   plus a **doubt counter** implementing fluke-robust consensus
//!   ([`doubt_consensus`]) that heals phase clusters left over from the
//!   chaotic startup; afterwards, ticks are synchronized by the globally
//!   visible species takeovers, keeping all agents within ±1 phase, w.h.p.
//!
//! Since the oscillator rotates species with period `Θ(log n)`, ticks are
//! `Θ(log n)` rounds apart, and a full phase cycle takes `Θ(m log n)`
//! rounds. Experiment E6 measures phase agreement and tick spacing.

use crate::oscillator::{Oscillator, NUM_SPECIES};
use pp_engine::protocol::Protocol;
use pp_engine::rng::SimRng;

/// Default doubt-gated consensus depth (empirically tuned: deep enough to
/// suppress fluke cascades, shallow enough to absorb tick waves quickly).
pub const DEFAULT_CONSENSUS_DEPTH: u8 = 3;

/// Outcome of a detector observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorStep {
    /// New detector position.
    pub position: u8,
    /// Whether the observation completed a block (a clock tick).
    pub ticked: bool,
}

/// Pure detector transition: from position `s` (with confirmation depth
/// `k`), observing a partner of `species` (`None` = source agent, which is
/// ignored).
///
/// # Panics
///
/// Panics if `s ≥ 3k`.
#[must_use]
pub fn detector_observe(s: u8, k: u8, species: Option<usize>) -> DetectorStep {
    let s_us = s as usize;
    let k_us = k as usize;
    assert!(s_us < 3 * k_us, "detector position out of range");
    let block = s_us / k_us;
    let Some(sp) = species else {
        // Source agents carry no species information.
        return DetectorStep {
            position: s,
            ticked: false,
        };
    };
    let awaited = (block + 1) % NUM_SPECIES;
    if sp == awaited {
        let next = s_us + 1;
        if next.is_multiple_of(k_us) {
            // Completed the block: enter the next block (tick).
            DetectorStep {
                position: ((next / k_us) % NUM_SPECIES * k_us) as u8,
                ticked: true,
            }
        } else {
            DetectorStep {
                position: next as u8,
                ticked: false,
            }
        }
    } else {
        // Reset within-block progress.
        DetectorStep {
            position: (block * k_us) as u8,
            ticked: false,
        }
    }
}

/// Phase-consensus resolution: given own phase `a` and partner phase `b`
/// modulo `m`, returns the phase to adopt — the partner's if it is *ahead*
/// by at most half the cycle, otherwise keep one's own.
///
/// **Caution:** applying this rule unconditionally lets a single agent's
/// false tick cascade through the whole population (it is an epidemic OR).
/// Use [`doubt_consensus`] for the fluke-robust variant.
#[must_use]
pub fn phase_consensus(a: u8, b: u8, m: u8) -> u8 {
    let ahead = (b as i32 - a as i32).rem_euclid(m as i32);
    if ahead >= 1 && ahead <= (m / 2) as i32 {
        b
    } else {
        a
    }
}

/// Fluke-robust ("doubt-gated") phase consensus.
///
/// Phase disagreement has two benign shapes that must *not* trigger
/// adoption — agreement (`diff = 0`) and a partner lagging the current tick
/// wave by one (`diff = −1`) — and two shapes that must converge:
///
/// * a partner *ahead by one* (`diff = +1`): the ongoing tick wave; the
///   laggard should catch up;
/// * a partner *far away* (`|diff| ≥ 2` circularly): a stale cluster left
///   over from the chaotic startup (typically offset by a multiple of 3,
///   one whole oscillator rotation per offset unit). A pairwise rule cannot
///   tell which side is "correct", so adoption is majority-biased: the
///   minority cluster meets the majority far more often than vice versa.
///
/// Both converging shapes are gated by a shared doubt counter: the agent
/// adopts the partner's phase only after `depth` *consecutive* meetings in
/// a converging shape, and any agreeing or lagging meeting resets the
/// counter. This mirrors the paper's `k`-consecutive-meeting confirmation
/// idiom: isolated false ticks (a fraction `ε` of the population) propagate
/// with probability `O(ε^depth)`, while genuine tick waves and stale
/// clusters are absorbed within `O(depth)` meetings. Returns the new
/// `(phase, doubt)` pair.
#[must_use]
pub fn doubt_consensus(phase: u8, doubt: u8, partner_phase: u8, depth: u8, m: u8) -> (u8, u8) {
    let diff = (partner_phase as i32 - phase as i32).rem_euclid(m as i32);
    if diff == 0 || diff == m as i32 - 1 {
        // Agreement, or a partner lagging the tick wave by one: benign.
        (phase, 0)
    } else {
        let doubt = doubt + 1;
        if doubt >= depth {
            (partner_phase, 0)
        } else {
            (phase, doubt)
        }
    }
}

/// The modulo-`m` phase clock protocol `C_o`, a dense composition of an
/// oscillator with the detector and phase counter.
///
/// State packing: `osc + osc_states · (detector + 3k · (phase + m · doubt))`.
///
/// # Examples
///
/// ```
/// use pp_clocks::oscillator::Dk18Oscillator;
/// use pp_clocks::phase_clock::PhaseClock;
/// use pp_engine::Protocol;
///
/// let clock = PhaseClock::new(Dk18Oscillator::new(), 4, 12);
/// // osc(7) × detector(3·4) × phase(12) × doubt(3)
/// assert_eq!(clock.num_states(), 7 * 12 * 12 * 3);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseClock<O> {
    oscillator: O,
    /// Confirmation depth: consecutive meetings required per block.
    k: u8,
    /// Phase modulus.
    m: u8,
    /// Depth of the doubt-gated phase consensus ([`doubt_consensus`]);
    /// 0 disables consensus entirely.
    ///
    /// Plain adopt-ahead consensus (depth 1) turns a *single* agent's false
    /// tick into a global phase cascade, while no consensus at all (depth
    /// 0) lets phase clusters formed during the chaotic startup persist
    /// forever. The doubt gate requires `depth` consecutive ahead-meetings
    /// before adopting, which suppresses fluke cascades yet still lets
    /// genuine tick waves and large stale clusters converge. Experiment E6
    /// ablates this parameter.
    consensus_depth: u8,
    osc_states: usize,
}

impl<O: Oscillator> PhaseClock<O> {
    /// Creates a phase clock with confirmation depth `k` and modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `m == 0`, or `3k ≥ 256`.
    #[must_use]
    pub fn new(oscillator: O, k: u8, m: u8) -> Self {
        assert!(k > 0, "confirmation depth must be positive");
        assert!(m > 0, "modulus must be positive");
        assert!(3 * (k as usize) < 256, "detector space must fit in u8");
        let osc_states = oscillator.num_states();
        Self {
            oscillator,
            k,
            m,
            consensus_depth: DEFAULT_CONSENSUS_DEPTH,
            osc_states,
        }
    }

    /// Sets the doubt-gated consensus depth (0 disables consensus;
    /// default [`DEFAULT_CONSENSUS_DEPTH`]).
    #[must_use]
    pub fn with_consensus_depth(mut self, depth: u8) -> Self {
        self.consensus_depth = depth;
        self
    }

    /// The doubt dimension size (at least 1 even when consensus is off).
    fn doubt_states(&self) -> usize {
        (self.consensus_depth as usize).max(1)
    }

    /// The underlying oscillator.
    #[must_use]
    pub fn oscillator(&self) -> &O {
        &self.oscillator
    }

    /// Confirmation depth `k`.
    #[must_use]
    pub fn confirmation_depth(&self) -> u8 {
        self.k
    }

    /// Phase modulus `m`.
    #[must_use]
    pub fn modulus(&self) -> u8 {
        self.m
    }

    /// Packs components into a dense state index.
    #[must_use]
    pub fn pack(&self, osc: usize, detector: u8, phase: u8, doubt: u8) -> usize {
        debug_assert!(osc < self.osc_states);
        debug_assert!((detector as usize) < 3 * self.k as usize);
        debug_assert!(phase < self.m);
        debug_assert!((doubt as usize) < self.doubt_states());
        osc + self.osc_states
            * (detector as usize
                + 3 * self.k as usize * (phase as usize + self.m as usize * doubt as usize))
    }

    /// Unpacks a dense state index into `(osc, detector, phase, doubt)`.
    #[must_use]
    pub fn unpack(&self, state: usize) -> (usize, u8, u8, u8) {
        let osc = state % self.osc_states;
        let rest = state / self.osc_states;
        let det = (rest % (3 * self.k as usize)) as u8;
        let rest = rest / (3 * self.k as usize);
        let phase = (rest % self.m as usize) as u8;
        let doubt = (rest / self.m as usize) as u8;
        (osc, det, phase, doubt)
    }

    /// The phase of a packed state.
    #[must_use]
    pub fn phase_of(&self, state: usize) -> u8 {
        self.unpack(state).2
    }

    /// Initial state: oscillator state `osc`, detector at block 0 start,
    /// phase 0, no doubt.
    #[must_use]
    pub fn initial(&self, osc: usize) -> usize {
        self.pack(osc, 0, 0, 0)
    }

    /// Histogram of phases given full state counts.
    #[must_use]
    pub fn phase_histogram(&self, counts: &[u64]) -> Vec<u64> {
        let mut hist = vec![0u64; self.m as usize];
        for (state, &c) in counts.iter().enumerate() {
            if c > 0 {
                hist[self.phase_of(state) as usize] += c;
            }
        }
        hist
    }

    /// The majority phase and its share of the population, from counts.
    #[must_use]
    pub fn majority_phase(&self, counts: &[u64]) -> (u8, f64) {
        let hist = self.phase_histogram(counts);
        let total: u64 = hist.iter().sum();
        let (phase, &max) = hist
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty histogram");
        (phase as u8, max as f64 / total.max(1) as f64)
    }

    /// Maximum circular phase distance between any two occupied phases —
    /// the paper's agreement measure ("up to a difference of at most 1").
    #[must_use]
    pub fn phase_spread(&self, counts: &[u64]) -> u8 {
        let hist = self.phase_histogram(counts);
        let occupied: Vec<usize> = hist
            .iter()
            .enumerate()
            .filter(|&(_, c)| *c > 0)
            .map(|(p, _)| p)
            .collect();
        if occupied.len() <= 1 {
            return 0;
        }
        let m = self.m as usize;
        // The spread is m minus the largest gap between consecutive
        // occupied phases on the circle.
        let mut max_gap = 0;
        for (i, &p) in occupied.iter().enumerate() {
            let next = occupied[(i + 1) % occupied.len()];
            let gap = (next + m - p) % m;
            max_gap = max_gap.max(gap);
        }
        (m - max_gap) as u8
    }
}

impl<O: Oscillator> Protocol for PhaseClock<O> {
    fn num_states(&self) -> usize {
        self.osc_states * 3 * self.k as usize * self.m as usize * self.doubt_states()
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        let (osc_a, det_a, ph_a, db_a) = self.unpack(a);
        let (osc_b, det_b, ph_b, db_b) = self.unpack(b);
        if rng.chance(0.5) {
            // Oscillator thread.
            let (osc_a2, osc_b2) = self.oscillator.interact(osc_a, osc_b, rng);
            (
                self.pack(osc_a2, det_a, ph_a, db_a),
                self.pack(osc_b2, det_b, ph_b, db_b),
            )
        } else {
            // Clock thread: both agents observe the partner's species, then
            // run doubt-gated phase consensus.
            let sp_a = self.oscillator.species_of(osc_a);
            let sp_b = self.oscillator.species_of(osc_b);
            let step_a = detector_observe(det_a, self.k, sp_b);
            let step_b = detector_observe(det_b, self.k, sp_a);
            let mut ph_a2 = if step_a.ticked {
                (ph_a + 1) % self.m
            } else {
                ph_a
            };
            let mut ph_b2 = if step_b.ticked {
                (ph_b + 1) % self.m
            } else {
                ph_b
            };
            let mut db_a2 = db_a;
            let mut db_b2 = db_b;
            if self.consensus_depth > 0 {
                let (pa, pb) = (ph_a2, ph_b2);
                let (na, da) = doubt_consensus(pa, db_a, pb, self.consensus_depth, self.m);
                let (nb, db) = doubt_consensus(pb, db_b, pa, self.consensus_depth, self.m);
                ph_a2 = na;
                db_a2 = da;
                ph_b2 = nb;
                db_b2 = db;
            }
            (
                self.pack(osc_a, step_a.position, ph_a2, db_a2),
                self.pack(osc_b, step_b.position, ph_b2, db_b2),
            )
        }
    }

    fn state_label(&self, state: usize) -> String {
        let (osc, det, ph, _) = self.unpack(state);
        format!("({},d{},p{})", self.oscillator.state_label(osc), det, ph)
    }

    fn name(&self) -> &str {
        "phase-clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscillator::Dk18Oscillator;

    #[test]
    fn detector_advances_on_awaited_species() {
        // Block 0 awaits species 1.
        let step = detector_observe(0, 4, Some(1));
        assert_eq!(step.position, 1);
        assert!(!step.ticked);
    }

    #[test]
    fn detector_resets_on_wrong_species() {
        let step = detector_observe(2, 4, Some(0));
        assert_eq!(step.position, 0);
        assert!(!step.ticked);
        // In block 1 (positions 4..8), awaiting species 2; seeing 1 resets to 4.
        let step = detector_observe(6, 4, Some(1));
        assert_eq!(step.position, 4);
    }

    #[test]
    fn detector_ignores_source_agents() {
        let step = detector_observe(3, 4, None);
        assert_eq!(step.position, 3);
        assert!(!step.ticked);
    }

    #[test]
    fn detector_ticks_on_block_completion() {
        // Position 3 with k=4 in block 0: one more species-1 meeting ticks.
        let step = detector_observe(3, 4, Some(1));
        assert!(step.ticked);
        assert_eq!(step.position, 4, "enters block 1");
        // Completing block 2 wraps to block 0.
        let step = detector_observe(11, 4, Some(0));
        assert!(step.ticked);
        assert_eq!(step.position, 0);
    }

    #[test]
    fn full_detector_cycle_produces_three_ticks() {
        let k = 3u8;
        let mut pos = 0u8;
        let mut ticks = 0;
        // Feed the detector the rotating dominant species long enough.
        for species in [1usize, 2, 0] {
            for _ in 0..k {
                let step = detector_observe(pos, k, Some(species));
                pos = step.position;
                if step.ticked {
                    ticks += 1;
                }
            }
        }
        assert_eq!(ticks, 3);
        assert_eq!(pos, 0, "back to block 0");
    }

    #[test]
    fn phase_consensus_adopts_ahead_partner() {
        assert_eq!(phase_consensus(3, 4, 12), 4);
        assert_eq!(phase_consensus(3, 9, 12), 9);
        // Partner behind: keep own.
        assert_eq!(phase_consensus(4, 3, 12), 4);
        // Wrap-around: 11 sees 1 as ahead by 2.
        assert_eq!(phase_consensus(11, 1, 12), 1);
        // Same phase: keep.
        assert_eq!(phase_consensus(5, 5, 12), 5);
    }

    #[test]
    fn doubt_consensus_requires_consecutive_evidence() {
        let m = 12;
        let depth = 3;
        // Ahead-by-1 partners accumulate doubt, then adopt.
        let (p1, d1) = doubt_consensus(5, 0, 6, depth, m);
        assert_eq!((p1, d1), (5, 1));
        let (p2, d2) = doubt_consensus(p1, d1, 6, depth, m);
        assert_eq!((p2, d2), (5, 2));
        let (p3, d3) = doubt_consensus(p2, d2, 6, depth, m);
        assert_eq!((p3, d3), (6, 0), "adopts at depth");
    }

    #[test]
    fn doubt_consensus_resets_on_agreement_or_lag() {
        let m = 12;
        // Agreement resets.
        assert_eq!(doubt_consensus(5, 2, 5, 3, m), (5, 0));
        // Partner lagging by one (tick wave) resets, no adoption.
        assert_eq!(doubt_consensus(5, 2, 4, 3, m), (5, 0));
    }

    #[test]
    fn doubt_consensus_heals_far_clusters_in_both_directions() {
        let m = 12;
        // A stale agent 3 ahead of the majority (majority is "behind" it
        // circularly by 3, i.e. diff = 9): still converges to the majority.
        let (p, d) = doubt_consensus(5, 2, 2, 3, m);
        assert_eq!((p, d), (2, 0));
        // And an agent behind a far cluster adopts forward too.
        let (p, d) = doubt_consensus(2, 2, 5, 3, m);
        assert_eq!((p, d), (5, 0));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let clock = PhaseClock::new(Dk18Oscillator::new(), 4, 12);
        for state in 0..clock.num_states() {
            let (o, d, p, q) = clock.unpack(state);
            assert_eq!(clock.pack(o, d, p, q), state);
        }
    }

    #[test]
    fn phase_histogram_and_majority() {
        let clock = PhaseClock::new(Dk18Oscillator::new(), 2, 4);
        let mut counts = vec![0u64; clock.num_states()];
        counts[clock.pack(1, 0, 2, 0)] = 70;
        counts[clock.pack(3, 4, 3, 1)] = 30;
        let hist = clock.phase_histogram(&counts);
        assert_eq!(hist, vec![0, 0, 70, 30]);
        let (phase, share) = clock.majority_phase(&counts);
        assert_eq!(phase, 2);
        assert!((share - 0.7).abs() < 1e-12);
    }

    #[test]
    fn phase_spread_measures_circular_distance() {
        let clock = PhaseClock::new(Dk18Oscillator::new(), 2, 12);
        let mut counts = vec![0u64; clock.num_states()];
        counts[clock.pack(1, 0, 11, 0)] = 5;
        counts[clock.pack(1, 0, 0, 0)] = 5;
        assert_eq!(clock.phase_spread(&counts), 1, "11 and 0 are adjacent");
        counts[clock.pack(1, 0, 6, 1)] = 1;
        assert!(clock.phase_spread(&counts) > 1);
    }

    #[test]
    fn interact_preserves_component_structure() {
        let clock = PhaseClock::new(Dk18Oscillator::new(), 4, 12);
        let mut rng = SimRng::seed_from(1);
        let a = clock.pack(1, 3, 7, 0);
        let b = clock.pack(4, 9, 7, 2);
        for _ in 0..200 {
            let (a2, b2) = clock.interact(a, b, &mut rng);
            let (_, _, pa, _) = clock.unpack(a2);
            let (_, _, pb, _) = clock.unpack(b2);
            assert!(pa < 12 && pb < 12);
            assert!(a2 < clock.num_states() && b2 < clock.num_states());
        }
    }
}
