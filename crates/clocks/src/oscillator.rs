//! Self-organizing oscillators: the base dynamic underneath every phase
//! clock in the paper.
//!
//! The paper builds its clocks on the 7-state oscillator protocol `P_o` of
//! \[DK18\], a refinement of rock–paper–scissors (RPS) predator–prey dynamics
//! over three species `A₁, A₂, A₃` plus an optional *source* state `X`:
//!
//! * **predation** — species `i` converts encountered agents of species
//!   `i−1` (cyclically) to species `i`;
//! * **source** — an `X` agent converts any encountered species agent to a
//!   uniformly random species, preventing extinction and (re-)seeding the
//!   rotation.
//!
//! When `1 ≤ #X ≤ n^{1−ε}`, the dominant species rotates
//! `A₁ → A₂ → A₃ → A₁ …` with period `Θ(log n)` (Theorem 5.1). Two variants
//! are provided:
//!
//! * [`RpsOscillator`] — the plain 3-species + source dynamic (4 states).
//!   Its mean-field center is *neutrally* stable, so escape from the uniform
//!   configuration relies on diffusive noise and is slow.
//! * [`Dk18Oscillator`] — a 7-state variant in the spirit of \[DK18\], whose
//!   per-species charge mechanism (`A_i⁺` / `A_i⁺⁺`) makes effective
//!   predation *superlinear* in the predator's abundance, destabilizing the
//!   central fixed point so the system self-organizes into large
//!   oscillations in `O(log n)` rounds from any configuration. The exact
//!   \[DK18\] transition table is not reproduced in the paper; this
//!   reconstruction preserves the interface properties the paper uses
//!   (escape in `O(log n)`, rotation with period `Θ(log n)`), which
//!   experiment E5 validates empirically.
//!
//! Both implement [`Oscillator`], the interface consumed by the phase-clock
//! detector: a map from protocol state to species.

use pp_engine::protocol::{Protocol, ProtocolSpec};
use pp_engine::rng::SimRng;

/// Number of species in the rock–paper–scissors cycle.
pub const NUM_SPECIES: usize = 3;

/// Common interface of oscillator protocols: a dense protocol plus the
/// species/source structure of its states.
pub trait Oscillator: Protocol {
    /// The species (0, 1, or 2) an agent in `state` belongs to, or `None`
    /// for the source state `X`.
    fn species_of(&self, state: usize) -> Option<usize>;

    /// The source state `X`.
    fn x_state(&self) -> usize;

    /// A canonical state belonging to `species` (used for initialization).
    fn species_state(&self, species: usize) -> usize;

    /// Counts agents per species given a full count vector, returning
    /// `[#A₁, #A₂, #A₃]`.
    fn species_counts(&self, counts: &[u64]) -> [u64; NUM_SPECIES] {
        let mut out = [0u64; NUM_SPECIES];
        for (state, &c) in counts.iter().enumerate() {
            if let Some(s) = self.species_of(state) {
                out[s] += c;
            }
        }
        out
    }
}

/// The species that preys on `prey`: `prey + 1` cyclically.
#[must_use]
pub fn predator_of(prey: usize) -> usize {
    (prey + 1) % NUM_SPECIES
}

/// The species that `predator` preys on: `predator − 1` cyclically.
#[must_use]
pub fn prey_of(predator: usize) -> usize {
    (predator + NUM_SPECIES - 1) % NUM_SPECIES
}

/// Plain rock–paper–scissors oscillator with a source state.
///
/// States: `0 = X`, `1 + i = A_{i+1}` for `i ∈ {0, 1, 2}`.
///
/// # Examples
///
/// ```
/// use pp_clocks::oscillator::{Oscillator, RpsOscillator};
/// use pp_engine::Protocol;
///
/// let osc = RpsOscillator::new();
/// assert_eq!(osc.num_states(), 4);
/// assert_eq!(osc.species_of(osc.x_state()), None);
/// assert_eq!(osc.species_of(osc.species_state(2)), Some(2));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RpsOscillator;

impl RpsOscillator {
    /// Creates the oscillator.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for RpsOscillator {
    fn num_states(&self) -> usize {
        1 + NUM_SPECIES
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        match (self.species_of(a), self.species_of(b)) {
            // Source converts the other agent to a uniform random species.
            (None, Some(_)) => (a, 1 + rng.index(NUM_SPECIES)),
            (Some(_), None) => (1 + rng.index(NUM_SPECIES), b),
            (Some(sa), Some(sb)) => {
                if sb == prey_of(sa) {
                    (a, 1 + sa)
                } else if sa == prey_of(sb) {
                    (1 + sb, b)
                } else {
                    (a, b)
                }
            }
            (None, None) => (a, b),
        }
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        match (self.species_of(a), self.species_of(b)) {
            (None, Some(_)) | (Some(_), None) => true,
            (Some(sa), Some(sb)) => sb == prey_of(sa) || sa == prey_of(sb),
            (None, None) => false,
        }
    }

    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        Some(ProtocolSpec::outcomes(self, a, b))
    }

    fn state_label(&self, state: usize) -> String {
        match self.species_of(state) {
            None => "X".to_string(),
            Some(s) => format!("A{}", s + 1),
        }
    }

    fn name(&self) -> &str {
        "rps-oscillator"
    }
}

impl ProtocolSpec for RpsOscillator {
    fn outcomes(&self, a: usize, b: usize) -> Vec<((usize, usize), f64)> {
        match (self.species_of(a), self.species_of(b)) {
            (None, Some(_)) => {
                let p = 1.0 / NUM_SPECIES as f64;
                (0..NUM_SPECIES).map(|s| ((a, 1 + s), p)).collect()
            }
            (Some(_), None) => {
                let p = 1.0 / NUM_SPECIES as f64;
                (0..NUM_SPECIES).map(|s| ((1 + s, b), p)).collect()
            }
            (Some(sa), Some(sb)) => {
                if sb == prey_of(sa) {
                    vec![((a, 1 + sa), 1.0)]
                } else if sa == prey_of(sb) {
                    vec![((1 + sb, b), 1.0)]
                } else {
                    vec![((a, b), 1.0)]
                }
            }
            (None, None) => vec![((a, b), 1.0)],
        }
    }
}

impl Oscillator for RpsOscillator {
    fn species_of(&self, state: usize) -> Option<usize> {
        if state == 0 {
            None
        } else {
            Some(state - 1)
        }
    }

    fn x_state(&self) -> usize {
        0
    }

    fn species_state(&self, species: usize) -> usize {
        assert!(species < NUM_SPECIES);
        1 + species
    }
}

/// DK18-style 7-state oscillator with a charge mechanism.
///
/// States: `0 = X`; `1 + 2·i + c` for species `i ∈ {0,1,2}` and charge
/// `c ∈ {0 = lo (A⁺), 1 = hi (A⁺⁺)}`.
///
/// Rules (symmetrized over the ordered pair):
///
/// * `X + A_j^* → X + A_r^lo` for `r` uniform — source reseeding;
/// * `A_i^lo + A_i^lo → A_i^hi + A_i^lo` — charging within a species
///   (effective rate ∝ fraction², the superlinearity that destabilizes the
///   center);
/// * `A_i^hi + A_{i−1}^* → A_i^lo + A_i^lo` — a charged predator converts
///   prey, spending its charge;
/// * `A_i^lo + A_{i−1}^* → A_i^lo + A_i^lo` with probability
///   [`Dk18Oscillator::weak_predation`] — residual predation keeping the
///   dynamic close to plain RPS.
#[derive(Debug, Clone, Copy)]
pub struct Dk18Oscillator {
    /// Probability that an uncharged predator still converts prey.
    weak_predation: f64,
}

impl Dk18Oscillator {
    /// Creates the oscillator with the default weak-predation rate (¼).
    #[must_use]
    pub fn new() -> Self {
        Self {
            weak_predation: 0.25,
        }
    }

    /// Overrides the uncharged predation probability (ablation knob).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[must_use]
    pub fn with_weak_predation(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.weak_predation = p;
        self
    }

    /// The configured uncharged predation probability.
    #[must_use]
    pub fn weak_predation(&self) -> f64 {
        self.weak_predation
    }

    fn charge_of(state: usize) -> bool {
        debug_assert!(state >= 1);
        (state - 1) % 2 == 1
    }

    fn make_state(species: usize, hi: bool) -> usize {
        1 + 2 * species + usize::from(hi)
    }
}

impl Default for Dk18Oscillator {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Dk18Oscillator {
    fn num_states(&self) -> usize {
        1 + 2 * NUM_SPECIES
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        match (self.species_of(a), self.species_of(b)) {
            (None, None) => (a, b),
            (None, Some(_)) => (a, Self::make_state(rng.index(NUM_SPECIES), false)),
            (Some(_), None) => (Self::make_state(rng.index(NUM_SPECIES), false), b),
            (Some(sa), Some(sb)) => {
                if sa == sb {
                    // Charging: lo + lo → hi + lo.
                    if !Self::charge_of(a) && !Self::charge_of(b) {
                        (Self::make_state(sa, true), b)
                    } else {
                        (a, b)
                    }
                } else if sb == prey_of(sa) {
                    self.predate(a, b, sa, rng, true)
                } else if sa == prey_of(sb) {
                    self.predate(b, a, sb, rng, false)
                } else {
                    (a, b)
                }
            }
        }
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        match (self.species_of(a), self.species_of(b)) {
            (None, None) => false,
            (None, Some(_)) | (Some(_), None) => true,
            (Some(sa), Some(sb)) => {
                if sa == sb {
                    !Self::charge_of(a) && !Self::charge_of(b)
                } else {
                    sb == prey_of(sa) || sa == prey_of(sb)
                }
            }
        }
    }

    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        Some(ProtocolSpec::outcomes(self, a, b))
    }

    fn state_label(&self, state: usize) -> String {
        match self.species_of(state) {
            None => "X".to_string(),
            Some(s) => {
                let charge = if Self::charge_of(state) { "++" } else { "+" };
                format!("A{}{}", s + 1, charge)
            }
        }
    }

    fn name(&self) -> &str {
        "dk18-oscillator"
    }
}

impl Dk18Oscillator {
    /// Resolves predation of `pred_state` (species `pred_species`) on
    /// `prey_state`. `pred_first` says whether the predator was the
    /// initiator, to put results back in order.
    fn predate(
        &self,
        pred_state: usize,
        prey_state: usize,
        pred_species: usize,
        rng: &mut SimRng,
        pred_first: bool,
    ) -> (usize, usize) {
        let charged = Self::charge_of(pred_state);
        let converts = if charged {
            true
        } else {
            self.weak_predation > 0.0 && rng.chance(self.weak_predation)
        };
        if !converts {
            return if pred_first {
                (pred_state, prey_state)
            } else {
                (prey_state, pred_state)
            };
        }
        let new_pred = Self::make_state(pred_species, false);
        let new_prey = Self::make_state(pred_species, false);
        if pred_first {
            (new_pred, new_prey)
        } else {
            (new_prey, new_pred)
        }
    }
}

impl ProtocolSpec for Dk18Oscillator {
    fn outcomes(&self, a: usize, b: usize) -> Vec<((usize, usize), f64)> {
        match (self.species_of(a), self.species_of(b)) {
            (None, None) => vec![((a, b), 1.0)],
            (None, Some(_)) => {
                let p = 1.0 / NUM_SPECIES as f64;
                (0..NUM_SPECIES)
                    .map(|s| ((a, Self::make_state(s, false)), p))
                    .collect()
            }
            (Some(_), None) => {
                let p = 1.0 / NUM_SPECIES as f64;
                (0..NUM_SPECIES)
                    .map(|s| ((Self::make_state(s, false), b), p))
                    .collect()
            }
            (Some(sa), Some(sb)) => {
                if sa == sb {
                    if !Self::charge_of(a) && !Self::charge_of(b) {
                        vec![((Self::make_state(sa, true), b), 1.0)]
                    } else {
                        vec![((a, b), 1.0)]
                    }
                } else if sb == prey_of(sa) {
                    self.predation_outcomes(a, b, sa, true)
                } else if sa == prey_of(sb) {
                    self.predation_outcomes(b, a, sb, false)
                } else {
                    vec![((a, b), 1.0)]
                }
            }
        }
    }
}

impl Dk18Oscillator {
    fn predation_outcomes(
        &self,
        pred_state: usize,
        prey_state: usize,
        pred_species: usize,
        pred_first: bool,
    ) -> Vec<((usize, usize), f64)> {
        let charged = Self::charge_of(pred_state);
        let p_convert = if charged { 1.0 } else { self.weak_predation };
        let new_pred = Self::make_state(pred_species, false);
        let converted = (new_pred, new_pred);
        let unchanged = if pred_first {
            (pred_state, prey_state)
        } else {
            (prey_state, pred_state)
        };
        let mut out = Vec::new();
        if p_convert > 0.0 {
            out.push((converted, p_convert));
        }
        if p_convert < 1.0 {
            out.push((unchanged, 1.0 - p_convert));
        }
        out
    }
}

impl Oscillator for Dk18Oscillator {
    fn species_of(&self, state: usize) -> Option<usize> {
        if state == 0 {
            None
        } else {
            Some((state - 1) / 2)
        }
    }

    fn x_state(&self) -> usize {
        0
    }

    fn species_state(&self, species: usize) -> usize {
        assert!(species < NUM_SPECIES);
        Self::make_state(species, false)
    }
}

/// Builds an initial count vector with `x` source agents and the remaining
/// `n − x` agents split as evenly as possible across the three species
/// (the "central region" configuration).
///
/// # Panics
///
/// Panics if `x > n`.
#[must_use]
pub fn central_init<O: Oscillator>(osc: &O, n: u64, x: u64) -> Vec<u64> {
    assert!(x <= n);
    let mut counts = vec![0u64; osc.num_states()];
    counts[osc.x_state()] = x;
    let rest = n - x;
    for s in 0..NUM_SPECIES {
        counts[osc.species_state(s)] = rest / 3 + u64::from((rest % 3) as usize > s);
    }
    counts
}

/// Builds an initial count vector with `x` source agents and all remaining
/// agents in one species (a post-takeover configuration).
///
/// # Panics
///
/// Panics if `x > n` or `species >= 3`.
#[must_use]
pub fn dominant_init<O: Oscillator>(osc: &O, n: u64, x: u64, species: usize) -> Vec<u64> {
    assert!(x <= n);
    let mut counts = vec![0u64; osc.num_states()];
    counts[osc.x_state()] = x;
    counts[osc.species_state(species)] = n - x;
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::counts::CountPopulation;
    use pp_engine::sim::Simulator;

    #[test]
    fn cyclic_predation_structure() {
        assert_eq!(predator_of(0), 1);
        assert_eq!(predator_of(2), 0);
        assert_eq!(prey_of(0), 2);
        assert_eq!(prey_of(predator_of(1)), 1);
    }

    #[test]
    fn rps_predation_converts_prey() {
        let osc = RpsOscillator::new();
        let mut rng = SimRng::seed_from(1);
        // A2 (state 2, species 1) preys on A1 (state 1, species 0).
        let (a2, b2) = osc.interact(2, 1, &mut rng);
        assert_eq!((a2, b2), (2, 2));
        // Reverse order as well.
        let (a2, b2) = osc.interact(1, 2, &mut rng);
        assert_eq!((a2, b2), (2, 2));
    }

    #[test]
    fn rps_non_adjacent_species_ignore() {
        let osc = RpsOscillator::new();
        let mut rng = SimRng::seed_from(2);
        // A1 (species 0) vs A1: no predation.
        assert_eq!(osc.interact(1, 1, &mut rng), (1, 1));
        assert!(!osc.is_reactive(1, 1));
    }

    #[test]
    fn rps_source_reseeds_uniformly() {
        let osc = RpsOscillator::new();
        let mut rng = SimRng::seed_from(3);
        let mut hits = [0u32; NUM_SPECIES];
        for _ in 0..30_000 {
            let (_, b) = osc.interact(0, 1, &mut rng);
            hits[osc.species_of(b).unwrap()] += 1;
        }
        for &h in &hits {
            let rate = h as f64 / 30_000.0;
            assert!((rate - 1.0 / 3.0).abs() < 0.02, "rate {rate}");
        }
    }

    #[test]
    fn rps_outcomes_match_interact() {
        let osc = RpsOscillator::new();
        for a in 0..4 {
            for b in 0..4 {
                let outs = osc.outcomes(a, b);
                let total: f64 = outs.iter().map(|&(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-12, "({a},{b})");
            }
        }
    }

    #[test]
    fn dk18_state_packing_roundtrip() {
        let osc = Dk18Oscillator::new();
        assert_eq!(osc.num_states(), 7);
        for s in 1..7 {
            let species = osc.species_of(s).unwrap();
            assert!(species < 3);
        }
        assert_eq!(osc.species_of(0), None);
        for sp in 0..3 {
            assert_eq!(osc.species_of(osc.species_state(sp)), Some(sp));
        }
    }

    #[test]
    fn dk18_charging_within_species() {
        let osc = Dk18Oscillator::new();
        let mut rng = SimRng::seed_from(4);
        let lo = Dk18Oscillator::make_state(0, false);
        let hi = Dk18Oscillator::make_state(0, true);
        assert_eq!(osc.interact(lo, lo, &mut rng), (hi, lo));
        assert_eq!(osc.interact(hi, lo, &mut rng), (hi, lo), "already charged");
    }

    #[test]
    fn dk18_charged_predation_always_converts() {
        let osc = Dk18Oscillator::new();
        let mut rng = SimRng::seed_from(5);
        let pred_hi = Dk18Oscillator::make_state(1, true);
        let prey = Dk18Oscillator::make_state(0, false);
        let pred_lo = Dk18Oscillator::make_state(1, false);
        assert_eq!(osc.interact(pred_hi, prey, &mut rng), (pred_lo, pred_lo));
        assert_eq!(osc.interact(prey, pred_hi, &mut rng), (pred_lo, pred_lo));
    }

    #[test]
    fn dk18_weak_predation_rate() {
        let osc = Dk18Oscillator::new().with_weak_predation(0.25);
        let mut rng = SimRng::seed_from(6);
        let pred_lo = Dk18Oscillator::make_state(1, false);
        let prey = Dk18Oscillator::make_state(0, false);
        let converted = (0..40_000)
            .filter(|_| osc.interact(pred_lo, prey, &mut rng).1 != prey)
            .count();
        let rate = converted as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn dk18_outcomes_sum_to_one() {
        let osc = Dk18Oscillator::new();
        for a in 0..7 {
            for b in 0..7 {
                let outs = osc.outcomes(a, b);
                let total: f64 = outs.iter().map(|&(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-12, "({a},{b}) -> {outs:?}");
            }
        }
    }

    #[test]
    fn init_builders_preserve_population() {
        let osc = Dk18Oscillator::new();
        let c = central_init(&osc, 1000, 5);
        assert_eq!(c.iter().sum::<u64>(), 1000);
        assert_eq!(c[osc.x_state()], 5);
        let d = dominant_init(&osc, 100, 1, 2);
        assert_eq!(d.iter().sum::<u64>(), 100);
        assert_eq!(d[osc.species_state(2)], 99);
    }

    #[test]
    fn species_counts_aggregates_charges() {
        let osc = Dk18Oscillator::new();
        let mut counts = vec![0u64; 7];
        counts[Dk18Oscillator::make_state(1, false)] = 3;
        counts[Dk18Oscillator::make_state(1, true)] = 4;
        counts[0] = 2;
        assert_eq!(osc.species_counts(&counts), [0, 7, 0]);
    }

    #[test]
    fn source_keeps_every_species_alive() {
        // With a source present, no species can stay extinct long.
        let osc = Dk18Oscillator::new();
        let init = dominant_init(&osc, 500, 2, 0);
        let mut pop = CountPopulation::from_counts(&osc, &init);
        let mut rng = SimRng::seed_from(7);
        let mut seen = [false; NUM_SPECIES];
        for _ in 0..500 * 60 {
            pop.step(&mut rng);
            let sc = osc.species_counts(&pop.counts());
            for (s, &c) in sc.iter().enumerate() {
                if c > 0 {
                    seen[s] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "all species appear: {seen:?}");
    }
}
