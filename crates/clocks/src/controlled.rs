//! The self-contained phase clock: an [`XControl`] process composed under
//! the oscillator, detector, and phase counter.
//!
//! [`crate::phase_clock::PhaseClock`] treats the source count `#X` as part
//! of the initial configuration. The full construction of the paper instead
//! *derives* membership of `X` from a control process (Propositions
//! 5.3–5.5) running as a separate thread: an agent acts as an oscillator
//! source exactly while the control process keeps its `X` flag set. When an
//! agent leaves `X` it re-enters the oscillator as a uniformly random
//! species; when (never, for the provided processes) it joins `X`, its
//! species state is replaced by the source state.
//!
//! This composite realizes the paper's startup story: all agents begin in
//! `X`, the control process thins `#X` into `[1, n^{1−ε}]` (or
//! polylogarithmically close to 0 for the w.h.p. variant), and the clock
//! self-organizes and starts ticking.

use crate::junta::XControl;
use crate::oscillator::{Oscillator, NUM_SPECIES};
use crate::phase_clock::{detector_observe, doubt_consensus, DEFAULT_CONSENSUS_DEPTH};
use pp_engine::protocol::Protocol;
use pp_engine::rng::SimRng;

/// A fixed (non-dynamic) control process: agents are in `X` iff initialized
/// there. Used to pin `#X` in controlled experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedX;

impl FixedX {
    /// Creates the trivial control process.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for FixedX {
    fn num_states(&self) -> usize {
        2
    }

    fn interact(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        (a, b)
    }

    fn is_reactive(&self, _a: usize, _b: usize) -> bool {
        false
    }

    fn state_label(&self, state: usize) -> String {
        if state == 1 {
            "X".into()
        } else {
            "!X".into()
        }
    }

    fn name(&self) -> &str {
        "fixed-x"
    }
}

impl XControl for FixedX {
    fn is_x(&self, state: usize) -> bool {
        state == 1
    }

    fn initial_state(&self) -> usize {
        1
    }
}

/// A phase clock whose source membership is driven by a control process.
///
/// State packing:
/// `ctrl + ctrl_states · (osc + osc_states · (det + 3k · (phase + m · doubt)))`.
///
/// Invariant: the oscillator component is the source state iff the control
/// component is in `X`. The composition maintains this by resampling the
/// species of an agent whose control state leaves `X` (and forcing the
/// source state on entry).
#[derive(Debug, Clone)]
pub struct ControlledClock<O, C> {
    oscillator: O,
    control: C,
    k: u8,
    m: u8,
    /// Doubt-gated phase consensus depth (see
    /// [`crate::phase_clock::doubt_consensus`]; 0 disables).
    consensus_depth: u8,
    osc_states: usize,
    ctrl_states: usize,
}

impl<O: Oscillator, C: XControl> ControlledClock<O, C> {
    /// Creates the composite clock with confirmation depth `k` and phase
    /// modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `m == 0`, or `3k ≥ 256`.
    #[must_use]
    pub fn new(oscillator: O, control: C, k: u8, m: u8) -> Self {
        assert!(k > 0 && m > 0);
        assert!(3 * (k as usize) < 256);
        let osc_states = oscillator.num_states();
        let ctrl_states = control.num_states();
        Self {
            oscillator,
            control,
            k,
            m,
            consensus_depth: DEFAULT_CONSENSUS_DEPTH,
            osc_states,
            ctrl_states,
        }
    }

    /// Sets the doubt-gated consensus depth (0 disables; default
    /// [`DEFAULT_CONSENSUS_DEPTH`]).
    #[must_use]
    pub fn with_consensus_depth(mut self, depth: u8) -> Self {
        self.consensus_depth = depth;
        self
    }

    /// The doubt dimension size (at least 1 even when consensus is off).
    fn doubt_states(&self) -> usize {
        (self.consensus_depth as usize).max(1)
    }

    /// The oscillator component.
    #[must_use]
    pub fn oscillator(&self) -> &O {
        &self.oscillator
    }

    /// The control component.
    #[must_use]
    pub fn control(&self) -> &C {
        &self.control
    }

    /// Phase modulus `m`.
    #[must_use]
    pub fn modulus(&self) -> u8 {
        self.m
    }

    /// Packs components into a dense state.
    #[must_use]
    pub fn pack(&self, ctrl: usize, osc: usize, det: u8, phase: u8, doubt: u8) -> usize {
        debug_assert!(ctrl < self.ctrl_states && osc < self.osc_states);
        debug_assert!((doubt as usize) < self.doubt_states());
        ctrl + self.ctrl_states
            * (osc
                + self.osc_states
                    * (det as usize
                        + 3 * self.k as usize
                            * (phase as usize + self.m as usize * doubt as usize)))
    }

    /// Unpacks a dense state into `(ctrl, osc, det, phase, doubt)`.
    #[must_use]
    pub fn unpack(&self, state: usize) -> (usize, usize, u8, u8, u8) {
        let ctrl = state % self.ctrl_states;
        let rest = state / self.ctrl_states;
        let osc = rest % self.osc_states;
        let rest = rest / self.osc_states;
        let det = (rest % (3 * self.k as usize)) as u8;
        let rest = rest / (3 * self.k as usize);
        let phase = (rest % self.m as usize) as u8;
        let doubt = (rest / self.m as usize) as u8;
        (ctrl, osc, det, phase, doubt)
    }

    /// The phase of a packed state.
    #[must_use]
    pub fn phase_of(&self, state: usize) -> u8 {
        self.unpack(state).3
    }

    /// The all-agents initial state: control at its initial state, species
    /// consistent with the control's `X` flag (species 0 if not in `X`).
    #[must_use]
    pub fn initial_state(&self) -> usize {
        let ctrl = self.control.initial_state();
        let osc = if self.control.is_x(ctrl) {
            self.oscillator.x_state()
        } else {
            self.oscillator.species_state(0)
        };
        self.pack(ctrl, osc, 0, 0, 0)
    }

    /// Initial count vector: all `n` agents at [`Self::initial_state`].
    #[must_use]
    pub fn initial_counts(&self, n: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_states()];
        counts[self.initial_state()] = n;
        counts
    }

    /// Current `#X` from a state-count vector.
    #[must_use]
    pub fn count_x(&self, counts: &[u64]) -> u64 {
        counts
            .iter()
            .enumerate()
            .filter(|&(s, &c)| c > 0 && self.control.is_x(self.unpack(s).0))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Histogram of phases from a state-count vector.
    #[must_use]
    pub fn phase_histogram(&self, counts: &[u64]) -> Vec<u64> {
        let mut hist = vec![0u64; self.m as usize];
        for (state, &c) in counts.iter().enumerate() {
            if c > 0 {
                hist[self.phase_of(state) as usize] += c;
            }
        }
        hist
    }

    /// Majority phase and its population share.
    #[must_use]
    pub fn majority_phase(&self, counts: &[u64]) -> (u8, f64) {
        let hist = self.phase_histogram(counts);
        let total: u64 = hist.iter().sum();
        let (phase, &max) = hist
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty");
        (phase as u8, max as f64 / total.max(1) as f64)
    }

    /// Species counts (from the oscillator components).
    #[must_use]
    pub fn species_counts(&self, counts: &[u64]) -> [u64; NUM_SPECIES] {
        let mut out = [0u64; NUM_SPECIES];
        for (state, &c) in counts.iter().enumerate() {
            if c > 0 {
                if let Some(sp) = self.oscillator.species_of(self.unpack(state).1) {
                    out[sp] += c;
                }
            }
        }
        out
    }

    /// Restores the `X`-flag/species invariant after a control transition.
    fn reconcile(
        &self,
        ctrl_before: usize,
        ctrl_after: usize,
        osc: usize,
        rng: &mut SimRng,
    ) -> usize {
        let was_x = self.control.is_x(ctrl_before);
        let is_x = self.control.is_x(ctrl_after);
        match (was_x, is_x) {
            (true, false) => self.oscillator.species_state(rng.index(NUM_SPECIES)),
            (false, true) => self.oscillator.x_state(),
            _ => osc,
        }
    }
}

impl<O: Oscillator, C: XControl> Protocol for ControlledClock<O, C> {
    fn num_states(&self) -> usize {
        self.ctrl_states
            * self.osc_states
            * 3
            * self.k as usize
            * self.m as usize
            * self.doubt_states()
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        let (ctrl_a, osc_a, det_a, ph_a, db_a) = self.unpack(a);
        let (ctrl_b, osc_b, det_b, ph_b, db_b) = self.unpack(b);
        // Thread shares: control 1/6, oscillator 1/3, clock 1/2. The clock
        // thread gets the largest share because detector confirmation
        // streaks need many observations per oscillator plateau; the
        // control process only needs a trickle of activations.
        match rng.index(6) {
            0 => {
                // Control thread.
                let (ca2, cb2) = self.control.interact(ctrl_a, ctrl_b, rng);
                let osc_a2 = self.reconcile(ctrl_a, ca2, osc_a, rng);
                let osc_b2 = self.reconcile(ctrl_b, cb2, osc_b, rng);
                (
                    self.pack(ca2, osc_a2, det_a, ph_a, db_a),
                    self.pack(cb2, osc_b2, det_b, ph_b, db_b),
                )
            }
            1 | 2 => {
                // Oscillator thread.
                let (osc_a2, osc_b2) = self.oscillator.interact(osc_a, osc_b, rng);
                (
                    self.pack(ctrl_a, osc_a2, det_a, ph_a, db_a),
                    self.pack(ctrl_b, osc_b2, det_b, ph_b, db_b),
                )
            }
            _ => {
                // Clock thread: detector observation + doubt-gated consensus.
                let sp_a = self.oscillator.species_of(osc_a);
                let sp_b = self.oscillator.species_of(osc_b);
                let step_a = detector_observe(det_a, self.k, sp_b);
                let step_b = detector_observe(det_b, self.k, sp_a);
                let pa = if step_a.ticked {
                    (ph_a + 1) % self.m
                } else {
                    ph_a
                };
                let pb = if step_b.ticked {
                    (ph_b + 1) % self.m
                } else {
                    ph_b
                };
                let (pa2, da2, pb2, db2) = if self.consensus_depth > 0 {
                    let (na, da) = doubt_consensus(pa, db_a, pb, self.consensus_depth, self.m);
                    let (nb, db) = doubt_consensus(pb, db_b, pa, self.consensus_depth, self.m);
                    (na, da, nb, db)
                } else {
                    (pa, db_a, pb, db_b)
                };
                (
                    self.pack(ctrl_a, osc_a, step_a.position, pa2, da2),
                    self.pack(ctrl_b, osc_b, step_b.position, pb2, db2),
                )
            }
        }
    }

    fn state_label(&self, state: usize) -> String {
        let (ctrl, osc, det, ph, _) = self.unpack(state);
        format!(
            "({},{},d{det},p{ph})",
            self.control.state_label(ctrl),
            self.oscillator.state_label(osc)
        )
    }

    fn name(&self) -> &str {
        "controlled-clock"
    }
}

/// Builds a mixed initial count vector for a [`ControlledClock`] over
/// [`FixedX`]: `x` agents pinned in the source state and `n − x` agents
/// spread evenly over the three species, all at detector 0 / phase 0.
///
/// # Panics
///
/// Panics if `x > n`.
#[must_use]
pub fn fixed_x_init<O: Oscillator>(clock: &ControlledClock<O, FixedX>, n: u64, x: u64) -> Vec<u64> {
    assert!(x <= n);
    let mut counts = vec![0u64; clock.num_states()];
    let osc = clock.oscillator();
    counts[clock.pack(1, osc.x_state(), 0, 0, 0)] = x;
    let rest = n - x;
    for s in 0..NUM_SPECIES {
        let share = rest / 3 + u64::from((rest % 3) as usize > s);
        counts[clock.pack(0, osc.species_state(s), 0, 0, 0)] += share;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::junta::PairwiseElimination;
    use crate::oscillator::Dk18Oscillator;
    use pp_engine::counts::CountPopulation;
    use pp_engine::sim::Simulator;

    fn clock() -> ControlledClock<Dk18Oscillator, PairwiseElimination> {
        ControlledClock::new(Dk18Oscillator::new(), PairwiseElimination::new(), 4, 12)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let c = clock();
        for state in (0..c.num_states()).step_by(7) {
            let (ctrl, osc, det, ph, db) = c.unpack(state);
            assert_eq!(c.pack(ctrl, osc, det, ph, db), state);
        }
    }

    #[test]
    fn initial_state_is_x_with_source_species() {
        let c = clock();
        let (ctrl, osc, det, ph, db) = c.unpack(c.initial_state());
        assert!(c.control().is_x(ctrl));
        assert_eq!(osc, c.oscillator().x_state());
        assert_eq!((det, ph, db), (0, 0, 0));
    }

    #[test]
    fn invariant_x_flag_matches_source_state() {
        let c = clock();
        let mut pop = CountPopulation::from_counts(&c, &c.initial_counts(128));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..128 * 100 {
            pop.step(&mut rng);
        }
        for (state, &count) in pop.counts().iter().enumerate() {
            if count == 0 {
                continue;
            }
            let (ctrl, osc, _, _, _) = c.unpack(state);
            assert_eq!(
                c.control().is_x(ctrl),
                osc == c.oscillator().x_state(),
                "invariant broken in state {state}"
            );
        }
    }

    #[test]
    fn x_count_shrinks_but_stays_positive() {
        let c = clock();
        let mut pop = CountPopulation::from_counts(&c, &c.initial_counts(256));
        let mut rng = SimRng::seed_from(2);
        for _ in 0..256 * 300 {
            pop.step(&mut rng);
        }
        let x = c.count_x(&pop.counts());
        assert!(x >= 1);
        assert!(x < 64, "#X should have shrunk, got {x}");
    }

    #[test]
    fn fixed_x_init_layout() {
        let c = ControlledClock::new(Dk18Oscillator::new(), FixedX::new(), 4, 12);
        let counts = fixed_x_init(&c, 100, 7);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        assert_eq!(c.count_x(&counts), 7);
        let sc = c.species_counts(&counts);
        assert_eq!(sc.iter().sum::<u64>(), 93);
        assert!(sc.iter().all(|&s| s == 31) || sc.contains(&31));
    }

    #[test]
    fn fixed_x_membership_is_static() {
        let c = ControlledClock::new(Dk18Oscillator::new(), FixedX::new(), 4, 12);
        let mut pop = CountPopulation::from_counts(&c, &fixed_x_init(&c, 200, 5));
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 * 50 {
            pop.step(&mut rng);
        }
        assert_eq!(c.count_x(&pop.counts()), 5);
    }

    #[test]
    fn phase_histogram_sums_to_population() {
        let c = clock();
        let mut pop = CountPopulation::from_counts(&c, &c.initial_counts(64));
        let mut rng = SimRng::seed_from(4);
        for _ in 0..64 * 20 {
            pop.step(&mut rng);
        }
        let hist = c.phase_histogram(&pop.counts());
        assert_eq!(hist.iter().sum::<u64>(), 64);
    }
}
