//! Control of the source-state count `#X` (Section 5.2, "Controlling |X|").
//!
//! The oscillator (and hence the whole clock stack) operates correctly when
//! `1 ≤ #X ≤ n^{1−ε}`. The paper provides three processes to establish that
//! regime from the all-`X` initial configuration:
//!
//! * [`PairwiseElimination`] (Proposition 5.3) — the rule
//!   `▷ (X) + (X) → (X) + (¬X)`. `#X` is non-increasing, never reaches 0,
//!   and drops below `n^{1−ε}` within `O(n^ε)` rounds. Used by the
//!   *always-correct* protocol family.
//! * [`KLevelDecay`] (Proposition 5.5) — a `k`-level ladder process whose
//!   signal decays as `|X| ≈ n·exp(−t^{1/(k+1)})`, reaching `n^{1−ε}` within
//!   `O(log^{k+1} n)` rounds but eventually hitting `#X = 0`. Used by the
//!   *w.h.p.* protocol family, which completes before the signal dies.
//! * [`GsJunta`] (Proposition 5.4, after Gąsieniec & Stachowiak) — junta
//!   election with `O(log log n)` states reaching `#X ≤ n^{1−ε}` in
//!   `O(log n)` rounds while keeping `#X ≥ 1`. Implemented as the standard
//!   level-tournament process; included as the comparison point.
//!
//! All three implement [`XControl`], the interface by which
//! [`crate::controlled::ControlledClock`] composes them under the clock.

use pp_engine::protocol::Protocol;
use pp_engine::rng::SimRng;

/// A protocol that additionally designates which of its states carry the
/// control flag `X`.
pub trait XControl: Protocol {
    /// Whether agents in `state` are members of the control set `X`.
    fn is_x(&self, state: usize) -> bool;

    /// The initial state for all agents at protocol start.
    fn initial_state(&self) -> usize;

    /// Total `#X` given a state-count vector.
    fn count_x(&self, counts: &[u64]) -> u64 {
        counts
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.is_x(s))
            .map(|(_, &c)| c)
            .sum()
    }
}

/// Proposition 5.3: `▷ (X) + (X) → (X) + (¬X)`.
///
/// States: `0 = ¬X`, `1 = X`. Monotone, guarantees `#X ≥ 1` forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseElimination;

impl PairwiseElimination {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for PairwiseElimination {
    fn num_states(&self) -> usize {
        2
    }

    fn interact(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        if a == 1 && b == 1 {
            (1, 0)
        } else {
            (a, b)
        }
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        a == 1 && b == 1
    }

    fn state_label(&self, state: usize) -> String {
        if state == 1 {
            "X".into()
        } else {
            "!X".into()
        }
    }

    fn name(&self) -> &str {
        "pairwise-elimination"
    }
}

impl XControl for PairwiseElimination {
    fn is_x(&self, state: usize) -> bool {
        state == 1
    }

    fn initial_state(&self) -> usize {
        1
    }
}

/// Proposition 5.5: the `k`-level decay process.
///
/// Every agent carries two ladders:
///
/// * a `Z`-ladder with positions `0..=k`; meeting a `Z`-agent climbs one
///   rung, meeting a `¬Z`-agent resets to rung 0, and climbing past rung
///   `k` clears `Z`. Losing `Z` thus requires `k+1` consecutive `Z`
///   meetings, so `d|Z|/dt ≈ −|Z|·(|Z|/n)^{k+1}`, i.e.
///   `|Z| = Θ(n·t^{−1/(k+1)})`;
/// * an `X`-ladder with positions `0..k`, climbed on `Z` meetings the same
///   way; climbing past rung `k−1` clears `X` (permanently). This yields
///   `d|X|/dt ≈ −|X|·(|Z|/n)^k`, solving to `|X| ≈ n·exp(−c·t^{1/(k+1)})` —
///   a signal that stays positive for polylogarithmic time and then dies.
///
/// State packing: `z · (k + 1) + x` where `z ∈ 0..=(k+1)` encodes `¬Z` (0)
/// or `Z` at rung `z−1`, and `x ∈ 0..=k` encodes `¬X` (0) or `X` at rung
/// `x−1`.
#[derive(Debug, Clone, Copy)]
pub struct KLevelDecay {
    k: u8,
}

impl KLevelDecay {
    /// Creates the process with ladder parameter `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: u8) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self { k }
    }

    /// The ladder parameter.
    #[must_use]
    pub fn k(&self) -> u8 {
        self.k
    }

    fn z_states(&self) -> usize {
        self.k as usize + 2
    }

    fn x_states(&self) -> usize {
        self.k as usize + 1
    }

    /// Packs `(z, x)` sub-states.
    #[must_use]
    pub fn pack(&self, z: usize, x: usize) -> usize {
        debug_assert!(z < self.z_states() && x < self.x_states());
        z * self.x_states() + x
    }

    /// Unpacks into `(z, x)` sub-states.
    #[must_use]
    pub fn unpack(&self, state: usize) -> (usize, usize) {
        (state / self.x_states(), state % self.x_states())
    }

    /// Whether agents in `state` hold the auxiliary signal `Z`.
    #[must_use]
    pub fn has_z(&self, state: usize) -> bool {
        self.unpack(state).0 > 0
    }

    /// Total `#Z` given a state-count vector.
    #[must_use]
    pub fn count_z(&self, counts: &[u64]) -> u64 {
        counts
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.has_z(s))
            .map(|(_, &c)| c)
            .sum()
    }
}

impl Protocol for KLevelDecay {
    fn num_states(&self) -> usize {
        self.z_states() * self.x_states()
    }

    fn interact(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        let (za, xa) = self.unpack(a);
        let responder_has_z = self.has_z(b);
        let k = self.k as usize;
        let (za2, xa2) = if responder_has_z {
            // Climb both ladders (if the respective flag is held).
            let za2 = match za {
                0 => 0,
                z if z == k + 1 => 0, // top rung: lose Z
                z => z + 1,
            };
            let xa2 = match xa {
                0 => 0,
                x if x == k => 0, // top rung: lose X
                x => x + 1,
            };
            (za2, xa2)
        } else {
            // Reset ladder progress (keep the flags themselves).
            let za2 = if za > 0 { 1 } else { 0 };
            let xa2 = if xa > 0 { 1 } else { 0 };
            (za2, xa2)
        };
        (self.pack(za2, xa2), b)
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        self.interact_deterministic(a, b) != a
    }

    fn state_label(&self, state: usize) -> String {
        let (z, x) = self.unpack(state);
        let zs = if z == 0 {
            "!Z".to_string()
        } else {
            format!("Z{}", z - 1)
        };
        let xs = if x == 0 {
            "!X".to_string()
        } else {
            format!("X{}", x - 1)
        };
        format!("({zs},{xs})")
    }

    fn name(&self) -> &str {
        "k-level-decay"
    }
}

impl KLevelDecay {
    /// The (deterministic) initiator successor — used for reactivity.
    fn interact_deterministic(&self, a: usize, b: usize) -> usize {
        let mut rng = SimRng::seed_from(0); // transition is RNG-free
        self.interact(a, b, &mut rng).0
    }
}

impl pp_engine::protocol::ProtocolSpec for KLevelDecay {
    fn outcomes(&self, a: usize, b: usize) -> Vec<((usize, usize), f64)> {
        // The transition is deterministic.
        vec![((self.interact_deterministic(a, b), b), 1.0)]
    }
}

impl XControl for KLevelDecay {
    fn is_x(&self, state: usize) -> bool {
        self.unpack(state).1 > 0
    }

    fn initial_state(&self) -> usize {
        // Z held at rung 0, X held at rung 0.
        self.pack(1, 1)
    }
}

/// Proposition 5.4 (after \[GS18\]): level-race junta election with a level
/// cap `L = Θ(log log n)`.
///
/// Every agent carries `(level, settled, max_seen)`:
///
/// * meeting an agent of *strictly higher* level settles an agent forever
///   (it keeps its level but stops advancing);
/// * when two *unsettled* agents of equal level `ℓ < L` meet, both advance
///   to `ℓ+1`;
/// * `max_seen` spreads by epidemic max over observed levels.
///
/// The race between advancing (requires meeting an equal before a superior)
/// and settling thins each level quadratically — `n_{ℓ+1} ≈ n_ℓ²/n` — so
/// after `Θ(log log n)` levels only `n^{1−ε}` agents remain unsurpassed.
/// The control set is `X = {level ≥ max_seen}`: initially the whole
/// population, eventually exactly the agents at the globally maximal level;
/// `#X ≥ 1` always holds.
///
/// State packing: `(level · 2 + settled) · (L+1) + max_seen`.
#[derive(Debug, Clone, Copy)]
pub struct GsJunta {
    cap: u8,
}

impl GsJunta {
    /// Creates the process with level cap `cap ≥ 1`.
    ///
    /// For a population of size `n`, `cap = ⌈log₂ log₂ n⌉ + 2` matches the
    /// `O(log log n)` state bound of \[GS18\].
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    #[must_use]
    pub fn new(cap: u8) -> Self {
        assert!(cap >= 1);
        Self { cap }
    }

    /// The recommended cap for population size `n`.
    #[must_use]
    pub fn cap_for(n: u64) -> u8 {
        let loglog = (n.max(4) as f64).log2().log2().ceil() as u8;
        loglog + 2
    }

    /// The level cap.
    #[must_use]
    pub fn cap(&self) -> u8 {
        self.cap
    }

    fn width(&self) -> usize {
        self.cap as usize + 1
    }

    /// Packs `(level, settled, max_seen)`.
    #[must_use]
    pub fn pack(&self, level: usize, settled: bool, max_seen: usize) -> usize {
        debug_assert!(level < self.width() && max_seen < self.width());
        (level * 2 + usize::from(settled)) * self.width() + max_seen
    }

    /// Unpacks into `(level, settled, max_seen)`.
    #[must_use]
    pub fn unpack(&self, state: usize) -> (usize, bool, usize) {
        let max_seen = state % self.width();
        let rest = state / self.width();
        (rest / 2, rest % 2 == 1, max_seen)
    }
}

impl Protocol for GsJunta {
    fn num_states(&self) -> usize {
        self.width() * 2 * self.width()
    }

    fn interact(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
        let (mut la, mut sa, ma) = self.unpack(a);
        let (mut lb, mut sb, mb) = self.unpack(b);
        if la < lb {
            sa = true;
        } else if lb < la {
            sb = true;
        } else if !sa && !sb && la < self.cap as usize {
            la += 1;
            lb += 1;
        }
        let max = la.max(lb).max(ma).max(mb);
        (self.pack(la, sa, max), self.pack(lb, sb, max))
    }

    fn state_label(&self, state: usize) -> String {
        let (l, s, m) = self.unpack(state);
        format!("(l{l}{},m{m})", if s { "s" } else { "" })
    }

    fn name(&self) -> &str {
        "gs-junta"
    }
}

impl XControl for GsJunta {
    fn is_x(&self, state: usize) -> bool {
        let (l, _, m) = self.unpack(state);
        l >= m
    }

    fn initial_state(&self) -> usize {
        self.pack(0, false, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_engine::counts::CountPopulation;
    use pp_engine::sim::{run_until, Simulator};

    #[test]
    fn pairwise_elimination_preserves_at_least_one_x() {
        let p = PairwiseElimination::new();
        let mut pop = CountPopulation::from_counts(p, &[0, 256]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..256 * 200 {
            pop.step(&mut rng);
            assert!(pop.count(1) >= 1, "#X must never reach 0");
        }
        assert!(pop.count(1) < 256, "#X must shrink");
    }

    #[test]
    fn pairwise_elimination_reaches_sublinear_x() {
        // T = O(n^ε): for ε = 0.5 and n = 1024, #X < 32 within ~O(32) rounds.
        let p = PairwiseElimination::new();
        let mut pop = CountPopulation::from_counts(p, &[0, 1024]);
        let mut rng = SimRng::seed_from(2);
        let t = run_until(&mut pop, &mut rng, 10_000.0, 16, |s| s.count(1) < 32)
            .expect("reaches n^{1/2}");
        assert!(t < 500.0, "took {t} rounds");
    }

    #[test]
    fn klevel_packing_roundtrip() {
        let p = KLevelDecay::new(3);
        for s in 0..p.num_states() {
            let (z, x) = p.unpack(s);
            assert_eq!(p.pack(z, x), s);
        }
    }

    #[test]
    fn klevel_ladder_climbs_and_resets() {
        let p = KLevelDecay::new(2);
        let mut rng = SimRng::seed_from(3);
        let start = p.initial_state(); // (Z rung 0, X rung 0)
        let z_agent = p.initial_state();
        let nz_agent = p.pack(0, 0);
        // Climb on Z meeting.
        let (s1, _) = p.interact(start, z_agent, &mut rng);
        assert_eq!(p.unpack(s1), (2, 2));
        // Reset on ¬Z meeting.
        let (s2, _) = p.interact(s1, nz_agent, &mut rng);
        assert_eq!(p.unpack(s2), (1, 1));
    }

    #[test]
    fn klevel_loses_flags_at_ladder_top() {
        let p = KLevelDecay::new(2);
        let mut rng = SimRng::seed_from(4);
        let z_agent = p.initial_state();
        // X-ladder has rungs 0..=1 for k=2: from rung 1 (x=2), climbing clears X.
        let near_top = p.pack(3, 2);
        let (s, _) = p.interact(near_top, z_agent, &mut rng);
        let (z, x) = p.unpack(s);
        assert_eq!(z, 0, "Z cleared past top rung");
        assert_eq!(x, 0, "X cleared past top rung");
    }

    #[test]
    fn klevel_x_decays_but_outlives_polylog_window() {
        let p = KLevelDecay::new(2);
        let n = 4096u64;
        let mut counts = vec![0u64; p.num_states()];
        counts[p.initial_state()] = n;
        let mut pop = CountPopulation::from_counts(p, &counts);
        let mut rng = SimRng::seed_from(5);
        // After a polylog time, #X should have decayed below n^{3/4} but
        // remain positive.
        let target = (n as f64).powf(0.75) as u64;
        let t = run_until(&mut pop, &mut rng, 50_000.0, 64, |s| {
            p.count_x(&s.counts()) < target
        })
        .expect("X decays below n^{3/4}");
        assert!(t > 1.0, "decay is not instant: {t}");
        assert!(
            p.count_x(&pop.counts()) > 0,
            "X still alive right after crossing the threshold"
        );
    }

    #[test]
    fn gs_junta_levels_advance_and_settle() {
        let p = GsJunta::new(3);
        let mut rng = SimRng::seed_from(6);
        // Two unsettled equals advance together.
        let (a2, b2) = p.interact(p.pack(2, false, 2), p.pack(2, false, 2), &mut rng);
        assert_eq!(p.unpack(a2), (3, false, 3));
        assert_eq!(p.unpack(b2), (3, false, 3));
        // Meeting a superior settles the lower agent.
        let (a3, b3) = p.interact(p.pack(1, false, 1), p.pack(2, false, 2), &mut rng);
        assert_eq!(p.unpack(a3), (1, true, 2));
        assert_eq!(p.unpack(b3), (2, false, 2));
        // Settled agents never advance.
        let (a4, _) = p.interact(p.pack(1, true, 2), p.pack(1, false, 2), &mut rng);
        assert_eq!(p.unpack(a4), (1, true, 2));
        // At the cap, no further advance.
        let (a5, _) = p.interact(p.pack(3, false, 3), p.pack(3, false, 3), &mut rng);
        assert_eq!(p.unpack(a5).0, 3);
    }

    #[test]
    fn gs_junta_elects_small_nonempty_junta() {
        let n = 2048u64;
        let p = GsJunta::new(GsJunta::cap_for(n));
        let mut counts = vec![0u64; p.num_states()];
        counts[p.initial_state()] = n;
        let mut pop = CountPopulation::from_counts(p, &counts);
        let mut rng = SimRng::seed_from(7);
        // Junta election runs for O(log n) rounds; give it plenty.
        for _ in 0..(n as usize) * 200 {
            pop.step(&mut rng);
        }
        let x = p.count_x(&pop.counts());
        assert!(x >= 1, "junta must be non-empty");
        assert!(x < n / 4, "junta must be small, got {x}");
    }

    #[test]
    fn cap_for_is_loglog_sized() {
        assert!(GsJunta::cap_for(1u64 << 16) <= 7);
        assert!(GsJunta::cap_for(1u64 << 32) <= 8);
        assert!(GsJunta::cap_for(4) >= 2);
    }

    #[test]
    fn count_x_counts_only_x_states() {
        let p = PairwiseElimination::new();
        assert_eq!(p.count_x(&[5, 3]), 3);
    }
}
