//! Semantic validation of the precompiler: executing the lowered ruleset
//! tree leaf-by-leaf under an idealized fair scheduler must implement the
//! source program.
//!
//! This test bridges the two halves of the compilation story: the
//! good-iteration executor (`interp`) runs the *source* AST; here we run
//! the *precompiled* tree (trigger flags, Z-epidemics, gated merged
//! rulesets) the way the clock hierarchy would schedule it — each leaf in
//! time-path order for `c ln n` rounds, inner loops repeated `Θ(log n)`
//! times — and check the protocols still work.

use pp_engine::counts::SparseCountPopulation;
use pp_engine::rng::SimRng;
use pp_engine::sim::{run_rounds, Simulator};
use pp_lang::ast::{build, Program, Thread};
use pp_lang::precompile::{precompile, CompiledTree, TreeNode};
use pp_rules::{FlagProtocol, Guard, VarSet};

/// Executes one pass of the tree (the outermost repeat's body) on a dense
/// count vector: leaves run for `max(c, 16)·ln n` rounds each; loops repeat
/// `⌈c ln n⌉` times.
///
/// The floor of 16 realizes the paper's "high probability may be made
/// arbitrarily high through a careful choice of c": merged leaves dilute
/// each rule by the leaf's rule count (uniform selection), and an epidemic
/// needs ≈ 2·#rules·ln n rounds to both grow and collect stragglers, so
/// the window constant must dominate that product.
fn run_tree_pass(tree: &CompiledTree, counts: &mut Vec<u64>, rng: &mut SimRng) {
    let n: u64 = counts.iter().sum();
    let ln_n = (n as f64).ln();
    fn run_nodes(
        nodes: &[TreeNode],
        vars: &VarSet,
        counts: &mut Vec<u64>,
        rng: &mut SimRng,
        ln_n: f64,
    ) {
        for node in nodes {
            match node {
                TreeNode::Leaf { c, ruleset } => {
                    if ruleset.is_empty() {
                        continue;
                    }
                    let protocol = FlagProtocol::new(vars.clone(), ruleset.clone(), "leaf");
                    let mut pop = SparseCountPopulation::from_dense(&protocol, counts);
                    run_rounds(&mut pop, f64::from(*c).max(16.0) * ln_n, rng, &mut []);
                    *counts = pop.counts();
                }
                TreeNode::Loop { c, children } => {
                    let times = (f64::from(*c) * ln_n).ceil().max(1.0) as u64;
                    for _ in 0..times {
                        run_nodes(children, vars, counts, rng, ln_n);
                    }
                }
            }
        }
    }
    run_nodes(&tree.root, &tree.vars, counts, rng, ln_n);
}

fn count_where(counts: &[u64], guard: &Guard) -> u64 {
    counts
        .iter()
        .enumerate()
        .filter(|&(s, &c)| c > 0 && guard.eval(s as u32))
        .map(|(_, &c)| c)
        .sum()
}

#[test]
fn precompiled_assignment_tree_copies_flags() {
    // Y := X, lowered to trigger leaves, must copy X to Y for every agent.
    let mut vars = VarSet::new();
    let x = vars.add("X");
    let y = vars.add("Y");
    let program = Program {
        name: "copy".into(),
        vars,
        inputs: vec![x],
        outputs: vec![y],
        init: vec![],
        derived_init: vec![],
        threads: vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(y, Guard::var(x))],
        }],
    };
    let tree = precompile(&program);
    let mut counts = vec![0u64; tree.vars.num_states()];
    counts[x.mask() as usize] = 100;
    counts[0] = 200;
    let mut rng = SimRng::seed_from(1);
    run_tree_pass(&tree, &mut counts, &mut rng);
    let correct = count_where(
        &counts,
        &Guard::var(x)
            .and(Guard::var(y))
            .or(Guard::not_var(x).and(Guard::not_var(y))),
    );
    assert_eq!(correct, 300, "every agent's Y mirrors its X");
}

#[test]
fn precompiled_branch_tree_respects_existence() {
    // if exists (A): Y := on else: Z := on — run the lowered tree in both
    // worlds and check the right flag fires.
    let mut vars = VarSet::new();
    let a = vars.add("A");
    let y = vars.add("Y");
    let z = vars.add("Z");
    let program = Program {
        name: "branch".into(),
        vars,
        inputs: vec![a],
        outputs: vec![y, z],
        init: vec![],
        derived_init: vec![],
        threads: vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::if_else(
                Guard::var(a),
                vec![build::assign(y, Guard::any())],
                vec![build::assign(z, Guard::any())],
            )],
        }],
    };
    let tree = precompile(&program);

    // World 1: A present.
    let mut counts = vec![0u64; tree.vars.num_states()];
    counts[a.mask() as usize] = 3;
    counts[0] = 197;
    let mut rng = SimRng::seed_from(2);
    run_tree_pass(&tree, &mut counts, &mut rng);
    assert_eq!(count_where(&counts, &Guard::var(y)), 200, "then-branch ran");
    assert_eq!(count_where(&counts, &Guard::var(z)), 0, "else did not");

    // World 2: A absent.
    let mut counts = vec![0u64; tree.vars.num_states()];
    counts[0] = 200;
    let mut rng = SimRng::seed_from(3);
    run_tree_pass(&tree, &mut counts, &mut rng);
    assert_eq!(count_where(&counts, &Guard::var(y)), 0, "then did not run");
    assert_eq!(count_where(&counts, &Guard::var(z)), 200, "else-branch ran");
}

#[test]
fn precompiled_leader_election_tree_halves_and_converges() {
    // The full lowered LeaderElection tree, scheduled ideally, must elect a
    // unique leader within O(log n) passes — same as the AST executor.
    let mut vars = VarSet::new();
    let l = vars.add("L");
    let d = vars.add("D");
    let f = vars.add("F");
    let body = vec![
        build::if_exists(
            Guard::var(l),
            vec![
                build::assign_coin(f),
                build::assign(d, Guard::var(l).and(Guard::var(f))),
            ],
        ),
        build::if_else(
            Guard::var(d),
            vec![build::assign(l, Guard::var(d))],
            vec![build::if_else(
                Guard::var(l),
                vec![],
                vec![build::assign(l, Guard::any())],
            )],
        ),
    ];
    let program = Program {
        name: "LeaderElection".into(),
        vars,
        inputs: vec![],
        outputs: vec![l],
        init: vec![(l, true)],
        derived_init: vec![],
        threads: vec![Thread::Structured {
            name: "Main".into(),
            body,
        }],
    };
    let tree = precompile(&program);
    let mut counts = vec![0u64; tree.vars.num_states()];
    counts[l.mask() as usize] = 300;
    let mut rng = SimRng::seed_from(4);
    let mut converged_at = None;
    for pass in 1..=200 {
        run_tree_pass(&tree, &mut counts, &mut rng);
        let leaders = count_where(&counts, &Guard::var(l));
        assert!(leaders >= 1, "leaders must never vanish (pass {pass})");
        if leaders == 1 {
            converged_at = Some(pass);
            break;
        }
    }
    let pass = converged_at.expect("unique leader within 200 passes");
    assert!(pass < 80, "O(log n) passes expected, got {pass}");
    // Stability under continued execution.
    for _ in 0..10 {
        run_tree_pass(&tree, &mut counts, &mut rng);
        assert_eq!(count_where(&counts, &Guard::var(l)), 1);
    }
}
