//! Seeded property test: `parse_program(render(p)) == p` for framework
//! programs.
//!
//! Generates random programs in the renderer-stable subset — guards are
//! left-associated chains matching the parser's associativity, `init`
//! entries follow variable declaration order (the order the renderer
//! emits), `derived_init` is empty (it has no concrete syntax), and every
//! thread body is non-empty — then asserts the paper-style pseudocode the
//! renderer produces parses back to a structurally equal program.

use pp_lang::ast::{build, Instr, Program, Thread};
use pp_lang::parse::parse_program;
use pp_rules::{Guard, Rule, Ruleset, Var, VarSet};

/// Minimal xorshift64* PRNG so the test needs no dependencies and every
/// run explores the same cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_atom(rng: &mut Rng, vars: &[Var], depth: u32) -> Guard {
    match rng.below(8) {
        0 if depth > 0 => gen_guard(rng, vars, depth - 1).not(),
        1 => Guard::any(),
        r => {
            let v = vars[(r as usize) % vars.len()];
            if rng.below(2) == 0 {
                Guard::var(v)
            } else {
                Guard::not_var(v)
            }
        }
    }
}

/// A renderer-stable guard: a left-assoc `|`-chain of left-assoc
/// `&`-chains of atoms.
fn gen_guard(rng: &mut Rng, vars: &[Var], depth: u32) -> Guard {
    let n_or = 1 + rng.below(2);
    let mut guard: Option<Guard> = None;
    for _ in 0..n_or {
        let n_and = 1 + rng.below(3);
        let mut conj: Option<Guard> = None;
        for _ in 0..n_and {
            let atom = gen_atom(rng, vars, depth);
            conj = Some(match conj {
                None => atom,
                Some(g) => g.and(atom),
            });
        }
        let conj = conj.expect("n_and >= 1");
        guard = Some(match guard {
            None => conj,
            Some(g) => g.or(conj),
        });
    }
    guard.expect("n_or >= 1")
}

fn gen_post(rng: &mut Rng, vars: &[Var]) -> Guard {
    let mut literals = Vec::new();
    for &v in vars {
        match rng.below(4) {
            0 => literals.push((v, true)),
            1 => literals.push((v, false)),
            _ => {}
        }
    }
    Guard::all_of(&literals)
}

fn gen_ruleset(rng: &mut Rng, vars: &[Var]) -> Ruleset {
    let rules = (0..1 + rng.below(3))
        .map(|_| {
            let rule = Rule::new(
                gen_guard(rng, vars, 1),
                gen_guard(rng, vars, 1),
                &gen_post(rng, vars),
                &gen_post(rng, vars),
            )
            .expect("generated post-conditions are conjunctions of literals");
            if rng.below(4) == 0 {
                rule.with_probability(0.5)
            } else {
                rule
            }
        })
        .collect();
    Ruleset::from_rules(rules)
}

fn gen_instrs(rng: &mut Rng, vars: &[Var], depth: u32) -> Vec<Instr> {
    let count = 1 + rng.below(2);
    (0..count).map(|_| gen_instr(rng, vars, depth)).collect()
}

fn gen_instr(rng: &mut Rng, vars: &[Var], depth: u32) -> Instr {
    let v = vars[rng.below(vars.len() as u64) as usize];
    match rng.below(if depth > 0 { 5 } else { 2 }) {
        0 => build::assign(v, gen_guard(rng, vars, 1)),
        1 => build::assign_coin(v),
        2 => {
            let cond = gen_guard(rng, vars, 1);
            let then_branch = gen_instrs(rng, vars, depth - 1);
            if rng.below(2) == 0 {
                build::if_exists(cond, then_branch)
            } else {
                build::if_else(cond, then_branch, gen_instrs(rng, vars, depth - 1))
            }
        }
        3 => build::repeat_log(1 + rng.below(9) as u32, gen_instrs(rng, vars, depth - 1)),
        _ => build::execute(1 + rng.below(9) as u32, gen_ruleset(rng, vars)),
    }
}

fn gen_program(rng: &mut Rng, case: usize) -> Program {
    let names = ["A", "B", "C", "D", "E"];
    let count = 2 + rng.below(4) as usize;
    let mut vars = VarSet::new();
    let var_list: Vec<Var> = names[..count].iter().map(|n| vars.add(n)).collect();

    // Tags and init in declaration order — the order the renderer emits.
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut init = Vec::new();
    for &v in &var_list {
        if rng.below(4) == 0 {
            inputs.push(v);
        } else if rng.below(4) == 0 {
            outputs.push(v);
        }
        match rng.below(4) {
            0 => init.push((v, true)),
            1 => init.push((v, false)),
            _ => {}
        }
    }

    let threads = (0..1 + rng.below(2))
        .map(|i| {
            if rng.below(3) == 0 {
                Thread::Raw {
                    name: format!("Raw{i}"),
                    ruleset: gen_ruleset(rng, &var_list),
                }
            } else {
                Thread::Structured {
                    name: format!("Main{i}"),
                    body: gen_instrs(rng, &var_list, 2),
                }
            }
        })
        .collect();

    Program {
        name: format!("Generated{case}"),
        vars,
        inputs,
        outputs,
        init,
        derived_init: Vec::new(),
        threads,
    }
}

#[test]
fn random_programs_roundtrip_through_render() {
    let mut rng = Rng(0xA076_1D64_78BD_642F);
    for case in 0..150 {
        let program = gen_program(&mut rng, case);
        let rendered = program.render();
        let reparsed = parse_program(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: render failed to re-parse: {e}\n{rendered}"));
        assert_eq!(reparsed, program, "case {case}:\n{rendered}");
    }
}

#[test]
fn shipped_protocol_files_roundtrip_through_render() {
    // The renderer's output for a parsed file must re-parse to the same
    // program (render is not byte-identical to the file, but it is a
    // fixed point up to one render/parse cycle).
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .join("protocols");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("protocols dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("pp") {
            continue;
        }
        checked += 1;
        let text = std::fs::read_to_string(&path).expect("read protocol file");
        let program = parse_program(&text).expect("shipped file parses");
        let reparsed = parse_program(&program.render())
            .unwrap_or_else(|e| panic!("{}: render failed to re-parse: {e}", path.display()));
        assert_eq!(reparsed, program, "{}", path.display());
    }
    assert!(checked >= 2, "expected shipped .pp files, found {checked}");
}
