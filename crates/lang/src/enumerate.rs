//! Reachable-state enumeration: the compiler backend that lifts the
//! precompile flag budget (PP207).
//!
//! `precompile` packs every declared variable *plus* one lowering flag per
//! assignment / `if exists` into a single `u32` bitmask — a budget of
//! [`pp_rules::MAX_VARS`] bits that the paper's richer constructions (plurality over
//! `l` colors, semilinear predicates) blow through. But those protocols
//! live in *few reachable states*: starting from the declared initial
//! supports, the analyzer's sound `{0, ≥1}`-support closure
//! ([`pp_rules::reach`]) bounds which packed states can ever occur, and the
//! bound is typically orders of magnitude below `2^bits`.
//!
//! This backend enumerates exactly those live states, interns them into
//! dense `u32` ids (ascending packed order, so ids are deterministic), and
//! lowers every scheduler-visible ruleset into per-rule dense tables
//! ([`RuleTableProtocol`]) that run on the count backends'
//! collision-batching paths. Program structure (assignments, branches,
//! loops) is executed by [`EnumExecutor`] under exactly the good-iteration
//! semantics of [`crate::interp::Executor`], with identical time
//! accounting — only the state space is id-compressed, never the dynamics:
//!
//! * scheduler runs use the same LCM-composed rulesets and the same
//!   uniform-rule draw distribution (dead rules are stripped from the
//!   tables but keep their draw share as no-ops);
//! * assignments remap whole id-count vectors through the same
//!   formula/coin semantics (binomial coin splits included);
//! * `if exists`, `repeat ≥ c ln n`, and overhead charging are unchanged.
//!
//! Soundness: the closure *over-approximates* support, so every state any
//! real run can produce has an id — enumeration can mark extra states live
//! (wasting a table row) but can never miss one. After enumeration,
//! [`verify_enumeration`] re-runs the analyzer's ruleset checks (PP101
//! guard satisfiability, PP105 rule liveness, closure closedness) against
//! the *enumerated* state set, so compiler and analyzer certify each
//! other; any disagreement aborts compilation with
//! [`EnumError::Verification`] instead of silently miscompiling. When
//! enumeration itself is infeasible (too many inputs to enumerate supports,
//! or a live set beyond [`ENUM_STATE_CAP`]) the caller falls back to the
//! interpreter.

use crate::ast::{AssignValue, Instr, Program, Thread};
use crate::interp::ExecOptions;
use pp_engine::counts::{CountPopulation, SparseCountPopulation};
use pp_engine::rng::SimRng;
use pp_engine::ruletable::{RuleTable, RuleTableProtocol, NO_RULE};
use pp_engine::sim::{run_rounds, Simulator};
use pp_rules::reach::{support_closure, AbstractAssign, SupportModel};
use pp_rules::{Guard, Ruleset, Var, VarSet};
use std::collections::HashMap;
use std::fmt;

/// Maximum declared-input count for enumerating initial supports (each
/// subset of inputs is one initial state; `2^k` subsets).
pub const INPUT_ENUM_CAP: usize = 12;

/// Maximum live-state count the enumeration backend will compile. Beyond
/// this the per-rule tables (and the dense count backend underneath) stop
/// paying for themselves and the interpreter takes over.
pub const ENUM_STATE_CAP: usize = 1 << 16;

/// Why enumeration was not (or could not be) performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// More than [`INPUT_ENUM_CAP`] declared inputs: the initial supports
    /// cannot be enumerated.
    TooManyInputs(usize),
    /// The support closure declined the state space (defensive; cannot
    /// happen for programs within the [`pp_rules::MAX_VARS`] packing budget).
    ClosureSkipped,
    /// The live-state count exceeds [`ENUM_STATE_CAP`].
    TooManyStates(usize),
    /// Post-enumeration verification found the enumerated set and the
    /// ruleset checks in disagreement (a compiler bug, never a user error).
    Verification(String),
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyInputs(n) => write!(
                f,
                "{n} declared inputs exceed the {INPUT_ENUM_CAP}-input support-enumeration cap"
            ),
            Self::ClosureSkipped => write!(
                f,
                "the support closure was skipped (state space beyond the reachability cap)"
            ),
            Self::TooManyStates(n) => write!(
                f,
                "{n} live states exceed the {ENUM_STATE_CAP}-state enumeration cap"
            ),
            Self::Verification(msg) => write!(f, "enumeration verification failed: {msg}"),
        }
    }
}

/// The declared initial supports: one packed state per subset of the input
/// variables (every agent carries some subset of the inputs), with `init`
/// and `derived_init` applied. `None` when there are too many inputs to
/// enumerate.
#[must_use]
pub fn initial_supports(program: &Program) -> Option<Vec<u32>> {
    if program.inputs.len() > INPUT_ENUM_CAP {
        return None;
    }
    let mut supports = Vec::with_capacity(1 << program.inputs.len());
    for bits in 0u32..(1 << program.inputs.len()) {
        let on: Vec<Var> = program
            .inputs
            .iter()
            .enumerate()
            .filter(|&(i, _)| bits & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        supports.push(program.initial_state(&on));
    }
    Some(supports)
}

/// Every population-wide assignment in the program, for the support
/// abstraction (both branches of every `if exists` are included — the
/// abstraction must cover all control paths).
#[must_use]
pub fn collect_assigns(program: &Program) -> Vec<AbstractAssign> {
    fn walk(instrs: &[Instr], out: &mut Vec<AbstractAssign>) {
        for instr in instrs {
            match instr {
                Instr::Assign { var, value } => out.push(match value {
                    AssignValue::Formula(g) => AbstractAssign::Formula(*var, g.clone()),
                    AssignValue::RandomBit => AbstractAssign::Coin(*var),
                }),
                Instr::IfExists {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                Instr::RepeatLog { body, .. } => walk(body, out),
                Instr::Execute { .. } => {}
            }
        }
    }
    let mut out = Vec::new();
    for (_, body) in program.structured_threads() {
        walk(body, &mut out);
    }
    out
}

/// Every ruleset the scheduler can ever run: raw threads plus `execute`
/// sites of every structured thread, in pre-order.
#[must_use]
pub fn collect_rulesets(program: &Program) -> Vec<&Ruleset> {
    fn walk<'a>(instrs: &'a [Instr], out: &mut Vec<&'a Ruleset>) {
        for instr in instrs {
            match instr {
                Instr::Execute { ruleset, .. } => out.push(ruleset),
                Instr::IfExists {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                Instr::RepeatLog { body, .. } => walk(body, out),
                Instr::Assign { .. } => {}
            }
        }
    }
    let mut out = Vec::new();
    for thread in &program.threads {
        match thread {
            Thread::Raw { ruleset, .. } => out.push(ruleset),
            Thread::Structured { body, .. } => walk(body, &mut out),
        }
    }
    out
}

/// The full support model for a program: every ruleset, every assignment,
/// and the enumerated initial supports. `None` when the inputs exceed
/// [`INPUT_ENUM_CAP`]. This is the single model both the lint reachability
/// checks and the enumeration compiler run on.
#[must_use]
pub fn support_model(program: &Program) -> Option<SupportModel<'_>> {
    Some(SupportModel {
        rulesets: collect_rulesets(program),
        assigns: collect_assigns(program),
        initial: initial_supports(program)?,
    })
}

/// Enumeration statistics, computed without building the full tables.
#[derive(Debug, Clone)]
pub struct EnumPlan {
    /// The live packed states, ascending (dense id `i` ↦ `live[i]`).
    pub live: Vec<u32>,
    /// Source-level rules that can never fire (the analyzer's PP105 set).
    pub dead_rules: usize,
    /// Source-level rule count across all rulesets.
    pub total_rules: usize,
}

impl EnumPlan {
    /// Compression ratio `2^bits / live`.
    #[must_use]
    pub fn compression(&self, program: &Program) -> f64 {
        (1u64 << program.vars.len()) as f64 / self.live.len().max(1) as f64
    }
}

/// Computes the enumeration plan for a program: runs the support closure
/// and counts dead rules. Errs when enumeration is infeasible.
///
/// # Errors
///
/// [`EnumError::TooManyInputs`], [`EnumError::ClosureSkipped`], or
/// [`EnumError::TooManyStates`].
pub fn plan(program: &Program) -> Result<EnumPlan, EnumError> {
    let model = support_model(program).ok_or(EnumError::TooManyInputs(program.inputs.len()))?;
    let closure = support_closure(&program.vars, &model);
    if closure.skipped {
        return Err(EnumError::ClosureSkipped);
    }
    if closure.live.len() > ENUM_STATE_CAP {
        return Err(EnumError::TooManyStates(closure.live.len()));
    }
    let mut dead_rules = 0usize;
    let mut total_rules = 0usize;
    for ruleset in &model.rulesets {
        for rule in ruleset.rules() {
            total_rules += 1;
            if !(closure.any_satisfies(&rule.guard_a) && closure.any_satisfies(&rule.guard_b)) {
                dead_rules += 1;
            }
        }
    }
    Ok(EnumPlan {
        live: closure.live,
        dead_rules,
        total_rules,
    })
}

/// The closed-loop verification hook: re-runs the analyzer's ruleset
/// checks against the *enumerated* state set.
///
/// For every rule of every ruleset, evaluated state-by-state over `live`
/// (independently of the closure's internal bookkeeping):
///
/// * **PP101 / PP105 re-check** — a rule is live iff both its guards have
///   a witness in the enumerated set; a live rule must then have *every*
///   update target inside the set (closure closedness). A live rule whose
///   update escapes the set means the compiler would drop probability
///   mass — the exact miscompilation this hook exists to catch.
/// * **assignment closedness** — every assignment maps every enumerated
///   state (both coin outcomes) back into the set.
///
/// # Errors
///
/// A human-readable description of the first disagreement found.
pub fn verify_enumeration(
    vars: &VarSet,
    live: &[u32],
    rulesets: &[&Ruleset],
    assigns: &[AbstractAssign],
) -> Result<(), String> {
    let contains = |t: u32| live.binary_search(&t).is_ok();
    for ruleset in rulesets {
        for rule in ruleset.rules() {
            let any_a = live.iter().any(|&s| rule.guard_a.eval(s));
            let any_b = live.iter().any(|&s| rule.guard_b.eval(s));
            if !(any_a && any_b) {
                // Dead over the enumerated set (PP105): firing requires a
                // witness on each side, so there is nothing to close over.
                continue;
            }
            for &s in live {
                if rule.guard_a.eval(s) && !contains(rule.update_a.apply(s)) {
                    return Err(format!(
                        "live rule `{}` maps enumerated state {} outside the enumerated set \
                         (initiator side)",
                        rule.render(vars),
                        vars.render_state(s)
                    ));
                }
                if rule.guard_b.eval(s) && !contains(rule.update_b.apply(s)) {
                    return Err(format!(
                        "live rule `{}` maps enumerated state {} outside the enumerated set \
                         (responder side)",
                        rule.render(vars),
                        vars.render_state(s)
                    ));
                }
            }
        }
    }
    for assign in assigns {
        for &s in live {
            let targets = match assign {
                AbstractAssign::Formula(v, g) => vec![v.assign(s, g.eval(s))],
                AbstractAssign::Coin(v) => vec![v.assign(s, true), v.assign(s, false)],
            };
            for t in targets {
                if !contains(t) {
                    return Err(format!(
                        "assignment maps enumerated state {} to {} outside the enumerated set",
                        vars.render_state(s),
                        vars.render_state(t)
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Lowers a (composed) ruleset into a [`RuleTableProtocol`] over the
/// enumerated states, stripping dead rules into no-op draw shares.
///
/// # Errors
///
/// [`EnumError::Verification`] when a live rule's update maps an
/// enumerated state outside the set (the set is not closed — a compiler
/// bug, caught rather than miscompiled).
pub fn lower_ruleset(
    vars: &VarSet,
    composed: &Ruleset,
    live: &[u32],
    name: &str,
) -> Result<RuleTableProtocol, EnumError> {
    let q = live.len();
    let id_of = |t: u32| live.binary_search(&t).ok();
    // LCM composition replicates each thread's rules up to the thread-size
    // LCM, so a composed ruleset is mostly copies. Lower each distinct rule
    // once and point every copy's draw slot at the shared table — the draw
    // distribution is unchanged while lowering work and table memory drop
    // by the replication factor.
    let mut distinct: Vec<&pp_rules::Rule> = Vec::new();
    let mut slot_of_rule: Vec<usize> = Vec::with_capacity(composed.len());
    for rule in composed.rules() {
        let idx = distinct.iter().position(|d| *d == rule).unwrap_or_else(|| {
            distinct.push(rule);
            distinct.len() - 1
        });
        slot_of_rule.push(idx);
    }
    let mut tables = Vec::new();
    // Table id for each distinct rule, or NO_RULE once proven dead.
    let mut table_of: Vec<u32> = Vec::with_capacity(distinct.len());
    for rule in &distinct {
        let match_a: Vec<bool> = live.iter().map(|&s| rule.guard_a.eval(s)).collect();
        let match_b: Vec<bool> = live.iter().map(|&s| rule.guard_b.eval(s)).collect();
        if !(match_a.iter().any(|&m| m) && match_b.iter().any(|&m| m)) {
            // Dead rule: no witness on one side, so it can never fire on
            // any configuration supported inside the enumerated set. Strip
            // the table; its draw slots stay behind as no-ops.
            table_of.push(NO_RULE);
            continue;
        }
        let mut apply_a = vec![0u32; q];
        let mut apply_b = vec![0u32; q];
        for (i, &s) in live.iter().enumerate() {
            apply_a[i] = if match_a[i] {
                let t = rule.update_a.apply(s);
                id_of(t).ok_or_else(|| escaped(vars, rule, s, t))? as u32
            } else {
                i as u32
            };
            apply_b[i] = if match_b[i] {
                let t = rule.update_b.apply(s);
                id_of(t).ok_or_else(|| escaped(vars, rule, s, t))? as u32
            } else {
                i as u32
            };
        }
        table_of.push(tables.len() as u32);
        tables.push(RuleTable {
            match_a,
            match_b,
            apply_a,
            apply_b,
            probability: rule.probability,
        });
    }
    let draw: Vec<u32> = slot_of_rule.iter().map(|&d| table_of[d]).collect();
    let labels: Vec<String> = live.iter().map(|&s| vars.render_state(s)).collect();
    Ok(RuleTableProtocol::with_draw(name, labels, tables, draw))
}

fn escaped(vars: &VarSet, rule: &pp_rules::Rule, s: u32, t: u32) -> EnumError {
    EnumError::Verification(format!(
        "rule `{}` maps live state {} to {} outside the enumerated set",
        rule.render(vars),
        vars.render_state(s),
        vars.render_state(t)
    ))
}

/// Executes a [`Program`] under good-iteration semantics on the enumerated
/// state space — the drop-in compiled counterpart of
/// [`crate::interp::Executor`].
///
/// Counts are indexed by dense live-state id; scheduler runs drive a
/// [`CountPopulation`] over `q = live` states (with full collision-epoch
/// batching via the tabulated [`RuleTableProtocol`]) instead of the
/// interpreter's `2^bits` nominal space.
///
/// # Examples
///
/// ```
/// use pp_lang::ast::{build, Program, Thread};
/// use pp_lang::enumerate::EnumExecutor;
/// use pp_rules::{Guard, VarSet};
///
/// // A one-instruction program: everyone sets Y := on.
/// let mut vars = VarSet::new();
/// let y = vars.add("Y");
/// let program = Program {
///     name: "set-y".into(),
///     vars,
///     inputs: vec![],
///     outputs: vec![y],
///     init: vec![],
///     derived_init: vec![],
///     threads: vec![Thread::Structured {
///         name: "Main".into(),
///         body: vec![build::assign(y, Guard::any())],
///     }],
/// };
/// let mut exec = EnumExecutor::new(&program, &[(vec![], 100)], 42).unwrap();
/// exec.run_iteration();
/// assert_eq!(exec.count_where(&Guard::var(y)), 100);
/// ```
pub struct EnumExecutor<'p> {
    program: &'p Program,
    live: Vec<u32>,
    dead_rules: usize,
    total_rules: usize,
    n: u64,
    counts: Vec<u64>,
    rng: SimRng,
    rounds: f64,
    iterations: u64,
    opts: ExecOptions,
    ln_n: f64,
    /// Raw threads composed, lowered once (runs during overhead charging).
    overhead: Option<RuleTableProtocol>,
    /// Per-`execute`-site lowered protocols (site ruleset LCM-composed
    /// with the raw threads), keyed by the ruleset's address inside the
    /// borrowed program — stable for the executor's lifetime.
    sites: HashMap<usize, RuleTableProtocol>,
}

impl<'p> EnumExecutor<'p> {
    /// Creates an enumeration-compiled executor. `groups` lists `(input
    /// variables on, agent count)` pairs describing the initial population.
    ///
    /// # Errors
    ///
    /// Any [`EnumError`]: enumeration infeasible, or post-enumeration
    /// verification failed.
    ///
    /// # Panics
    ///
    /// Panics if the total population is smaller than 2 or an input group
    /// names a non-input variable (as [`crate::interp::Executor::new`]).
    pub fn new(
        program: &'p Program,
        groups: &[(Vec<Var>, u64)],
        seed: u64,
    ) -> Result<Self, EnumError> {
        Self::with_options(program, groups, seed, ExecOptions::default())
    }

    /// Creates an enumeration-compiled executor with explicit options.
    ///
    /// # Errors
    ///
    /// As [`EnumExecutor::new`].
    ///
    /// # Panics
    ///
    /// As [`EnumExecutor::new`].
    pub fn with_options(
        program: &'p Program,
        groups: &[(Vec<Var>, u64)],
        seed: u64,
        opts: ExecOptions,
    ) -> Result<Self, EnumError> {
        let plan = plan(program)?;
        // Closed-loop verification: the compiler and analyzer certify each
        // other before any table is trusted.
        let model = support_model(program).ok_or(EnumError::TooManyInputs(program.inputs.len()))?;
        verify_enumeration(&program.vars, &plan.live, &model.rulesets, &model.assigns)
            .map_err(EnumError::Verification)?;

        let raws: Vec<Ruleset> = program.raw_threads().map(|(_, rs)| rs.clone()).collect();
        let raw = if raws.is_empty() {
            None
        } else {
            Some(Ruleset::compose(&raws))
        };
        let overhead = match &raw {
            Some(r) if !r.is_empty() => Some(lower_ruleset(
                &program.vars,
                r,
                &plan.live,
                &format!("{}/raw", program.name),
            )?),
            _ => None,
        };
        let mut sites = HashMap::new();
        for ruleset in collect_rulesets(program) {
            // Raw threads reappear here; only `execute` sites need a
            // composed protocol, keyed by site address.
            if program
                .raw_threads()
                .any(|(_, rs)| std::ptr::eq(rs, ruleset))
            {
                continue;
            }
            let composed = match &raw {
                Some(r) => Ruleset::compose(&[ruleset.clone(), r.clone()]),
                None => ruleset.clone(),
            };
            if composed.is_empty() {
                continue; // nothing to run; overhead-only site
            }
            let lowered = lower_ruleset(
                &program.vars,
                &composed,
                &plan.live,
                &format!("{}/enum", program.name),
            )?;
            sites.insert(std::ptr::from_ref(ruleset) as usize, lowered);
        }

        let mut counts = vec![0u64; plan.live.len()];
        let mut n = 0u64;
        for (vars_on, count) in groups {
            let packed = program.initial_state(vars_on);
            let id = plan
                .live
                .binary_search(&packed)
                .expect("initial states are enumerated by construction");
            counts[id] += count;
            n += count;
        }
        assert!(n >= 2, "population must have at least 2 agents");
        Ok(Self {
            program,
            dead_rules: plan.dead_rules,
            total_rules: plan.total_rules,
            live: plan.live,
            n,
            counts,
            rng: SimRng::seed_from(seed),
            rounds: 0.0,
            iterations: 0,
            opts,
            ln_n: (n as f64).ln(),
            overhead,
            sites,
        })
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The enumerated packed states (dense id `i` ↦ `live()[i]`).
    #[must_use]
    pub fn live_states(&self) -> &[u32] {
        &self.live
    }

    /// Source-level rules proved dead (stripped from the lowered tables).
    #[must_use]
    pub fn dead_rules(&self) -> usize {
        self.dead_rules
    }

    /// Source-level rule count across all rulesets.
    #[must_use]
    pub fn total_rules(&self) -> usize {
        self.total_rules
    }

    /// Replaces the executor options.
    pub fn set_options(&mut self, opts: ExecOptions) {
        self.opts = opts;
    }

    /// Parallel time consumed so far, in rounds.
    #[must_use]
    pub fn rounds(&self) -> f64 {
        self.rounds
    }

    /// Completed iterations of the outermost `repeat:` loops.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// State counts, indexed by dense live-state id.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of agents satisfying a guard.
    #[must_use]
    pub fn count_where(&self, guard: &Guard) -> u64 {
        self.counts
            .iter()
            .zip(&self.live)
            .filter(|&(&c, &s)| c > 0 && guard.eval(s))
            .map(|(&c, _)| c)
            .sum()
    }

    /// Runs one good iteration: a full pass of every structured thread's
    /// body (threads executed in declaration order), with raw threads
    /// running throughout.
    pub fn run_iteration(&mut self) {
        let program = self.program;
        for thread in &program.threads {
            if let Thread::Structured { body, .. } = thread {
                self.exec_block(body);
            }
        }
        self.iterations += 1;
    }

    /// Runs good iterations until `stop` returns true, up to
    /// `max_iterations`. Returns the number of iterations executed when
    /// `stop` first held, or `None` on timeout.
    pub fn run_until(
        &mut self,
        max_iterations: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> Option<u64> {
        if stop(self) {
            return Some(self.iterations);
        }
        for _ in 0..max_iterations {
            self.run_iteration();
            if stop(self) {
                return Some(self.iterations);
            }
        }
        None
    }

    fn exec_block(&mut self, instrs: &'p [Instr]) {
        for instr in instrs {
            self.exec_instr(instr);
        }
    }

    fn exec_instr(&mut self, instr: &'p Instr) {
        match instr {
            Instr::Assign { var, value } => {
                self.exec_assign(*var, value);
                self.charge_overhead(2);
            }
            Instr::IfExists {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut exists = self.count_where(cond) > 0;
                if self.opts.exists_failure > 0.0 && self.rng.chance(self.opts.exists_failure) {
                    exists = !exists;
                }
                self.charge_overhead(2);
                if exists {
                    self.exec_block(then_branch);
                } else {
                    self.exec_block(else_branch);
                }
            }
            Instr::RepeatLog { c, body } => {
                let times = (*c as f64 * self.ln_n).ceil().max(1.0) as u64;
                for _ in 0..times {
                    self.exec_block(body);
                }
            }
            Instr::Execute { c, ruleset } => {
                let duration = *c as f64 * self.ln_n;
                self.rounds += duration;
                let key = std::ptr::from_ref(ruleset) as usize;
                if let Some(protocol) = self.sites.get(&key) {
                    drive(&mut self.counts, &mut self.rng, protocol, duration);
                }
            }
        }
    }

    /// Applies an assignment to every agent (modulo injected failures),
    /// remapping the id-indexed count vector.
    fn exec_assign(&mut self, var: Var, value: &AssignValue) {
        let q = self.counts.len();
        let id_of = |t: u32| {
            self.live
                .binary_search(&t)
                .expect("verified: assignments are closed over the enumerated set")
        };
        let mut next = vec![0u64; q];
        for id in 0..q {
            let c = self.counts[id];
            if c == 0 {
                continue;
            }
            let s = self.live[id];
            let (applied, skipped) = if self.opts.assign_failure > 0.0 {
                let skipped = self.rng.binomial(c, self.opts.assign_failure);
                (c - skipped, skipped)
            } else {
                (c, 0)
            };
            next[id] += skipped;
            match value {
                AssignValue::Formula(g) => {
                    next[id_of(var.assign(s, g.eval(s)))] += applied;
                }
                AssignValue::RandomBit => {
                    let ones = self.rng.binomial(applied, 0.5);
                    next[id_of(var.assign(s, true))] += ones;
                    next[id_of(var.assign(s, false))] += applied - ones;
                }
            }
        }
        self.counts = next;
    }

    /// Charges `loops · overhead_c · ln n` rounds of parallel time, during
    /// which raw threads continue to run.
    fn charge_overhead(&mut self, loops: u32) {
        let duration = (loops * self.opts.overhead_c) as f64 * self.ln_n;
        self.rounds += duration;
        if let Some(protocol) = &self.overhead {
            drive(&mut self.counts, &mut self.rng, protocol, duration);
        }
    }
}

/// State-count threshold above which scheduler runs use the sparse count
/// backend — the same heuristic as the interpreter's `SPARSE_THRESHOLD`:
/// a population of `n` agents occupies at most `n` distinct ids, so for
/// wide live sets iterating only the occupied ids beats dense scans.
const SPARSE_THRESHOLD: usize = 4096;

/// Runs a lowered protocol over the id-count vector for `duration` rounds
/// on the count backend (dense, or sparse above [`SPARSE_THRESHOLD`]).
fn drive(counts: &mut Vec<u64>, rng: &mut SimRng, protocol: &RuleTableProtocol, duration: f64) {
    if counts.len() > SPARSE_THRESHOLD {
        let mut pop = SparseCountPopulation::from_dense(protocol, counts.as_slice());
        run_rounds(&mut pop, duration, rng, &mut []);
        *counts = pop.counts();
    } else {
        let mut pop = CountPopulation::from_counts(protocol, counts.as_slice());
        run_rounds(&mut pop, duration, rng, &mut []);
        *counts = pop.counts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build;
    use crate::interp::Executor;
    use pp_rules::parse::parse_ruleset;

    fn program_with(vars: VarSet, inputs: Vec<Var>, threads: Vec<Thread>) -> Program {
        Program {
            name: "test".into(),
            vars,
            inputs,
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads,
        }
    }

    #[test]
    fn enumeration_interns_only_live_states() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(I) + (!I) -> (I) + (I)", &mut vars).unwrap();
        let i = vars.get("I").unwrap();
        // Pad with unused variables: nominal space 2^6, live space 2.
        for k in 0..4 {
            vars.add(&format!("U{k}"));
        }
        let p = program_with(
            vars,
            vec![i],
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::execute(8, rs)],
            }],
        );
        let plan = plan(&p).unwrap();
        assert_eq!(plan.live, vec![0, i.mask()]);
        assert_eq!(plan.dead_rules, 0);
        let exec = EnumExecutor::new(&p, &[(vec![i], 1), (vec![], 99)], 1).unwrap();
        assert_eq!(exec.counts().len(), 2);
        assert_eq!(exec.live_states(), &[0, i.mask()]);
    }

    #[test]
    fn compiled_epidemic_matches_interpreter_outcome() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(I) + (!I) -> (I) + (I)", &mut vars).unwrap();
        let i = vars.get("I").unwrap();
        let p = program_with(
            vars,
            vec![i],
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::execute(8, rs)],
            }],
        );
        let groups = [(vec![i], 1u64), (vec![], 999)];
        let mut compiled = EnumExecutor::new(&p, &groups, 5).unwrap();
        compiled.run_iteration();
        // 8 ln 1000 ≈ 55 rounds: the epidemic completes w.h.p.
        assert_eq!(compiled.count_where(&Guard::var(i)), 1000);
        let mut interp = Executor::new(&p, &groups, 5);
        interp.run_iteration();
        assert_eq!(
            compiled.rounds(),
            interp.rounds(),
            "identical time accounting"
        );
    }

    #[test]
    fn deterministic_assignments_match_interpreter_exactly() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let y = vars.add("Y");
        let z = vars.add("Z");
        let body = vec![
            build::assign(y, Guard::var(a)),
            build::if_else(Guard::var(y), vec![build::assign(z, Guard::any())], vec![]),
        ];
        let p = program_with(
            vars,
            vec![a],
            vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        );
        let groups = [(vec![a], 30u64), (vec![], 70)];
        let mut compiled = EnumExecutor::new(&p, &groups, 9).unwrap();
        compiled.run_iteration();
        let mut interp = Executor::new(&p, &groups, 9);
        interp.run_iteration();
        for g in [Guard::var(a), Guard::var(y), Guard::var(z)] {
            assert_eq!(compiled.count_where(&g), interp.count_where(&g));
        }
    }

    #[test]
    fn coin_assignment_splits_population() {
        let mut vars = VarSet::new();
        let f = vars.add("F");
        let p = program_with(
            vars,
            vec![],
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::assign_coin(f)],
            }],
        );
        let mut exec = EnumExecutor::new(&p, &[(vec![], 10_000)], 2).unwrap();
        exec.run_iteration();
        let ones = exec.count_where(&Guard::var(f));
        assert!((4_500..5_500).contains(&ones), "coin split {ones}");
    }

    #[test]
    fn dead_rules_are_counted_and_stripped() {
        let mut vars = VarSet::new();
        let rs =
            parse_ruleset("(A) + (.) -> (Y) + (.)\n(B) + (.) -> (!Y) + (.)", &mut vars).unwrap();
        let a = vars.get("A").unwrap();
        // B never occurs: the second rule is dead.
        let p = program_with(
            vars,
            vec![a],
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::execute(4, rs)],
            }],
        );
        let plan = plan(&p).unwrap();
        assert_eq!(plan.dead_rules, 1);
        assert_eq!(plan.total_rules, 2);
        let exec = EnumExecutor::new(&p, &[(vec![a], 10), (vec![], 10)], 3).unwrap();
        assert_eq!(exec.dead_rules(), 1);
    }

    #[test]
    fn verification_catches_a_truncated_state_set() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(I) + (!I) -> (I) + (I)", &mut vars).unwrap();
        let i = vars.get("I").unwrap();
        let full = vec![0u32, i.mask()];
        let rulesets = vec![&rs];
        assert!(verify_enumeration(&vars, &full, &rulesets, &[]).is_ok());
        // Drop the {I} state: the epidemic rule's update now escapes.
        let truncated = vec![0u32];
        let err = verify_enumeration(&vars, &truncated, &rulesets, &[]);
        // With only {} live, neither guard side has an I-witness, so the
        // rule is dead over the truncated set — but add an I-witness back
        // without its successor and the escape is caught.
        assert!(err.is_ok(), "rule is dead over {{}} alone");
        let mut vars2 = VarSet::new();
        let rs2 = parse_ruleset("(A) + (.) -> (B) + (.)", &mut vars2).unwrap();
        let a2 = vars2.get("A").unwrap();
        let missing_target = vec![0u32, a2.mask()];
        let err2 = verify_enumeration(&vars2, &missing_target, &[&rs2], &[]).unwrap_err();
        assert!(err2.contains("outside the enumerated set"), "{err2}");
    }

    #[test]
    fn infeasible_inputs_are_reported() {
        let mut vars = VarSet::new();
        let inputs: Vec<Var> = (0..(INPUT_ENUM_CAP + 1))
            .map(|k| vars.add(&format!("I{k}")))
            .collect();
        let p = program_with(
            vars,
            inputs,
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![],
            }],
        );
        assert_eq!(
            plan(&p).unwrap_err(),
            EnumError::TooManyInputs(INPUT_ENUM_CAP + 1)
        );
    }

    #[test]
    fn raw_threads_run_during_overhead() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(R) + (R) -> (R) + (!R)", &mut vars).unwrap();
        let r = vars.get("R").unwrap();
        let a = vars.add("A");
        let p = Program {
            name: "t".into(),
            inputs: vec![r],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![
                Thread::Structured {
                    name: "Main".into(),
                    body: vec![
                        build::assign(a, Guard::any()),
                        build::assign(a, Guard::any()),
                    ],
                },
                Thread::Raw {
                    name: "ReduceSets".into(),
                    ruleset: rs,
                },
            ],
            vars,
        };
        let mut exec = EnumExecutor::new(&p, &[(vec![r], 200)], 7).unwrap();
        for _ in 0..30 {
            exec.run_iteration();
        }
        let remaining = exec.count_where(&Guard::var(r));
        assert!(remaining < 200, "raw thread reduced R: {remaining}");
        assert!(remaining >= 1, "raw fratricide keeps one R");
    }
}
