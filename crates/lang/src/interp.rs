//! The good-iteration executor: runs framework programs under the
//! synchronization semantics that Theorem 2.4 guarantees (Definitions
//! 2.2–2.3), with idealized clocks.
//!
//! The paper separates two concerns: (a) the protocol-level analysis of
//! programs *assuming* good iterations (Sections 3 and 6), and (b) the
//! clock hierarchy that realizes good iterations w.h.p. (Section 5). This
//! executor implements exactly the good-iteration semantics, so protocol
//! behavior (Theorems 3.1, 3.2, 6.1–6.4) can be measured in isolation from
//! clock dynamics:
//!
//! * `execute for ≥ c ln n rounds` runs the ruleset — composed with all raw
//!   threads — under the exact fair scheduler for `c ln n` rounds;
//! * assignments and `if exists` evaluations reach their expected outcome
//!   (with an optional failure-injection knob for ablations) and are
//!   charged the parallel time their compiled form costs (two `c ln n`
//!   loops each, per Section 4), during which raw threads keep running;
//! * `repeat ≥ c ln n times` performs exactly `⌈c ln n⌉` passes.
//!
//! Time accounting therefore reproduces the paper's round counts:
//! `O((log n)^{c+1})` rounds per iteration for loop depth `c`.

use crate::ast::{AssignValue, Instr, Program, Thread};
use pp_engine::counts::{CountPopulation, SparseCountPopulation};
use pp_engine::rng::SimRng;
use pp_engine::sim::{run_rounds, Simulator};
use pp_rules::{FlagProtocol, Guard, Ruleset, Var};

/// Above this many nominal states the executor's scheduler runs switch to
/// the sparse count backend (reachable configurations occupy only a
/// handful of states, so dense Fenwick construction dominates otherwise).
const SPARSE_THRESHOLD: usize = 4096;

/// Tuning and fault-injection options for the executor.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Probability that an `if exists` evaluation returns the wrong branch
    /// (ablation knob; 0 = exact, the good-iteration default).
    pub exists_failure: f64,
    /// Probability that an assignment skips a given agent (ablation knob;
    /// 0 = exact).
    pub assign_failure: f64,
    /// The `c` used to charge time for the lowered form of assignments and
    /// condition evaluations (each costs `2 · c ln n` rounds in Section 4's
    /// compilation).
    pub overhead_c: u32,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            exists_failure: 0.0,
            assign_failure: 0.0,
            overhead_c: 1,
        }
    }
}

/// Executes a [`Program`] over a population of `n` agents under
/// good-iteration semantics.
///
/// # Examples
///
/// ```
/// use pp_lang::ast::{build, Program, Thread};
/// use pp_lang::interp::Executor;
/// use pp_rules::{Guard, VarSet};
///
/// // A one-instruction program: everyone sets Y := on.
/// let mut vars = VarSet::new();
/// let y = vars.add("Y");
/// let program = Program {
///     name: "set-y".into(),
///     vars,
///     inputs: vec![],
///     outputs: vec![y],
///     init: vec![],
///     derived_init: vec![],
///     threads: vec![Thread::Structured {
///         name: "Main".into(),
///         body: vec![build::assign(y, Guard::any())],
///     }],
/// };
/// let mut exec = Executor::new(&program, &[(vec![], 100)], 42);
/// exec.run_iteration();
/// assert_eq!(exec.count_where(&Guard::var(y)), 100);
/// ```
pub struct Executor<'p> {
    program: &'p Program,
    n: u64,
    counts: Vec<u64>,
    rng: SimRng,
    rounds: f64,
    iterations: u64,
    raw: Option<Ruleset>,
    opts: ExecOptions,
    ln_n: f64,
}

impl<'p> Executor<'p> {
    /// Creates an executor. `groups` lists `(input variables on, agent
    /// count)` pairs describing the initial population.
    ///
    /// # Panics
    ///
    /// Panics if the total population is smaller than 2 or an input group
    /// names a non-input variable.
    #[must_use]
    pub fn new(program: &'p Program, groups: &[(Vec<Var>, u64)], seed: u64) -> Self {
        Self::with_options(program, groups, seed, ExecOptions::default())
    }

    /// Creates an executor with explicit options.
    ///
    /// # Panics
    ///
    /// As [`Executor::new`].
    #[must_use]
    pub fn with_options(
        program: &'p Program,
        groups: &[(Vec<Var>, u64)],
        seed: u64,
        opts: ExecOptions,
    ) -> Self {
        let mut counts = vec![0u64; program.vars.num_states()];
        let mut n = 0u64;
        for (vars_on, count) in groups {
            counts[program.initial_state(vars_on) as usize] += count;
            n += count;
        }
        assert!(n >= 2, "population must have at least 2 agents");
        let raws: Vec<Ruleset> = program.raw_threads().map(|(_, rs)| rs.clone()).collect();
        let raw = if raws.is_empty() {
            None
        } else {
            Some(Ruleset::compose(&raws))
        };
        Self {
            program,
            n,
            counts,
            rng: SimRng::seed_from(seed),
            rounds: 0.0,
            iterations: 0,
            raw,
            opts,
            ln_n: (n as f64).ln(),
        }
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Replaces the executor options (e.g. to stop fault injection after a
    /// warm-up phase).
    pub fn set_options(&mut self, opts: ExecOptions) {
        self.opts = opts;
    }

    /// Parallel time consumed so far, in rounds.
    #[must_use]
    pub fn rounds(&self) -> f64 {
        self.rounds
    }

    /// Completed iterations of the outermost `repeat:` loops.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// State counts, indexed by packed variable mask.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of agents satisfying a guard.
    #[must_use]
    pub fn count_where(&self, guard: &Guard) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(s, &c)| c > 0 && guard.eval(s as u32))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Runs one good iteration: a full pass of every structured thread's
    /// body (threads executed in declaration order), with raw threads
    /// running throughout.
    pub fn run_iteration(&mut self) {
        let bodies: Vec<Vec<Instr>> = self
            .program
            .threads
            .iter()
            .filter_map(|t| match t {
                Thread::Structured { body, .. } => Some(body.clone()),
                Thread::Raw { .. } => None,
            })
            .collect();
        for body in &bodies {
            self.exec_block(body);
        }
        self.iterations += 1;
    }

    /// Runs good iterations until `stop` returns true, up to
    /// `max_iterations`. Returns the number of iterations executed when
    /// `stop` first held, or `None` on timeout.
    pub fn run_until(
        &mut self,
        max_iterations: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> Option<u64> {
        if stop(self) {
            return Some(self.iterations);
        }
        for _ in 0..max_iterations {
            self.run_iteration();
            if stop(self) {
                return Some(self.iterations);
            }
        }
        None
    }

    fn exec_block(&mut self, instrs: &[Instr]) {
        for instr in instrs {
            self.exec_instr(instr);
        }
    }

    fn exec_instr(&mut self, instr: &Instr) {
        match instr {
            Instr::Assign { var, value } => {
                self.exec_assign(*var, value);
                self.charge_overhead(2);
            }
            Instr::IfExists {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut exists = self.count_where(cond) > 0;
                if self.opts.exists_failure > 0.0 && self.rng.chance(self.opts.exists_failure) {
                    exists = !exists;
                }
                self.charge_overhead(2);
                if exists {
                    self.exec_block(then_branch);
                } else {
                    self.exec_block(else_branch);
                }
            }
            Instr::RepeatLog { c, body } => {
                let times = (*c as f64 * self.ln_n).ceil().max(1.0) as u64;
                for _ in 0..times {
                    self.exec_block(body);
                }
            }
            Instr::Execute { c, ruleset } => {
                let duration = *c as f64 * self.ln_n;
                self.run_scheduler(Some(ruleset), duration);
            }
        }
    }

    /// Applies an assignment to every agent (modulo injected failures).
    fn exec_assign(&mut self, var: Var, value: &AssignValue) {
        let k = self.counts.len();
        let mut next = vec![0u64; k];
        for s in 0..k {
            let c = self.counts[s];
            if c == 0 {
                continue;
            }
            let (applied, skipped) = if self.opts.assign_failure > 0.0 {
                let skipped = self.rng.binomial(c, self.opts.assign_failure);
                (c - skipped, skipped)
            } else {
                (c, 0)
            };
            next[s] += skipped;
            match value {
                AssignValue::Formula(g) => {
                    let target = var.assign(s as u32, g.eval(s as u32)) as usize;
                    next[target] += applied;
                }
                AssignValue::RandomBit => {
                    let ones = self.rng.binomial(applied, 0.5);
                    next[var.assign(s as u32, true) as usize] += ones;
                    next[var.assign(s as u32, false) as usize] += applied - ones;
                }
            }
        }
        self.counts = next;
    }

    /// Charges `loops · overhead_c · ln n` rounds of parallel time, during
    /// which raw threads continue to run.
    fn charge_overhead(&mut self, loops: u32) {
        let duration = (loops * self.opts.overhead_c) as f64 * self.ln_n;
        self.run_scheduler(None, duration);
    }

    /// Runs `ruleset` (if any) composed with the raw threads under the fair
    /// scheduler for `duration` rounds.
    fn run_scheduler(&mut self, ruleset: Option<&Ruleset>, duration: f64) {
        self.rounds += duration;
        let combined = match (ruleset, &self.raw) {
            (Some(rs), Some(raw)) => Ruleset::compose(&[rs.clone(), raw.clone()]),
            (Some(rs), None) => rs.clone(),
            (None, Some(raw)) => raw.clone(),
            (None, None) => return,
        };
        if combined.is_empty() {
            return;
        }
        let protocol = FlagProtocol::new(self.program.vars.clone(), combined, "exec");
        if self.counts.len() > SPARSE_THRESHOLD {
            let mut pop = SparseCountPopulation::from_dense(&protocol, &self.counts);
            run_rounds(&mut pop, duration, &mut self.rng, &mut []);
            self.counts = pop.counts();
        } else {
            let mut pop = CountPopulation::from_counts(&protocol, &self.counts);
            run_rounds(&mut pop, duration, &mut self.rng, &mut []);
            self.counts = pop.counts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use pp_rules::parse::parse_ruleset;
    use pp_rules::VarSet;

    fn program_with(vars: VarSet, threads: Vec<Thread>) -> Program {
        Program {
            name: "test".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads,
        }
    }

    #[test]
    fn assign_formula_updates_all_agents() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let b = vars.add("B");
        let p = Program {
            name: "t".into(),
            inputs: vec![a],
            outputs: vec![b],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![assign(b, Guard::var(a))],
            }],
            vars: p_vars(&vars),
        };
        let mut exec = Executor::new(&p, &[(vec![a], 30), (vec![], 70)], 1);
        exec.run_iteration();
        assert_eq!(exec.count_where(&Guard::var(b)), 30);
        assert_eq!(exec.count_where(&Guard::var(a)), 30, "input untouched");
    }

    fn p_vars(v: &VarSet) -> VarSet {
        v.clone()
    }

    #[test]
    fn assign_coin_splits_population() {
        let mut vars = VarSet::new();
        let f = vars.add("F");
        let p = program_with(
            vars,
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![assign_coin(f)],
            }],
        );
        let mut exec = Executor::new(&p, &[(vec![], 10_000)], 2);
        exec.run_iteration();
        let ones = exec.count_where(&Guard::var(f));
        assert!((4_500..5_500).contains(&ones), "coin split {ones}");
    }

    #[test]
    fn if_exists_branches_correctly() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let y = vars.add("Y");
        let z = vars.add("Z");
        let body = vec![if_else(
            Guard::var(a),
            vec![assign(y, Guard::any())],
            vec![assign(z, Guard::any())],
        )];
        let p = Program {
            name: "t".into(),
            inputs: vec![a],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
            vars,
        };
        // One agent with A: then-branch.
        let mut exec = Executor::new(&p, &[(vec![a], 1), (vec![], 99)], 3);
        exec.run_iteration();
        assert_eq!(exec.count_where(&Guard::var(y)), 100);
        assert_eq!(exec.count_where(&Guard::var(z)), 0);
        // No agent with A: else-branch.
        let mut exec = Executor::new(&p, &[(vec![], 100)], 4);
        exec.run_iteration();
        assert_eq!(exec.count_where(&Guard::var(y)), 0);
        assert_eq!(exec.count_where(&Guard::var(z)), 100);
    }

    #[test]
    fn execute_runs_ruleset_for_logarithmic_rounds() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(I) + (!I) -> (I) + (I)", &mut vars).unwrap();
        let i = vars.get("I").unwrap();
        let p = Program {
            name: "t".into(),
            inputs: vec![i],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![execute(8, rs)],
            }],
            vars,
        };
        let mut exec = Executor::new(&p, &[(vec![i], 1), (vec![], 999)], 5);
        exec.run_iteration();
        // 8 ln 1000 ≈ 55 rounds: the one-way epidemic completes w.h.p.
        assert_eq!(exec.count_where(&Guard::var(i)), 1000);
        assert!(exec.rounds() > 50.0);
    }

    #[test]
    fn repeat_log_multiplies_executions() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        // Body charges overhead each pass; count passes via rounds.
        let p = program_with(
            vars,
            vec![Thread::Structured {
                name: "Main".into(),
                body: vec![repeat_log(2, vec![assign(a, Guard::any())])],
            }],
        );
        let mut exec = Executor::new(&p, &[(vec![], 100)], 6);
        exec.run_iteration();
        let ln_n = 100f64.ln();
        let expected_passes = (2.0 * ln_n).ceil();
        // Each assign charges 2 · ln n rounds.
        let expected_rounds = expected_passes * 2.0 * ln_n;
        assert!(
            (exec.rounds() - expected_rounds).abs() < 1e-6,
            "rounds {} vs {expected_rounds}",
            exec.rounds()
        );
    }

    #[test]
    fn raw_threads_run_during_overhead() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(R) + (R) -> (R) + (!R)", &mut vars).unwrap();
        let r = vars.get("R").unwrap();
        let a = vars.add("A");
        let p = Program {
            name: "t".into(),
            inputs: vec![r],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![
                Thread::Structured {
                    name: "Main".into(),
                    // Pure overhead, no explicit execute.
                    body: vec![assign(a, Guard::any()), assign(a, Guard::any())],
                },
                Thread::Raw {
                    name: "ReduceSets".into(),
                    ruleset: rs,
                },
            ],
            vars,
        };
        let mut exec = Executor::new(&p, &[(vec![r], 200)], 7);
        for _ in 0..30 {
            exec.run_iteration();
        }
        let remaining = exec.count_where(&Guard::var(r));
        assert!(remaining < 200, "raw thread reduced R: {remaining}");
        assert!(remaining >= 1, "raw fratricide keeps one R");
    }

    #[test]
    fn exists_failure_injection_flips_branches() {
        let mut vars = VarSet::new();
        let y = vars.add("Y");
        let body = vec![if_else(
            // Condition is never true (no agent has Y initially and no one
            // sets it in the then-branch).
            Guard::var(y),
            vec![],
            vec![assign(y, Guard::any())],
        )];
        let p = program_with(
            vars,
            vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        );
        let opts = ExecOptions {
            exists_failure: 1.0,
            ..ExecOptions::default()
        };
        let mut exec = Executor::with_options(&p, &[(vec![], 50)], 8, opts);
        exec.run_iteration();
        // With guaranteed misdetection the then-branch ran: Y stays off.
        assert_eq!(exec.count_where(&Guard::var(y)), 0);
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(L) + (L) -> (L) + (!L)", &mut vars).unwrap();
        let l = vars.get("L").unwrap();
        let p = Program {
            name: "t".into(),
            inputs: vec![l],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![
                Thread::Structured {
                    name: "Main".into(),
                    body: vec![execute(2, Ruleset::new())],
                },
                Thread::Raw {
                    name: "Fratricide".into(),
                    ruleset: rs,
                },
            ],
            vars,
        };
        let mut exec = Executor::new(&p, &[(vec![l], 64)], 9);
        let it = exec.run_until(500, |e| e.count_where(&Guard::var(l)) == 1);
        assert!(it.is_some(), "fratricide converges");
    }
}
