//! # pp-lang — the programming framework of *Population Protocols Are Fast*
//!
//! Sections 2–4 of the paper define a small imperative language for
//! formulating population protocols — `repeat` loops bounded by `c ln n`,
//! `if exists (Σ)` branching on population-wide conditions, `X := Σ`
//! assignments, and embedded rulesets — together with a compilation scheme
//! that turns any such program into a plain `O(1)`-state protocol whose
//! agents stay synchronized through the phase-clock hierarchy.
//!
//! This crate implements all of it:
//!
//! * [`ast`] — the language (programs, threads, instructions) with a
//!   builder API and paper-style pretty-printing;
//! * [`interp`] — the *good-iteration executor*: runs programs under the
//!   synchronization semantics Theorem 2.4 guarantees, with exact time
//!   accounting and optional fault injection. This is how the paper itself
//!   analyzes its protocols (Sections 3 and 6) — separately from the
//!   clocks that realize the semantics;
//! * [`parse`] — a parser for the paper-style pseudocode, round-tripping
//!   with [`ast::Program::render`], so protocols can live in `.pp` files;
//! * [`precompile`](mod@precompile) — Section 4's lowering: assignments to trigger-flag
//!   rulesets, branches to epidemic-evaluated `Z`-flags with leaf-wise
//!   ruleset compaction, and padding to a complete `w_max`-ary tree;
//! * [`compile`] — Section 5.4's deployment: the tree's leaves become
//!   time-path-filtered rules (`Π_τ ∧ Σ`) over the clock hierarchy,
//!   yielding one self-contained population protocol with **no global
//!   coordination whatsoever** (validated end-to-end in experiment E13);
//! * [`enumerate`] — the analyzer-guided backend for programs beyond the
//!   precompile flag budget: enumerates the reachable-support states,
//!   interns them into dense ids, and lowers rulesets to count-backend
//!   tables ([`pp_engine::ruletable::RuleTableProtocol`]), executed under
//!   the same good-iteration semantics by [`enumerate::EnumExecutor`].
//!
//! # Examples
//!
//! ```
//! use pp_lang::ast::{build, Program, Thread};
//! use pp_lang::interp::Executor;
//! use pp_rules::{Guard, VarSet};
//!
//! let mut vars = VarSet::new();
//! let x = vars.add("X");
//! let y = vars.add("Y");
//! let program = Program {
//!     name: "copy".into(),
//!     vars,
//!     inputs: vec![x],
//!     outputs: vec![y],
//!     init: vec![],
//!     derived_init: vec![],
//!     threads: vec![Thread::Structured {
//!         name: "Main".into(),
//!         body: vec![build::assign(y, Guard::var(x))],
//!     }],
//! };
//! let mut exec = Executor::new(&program, &[(vec![x], 30), (vec![], 70)], 1);
//! exec.run_iteration();
//! assert_eq!(exec.count_where(&Guard::var(y)), 30);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ast;
pub mod compile;
pub mod enumerate;
pub mod interp;
pub mod parse;
pub mod precompile;

pub use ast::{AssignValue, Instr, Program, Thread};
pub use compile::{BackendChoice, CompiledAgent, CompiledProtocol};
pub use enumerate::{EnumExecutor, EnumPlan};
pub use interp::{ExecOptions, Executor};
pub use precompile::{precompile, CompiledTree, TreeNode};
