//! Parser for the paper-style protocol pseudocode.
//!
//! Accepts the same syntax [`crate::ast::Program::render`] produces — and
//! the paper's listings, modulo ASCII operators — so protocols can live in
//! plain-text files:
//!
//! ```text
//! def protocol LeaderElection
//!   var L <- on as output, D, F:
//!   thread Main:
//!     repeat:
//!       if exists (L):
//!         F := {on, off} chosen uniformly at random
//!         D := L & F
//!       if exists (D):
//!         L := D
//!       else:
//!         if exists (L):
//!         else:
//!           L := on
//! ```
//!
//! Structure is indentation-based (spaces only). A thread whose body is a
//! single `execute ruleset:` is a raw thread; otherwise the body must be a
//! single `repeat:` loop (the implicit outermost repeat). Supported
//! instructions: assignment (`X := Σ` and the coin form), `if exists (Σ):`
//! with optional `else:`, `repeat >= c ln n times:`, and
//! `execute for >= c ln n rounds ruleset:` followed by `> rule` lines.
//! Guards use the rule DSL of [`pp_rules::parse`]; `on`/`off` are accepted
//! as the constant formulas.

use crate::ast::{build, AssignValue, Instr, Program, Thread};
use pp_rules::parse::{parse_rule, ParseRuleError};
use pp_rules::{Guard, Ruleset, VarSet};
use std::fmt;

pub use pp_rules::parse::{ParseErrorKind, Span};

/// A program parse error with a source position and the offending line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseProgramError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column of the error (1 when only the line is known).
    pub col: usize,
    /// Error category, carried through from embedded rule parses so
    /// tooling can distinguish post-condition well-formedness from syntax.
    pub kind: ParseErrorKind,
    /// Description of the problem.
    pub message: String,
    /// The offending source line (comments stripped; empty when unknown).
    pub source: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)?;
        if !self.source.is_empty() {
            let caret_pad: String = " ".repeat(self.col.saturating_sub(1));
            write!(f, "\n  | {}\n  | {caret_pad}^", self.source)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseProgramError {}

fn err(line: usize, message: impl Into<String>) -> ParseProgramError {
    ParseProgramError {
        line,
        col: 1,
        kind: ParseErrorKind::Syntax,
        message: message.into(),
        source: String::new(),
    }
}

/// The source line as displayed: original indentation plus content
/// (comments already stripped by the lexer).
fn source_of(line: &Line) -> String {
    format!("{}{}", " ".repeat(line.indent), line.text)
}

/// Maps a rule parse error on a `>`-prefixed ruleset line back to program
/// source coordinates. `e.col` is 1-based within `line.text`, which the
/// lexer has already stripped of its indentation.
fn from_rule_err(line: &Line, e: ParseRuleError) -> ParseProgramError {
    ParseProgramError {
        line: line.number,
        col: line.indent + e.col,
        kind: e.kind,
        message: e.message,
        source: source_of(line),
    }
}

/// Source spans for a parsed [`Program`], parallel to its structure.
///
/// Produced by [`parse_program_spanned`] so diagnostics can point back at
/// the file. Instruction spans are in *pre-order* (an instruction before
/// the instructions nested in its branches or body), matching a pre-order
/// walk of each structured thread's body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramSpans {
    /// Span of the `var ...:` declaration line.
    pub decl: Span,
    /// Per-thread spans, in program order.
    pub threads: Vec<ThreadSpans>,
}

/// Spans for one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadSpans {
    /// Span of the `thread NAME:` header line.
    pub header: Span,
    /// Pre-order spans of the structured body's instructions (empty for
    /// raw threads).
    pub instrs: Vec<InstrSpan>,
    /// Spans of a raw thread's rules, parallel to its ruleset (empty for
    /// structured threads).
    pub rules: Vec<Span>,
}

/// Span of one instruction, plus its rules when it is an `execute`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrSpan {
    /// The instruction's own line (header line for block instructions).
    pub span: Span,
    /// For `execute … ruleset:` instructions: spans of the rules, parallel
    /// to the embedded ruleset. Empty otherwise.
    pub rules: Vec<Span>,
}

/// One significant source line: indentation depth + content.
struct Line {
    number: usize,
    indent: usize,
    text: String,
}

fn lex_lines(source: &str) -> Result<Vec<Line>, ParseProgramError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if without_comment.trim().is_empty() {
            continue;
        }
        if without_comment.contains('\t') {
            return Err(err(number, "tabs are not allowed; indent with spaces"));
        }
        let indent = without_comment.len() - without_comment.trim_start().len();
        out.push(Line {
            number,
            indent,
            text: without_comment.trim().to_string(),
        });
    }
    Ok(out)
}

/// Parses a guard, accepting `on`/`off` for the constants.
///
/// `base_col` is the 1-based column where `text` begins in `line`, so
/// errors inside the formula point at the formula, not the synthetic rule
/// the formula is wrapped in.
fn parse_guard(
    text: &str,
    vars: &mut VarSet,
    line: &Line,
    base_col: usize,
) -> Result<Guard, ParseProgramError> {
    let trimmed = text.trim();
    match trimmed {
        "on" => return Ok(Guard::any()),
        "off" => return Ok(Guard::any().not()),
        _ => {}
    }
    let lead = text.chars().count() - text.trim_start().chars().count();
    let base = base_col + lead;
    // Reuse the rule parser by wrapping the formula as a guard position.
    // In the synthetic rule the formula starts at column 2 (after `(`);
    // clamp errors past the formula (e.g. unbalanced parens) to its end.
    let rule_text = format!("({trimmed}) + (.) -> (.) + (.)");
    let rule = parse_rule(&rule_text, vars).map_err(|e| {
        let glen = trimmed.chars().count();
        let off = e.col.saturating_sub(2).min(glen.saturating_sub(1));
        ParseProgramError {
            line: line.number,
            col: base + off,
            kind: e.kind,
            message: e.message,
            source: source_of(line),
        }
    })?;
    Ok(rule.guard_a)
}

/// Span of a lexed line's content (indentation excluded).
fn line_span(line: &Line) -> Span {
    Span::new(line.number, line.indent + 1, line.text.chars().count())
}

/// Span of the rule text on a `>`-prefixed ruleset line.
fn rule_span(line: &Line) -> Span {
    let rest = line.text.trim_start_matches(['▷', '>']).trim_start();
    let prefix = line.text.chars().count() - rest.chars().count();
    Span::new(line.number, line.indent + prefix + 1, rest.chars().count())
}

struct ProgramParser<'a> {
    lines: &'a [Line],
    pos: usize,
    vars: VarSet,
    /// Pre-order instruction spans for the structured thread currently
    /// being parsed.
    instr_spans: Vec<InstrSpan>,
}

impl<'a> ProgramParser<'a> {
    fn peek(&self) -> Option<&'a Line> {
        self.lines.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Line> {
        let line = self.lines.get(self.pos);
        if line.is_some() {
            self.pos += 1;
        }
        line
    }

    /// Parses instructions at exactly `indent`, stopping at a dedent.
    fn parse_block(&mut self, indent: usize) -> Result<Vec<Instr>, ParseProgramError> {
        let mut out = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(err(line.number, "unexpected extra indentation"));
            }
            out.push(self.parse_instr(indent)?);
        }
        Ok(out)
    }

    fn parse_instr(&mut self, indent: usize) -> Result<Instr, ParseProgramError> {
        let line = self.next().expect("peeked");
        let number = line.number;
        let text = line.text.as_str();
        // Record this instruction's span now so nested blocks land after
        // it, giving a pre-order span sequence.
        let span_idx = self.instr_spans.len();
        self.instr_spans.push(InstrSpan {
            span: line_span(line),
            rules: Vec::new(),
        });

        if let Some(rest) = text.strip_prefix("if exists (") {
            let cond_text = rest
                .strip_suffix("):")
                .ok_or_else(|| err(number, "expected `if exists (...):`"))?;
            let cond_col = line.indent + "if exists (".len() + 1;
            let cond = parse_guard(cond_text, &mut self.vars, line, cond_col)?;
            let then_branch = self.parse_block(indent + 2)?;
            let mut else_branch = Vec::new();
            if let Some(next) = self.peek() {
                if next.indent == indent && next.text == "else:" {
                    self.next();
                    else_branch = self.parse_block(indent + 2)?;
                }
            }
            return Ok(build::if_else(cond, then_branch, else_branch));
        }

        if text == "else:" {
            return Err(err(number, "`else:` without a matching `if exists`"));
        }

        if let Some(rest) = text.strip_prefix("repeat >= ") {
            let rest = rest
                .strip_suffix(" ln n times:")
                .ok_or_else(|| err(number, "expected `repeat >= c ln n times:`"))?;
            let c: u32 = rest
                .trim()
                .parse()
                .map_err(|_| err(number, format!("bad loop constant {rest:?}")))?;
            let body = self.parse_block(indent + 2)?;
            return Ok(build::repeat_log(c, body));
        }

        if let Some(rest) = text.strip_prefix("execute for >= ") {
            let rest = rest
                .strip_suffix(" ln n rounds ruleset:")
                .ok_or_else(|| err(number, "expected `execute for >= c ln n rounds ruleset:`"))?;
            let c: u32 = rest
                .trim()
                .parse()
                .map_err(|_| err(number, format!("bad duration constant {rest:?}")))?;
            let (ruleset, rule_spans) = self.parse_ruleset(indent + 2)?;
            self.instr_spans[span_idx].rules = rule_spans;
            return Ok(build::execute(c, ruleset));
        }

        if let Some((lhs, rhs)) = text.split_once(":=") {
            let name = lhs.trim();
            if name.is_empty() || !name.chars().next().is_some_and(char::is_alphabetic) {
                return Err(err(number, format!("bad assignment target {name:?}")));
            }
            let var = match self.vars.get(name) {
                Some(v) => v,
                None => self.vars.add(name),
            };
            let rhs_off = lhs.chars().count() + ":=".len();
            let lead = rhs.chars().count() - rhs.trim_start().chars().count();
            let rhs_col = line.indent + rhs_off + lead + 1;
            let rhs = rhs.trim();
            if rhs.starts_with("{on, off}") || rhs.starts_with("{on,off}") {
                return Ok(Instr::Assign {
                    var,
                    value: AssignValue::RandomBit,
                });
            }
            let formula = parse_guard(rhs, &mut self.vars, line, rhs_col)?;
            return Ok(build::assign(var, formula));
        }

        Err(err(number, format!("unrecognized instruction {text:?}")))
    }

    /// Parses `> rule` lines at exactly `indent`, with their spans.
    fn parse_ruleset(&mut self, indent: usize) -> Result<(Ruleset, Vec<Span>), ParseProgramError> {
        let mut ruleset = Ruleset::new();
        let mut spans = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent != indent || !line.text.starts_with('>') {
                break;
            }
            let line = self.next().expect("peeked");
            let rule =
                parse_rule(&line.text, &mut self.vars).map_err(|e| from_rule_err(line, e))?;
            ruleset.push(rule);
            spans.push(rule_span(line));
        }
        Ok((ruleset, spans))
    }
}

/// Parses a complete protocol definition.
///
/// # Errors
///
/// Returns a [`ParseProgramError`] naming the offending source line.
pub fn parse_program(source: &str) -> Result<Program, ParseProgramError> {
    parse_program_spanned(source).map(|(program, _)| program)
}

/// Parses a complete protocol definition, also returning source [`Span`]s
/// for its declarations, instructions, and rules.
///
/// This is the entry point for diagnostic tooling (`pp-analyze`,
/// `ppsim lint`): the returned [`ProgramSpans`] mirror the program's
/// structure so analyses can point back at the file.
///
/// # Errors
///
/// Returns a [`ParseProgramError`] naming the offending source line.
pub fn parse_program_spanned(source: &str) -> Result<(Program, ProgramSpans), ParseProgramError> {
    let lines = lex_lines(source)?;
    let mut parser = ProgramParser {
        lines: &lines,
        pos: 0,
        vars: VarSet::new(),
        instr_spans: Vec::new(),
    };
    let mut spans = ProgramSpans::default();

    // Header: `def protocol NAME`.
    let header = parser
        .next()
        .ok_or_else(|| err(0, "empty protocol definition"))?;
    let name = header
        .text
        .strip_prefix("def protocol ")
        .ok_or_else(|| err(header.number, "expected `def protocol NAME`"))?
        .trim()
        .to_string();

    // Declarations: `var A <- on as output, B as input, C:`.
    let decl_line = parser
        .next()
        .ok_or_else(|| err(header.number, "expected a `var ...:` declaration line"))?;
    let decls = decl_line
        .text
        .strip_prefix("var ")
        .and_then(|t| t.strip_suffix(':'))
        .ok_or_else(|| err(decl_line.number, "expected `var <declarations>:`"))?;
    spans.decl = line_span(decl_line);
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut init = Vec::new();
    for decl in decls.split(',') {
        let decl = decl.trim();
        if decl.is_empty() {
            continue;
        }
        let mut rest = decl;
        // Name is the first token.
        let name_end = rest.find(' ').unwrap_or(rest.len());
        let var_name = &rest[..name_end];
        let var = parser.vars.add(var_name);
        rest = rest[name_end..].trim();
        if let Some(after) = rest.strip_prefix("<- ") {
            let (value, tail) = after.split_at(after.find(' ').unwrap_or(after.len()));
            match value {
                "on" => init.push((var, true)),
                "off" => init.push((var, false)),
                other => {
                    return Err(err(
                        decl_line.number,
                        format!("bad initial value {other:?} for {var_name}"),
                    ))
                }
            }
            rest = tail.trim();
        }
        if let Some(tags) = rest.strip_prefix("as ") {
            for tag in tags.split_whitespace() {
                match tag {
                    "input" => inputs.push(var),
                    "output" => outputs.push(var),
                    other => {
                        return Err(err(
                            decl_line.number,
                            format!("unknown declaration tag {other:?}"),
                        ))
                    }
                }
            }
        } else if !rest.is_empty() {
            return Err(err(
                decl_line.number,
                format!("unexpected trailing declaration text {rest:?}"),
            ));
        }
    }

    // Threads.
    let mut threads = Vec::new();
    while let Some(line) = parser.peek() {
        if line.indent != 2 {
            return Err(err(line.number, "expected a `thread NAME:` at indent 2"));
        }
        let line = parser.next().expect("peeked");
        let thread_name = line
            .text
            .strip_prefix("thread ")
            .and_then(|t| t.strip_suffix(':'))
            .ok_or_else(|| err(line.number, "expected `thread NAME:`"))?
            .trim()
            .to_string();
        let mut thread_spans = ThreadSpans {
            header: line_span(line),
            ..ThreadSpans::default()
        };
        let body_head = parser
            .peek()
            .ok_or_else(|| err(line.number, "thread body missing"))?;
        if body_head.text == "execute ruleset:" {
            parser.next();
            let (ruleset, rule_spans) = parser.parse_ruleset(6)?;
            thread_spans.rules = rule_spans;
            threads.push(Thread::Raw {
                name: thread_name,
                ruleset,
            });
        } else if body_head.text == "repeat:" {
            parser.next();
            parser.instr_spans.clear();
            let body = parser.parse_block(6)?;
            thread_spans.instrs = std::mem::take(&mut parser.instr_spans);
            threads.push(Thread::Structured {
                name: thread_name,
                body,
            });
        } else {
            return Err(err(
                body_head.number,
                "thread body must start with `repeat:` or `execute ruleset:`",
            ));
        }
        spans.threads.push(thread_spans);
    }

    let program = Program {
        name,
        vars: parser.vars,
        inputs,
        outputs,
        init,
        derived_init: Vec::new(),
        threads,
    };
    Ok((program, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Executor;
    use pp_rules::Guard;

    const LEADER_SOURCE: &str = "\
def protocol LeaderElection
  var L <- on as output, D, F:
  thread Main:
    repeat:
      if exists (L):
        F := {on, off} chosen uniformly at random
        D := L & F
      if exists (D):
        L := D
      else:
        if exists (L):
        else:
          L := on
";

    #[test]
    fn parses_leader_election_and_it_runs() {
        let program = parse_program(LEADER_SOURCE).expect("parses");
        assert_eq!(program.name, "LeaderElection");
        let l = program.vars.get("L").unwrap();
        assert_eq!(program.outputs, vec![l]);
        assert_eq!(program.init, vec![(l, true)]);
        let mut exec = Executor::new(&program, &[(vec![], 200)], 5);
        let it = exec.run_until(300, |e| e.count_where(&Guard::var(l)) == 1);
        assert!(it.is_some(), "parsed protocol elects a leader");
    }

    #[test]
    fn parses_raw_threads_and_execute() {
        let source = "\
def protocol Toy
  var A as input, Y as output:
  thread Main:
    repeat:
      execute for >= 3 ln n rounds ruleset:
        > (A) + (!A & !Y) -> (A) + (Y)
      if exists (Y):
        Y := on
  thread Background:
    execute ruleset:
      > (Y) + (Y) -> (Y) + (!Y)
";
        let program = parse_program(source).expect("parses");
        assert_eq!(program.structured_threads().count(), 1);
        assert_eq!(program.raw_threads().count(), 1);
        assert_eq!(program.loop_depth(), 0);
    }

    #[test]
    #[allow(clippy::single_element_loop)]
    fn render_parse_roundtrip_for_builtin_protocols() {
        // The renderer's output must re-parse to a semantically equal
        // program. We check structural equality of the re-render (a fixed
        // point), which implies instruction-level agreement.
        for source_program in [crate::ast::Program {
            name: "RT".into(),
            vars: {
                let mut v = pp_rules::VarSet::new();
                v.add("A");
                v.add("B");
                v
            },
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![
                    build::repeat_log(2, vec![build::assign(pp_rules::Var::new(0), Guard::any())]),
                    build::if_else(
                        Guard::var(pp_rules::Var::new(1)),
                        vec![build::assign_coin(pp_rules::Var::new(0))],
                        vec![build::assign(pp_rules::Var::new(1), Guard::any().not())],
                    ),
                ],
            }],
        }] {
            let rendered = source_program.render();
            let reparsed = parse_program(&rendered)
                .unwrap_or_else(|e| panic!("render output must re-parse: {e}\n{rendered}"));
            assert_eq!(
                reparsed.render(),
                rendered,
                "render is a fixed point of parse∘render"
            );
        }
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let source = "\
def protocol Bad
  var A:
  thread Main:
    repeat:
      bogus instruction here
";
        let e = parse_program(source).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.message.contains("unrecognized"));
    }

    #[test]
    fn spanned_parse_mirrors_program_structure() {
        let (program, spans) = parse_program_spanned(LEADER_SOURCE).expect("parses");
        assert_eq!(spans.decl, Span::new(2, 3, 28));
        assert_eq!(spans.threads.len(), 1);
        let t = &spans.threads[0];
        assert_eq!(t.header, Span::new(3, 3, 12));
        // Pre-order: if(5), F:=(6), D:=(7), if(8), L:=(9), if(11), L:=(13).
        let lines: Vec<usize> = t.instrs.iter().map(|s| s.span.line).collect();
        assert_eq!(lines, vec![5, 6, 7, 8, 9, 11, 13]);
        assert!(t.rules.is_empty());
        // The span count matches a pre-order walk of the body.
        fn count(instrs: &[Instr]) -> usize {
            instrs
                .iter()
                .map(|i| match i {
                    Instr::IfExists {
                        then_branch,
                        else_branch,
                        ..
                    } => 1 + count(then_branch) + count(else_branch),
                    Instr::RepeatLog { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        let body = match &program.threads[0] {
            Thread::Structured { body, .. } => body,
            Thread::Raw { .. } => unreachable!(),
        };
        assert_eq!(t.instrs.len(), count(body));
    }

    #[test]
    fn spanned_parse_locates_rules() {
        let source = "\
def protocol Toy
  var A as input, Y as output:
  thread Main:
    repeat:
      execute for >= 3 ln n rounds ruleset:
        > (A) + (!A & !Y) -> (A) + (Y)
  thread Background:
    execute ruleset:
      > (Y) + (Y) -> (Y) + (!Y)
";
        let (_, spans) = parse_program_spanned(source).expect("parses");
        let main = &spans.threads[0];
        assert_eq!(main.instrs.len(), 1);
        assert_eq!(main.instrs[0].rules, vec![Span::new(6, 11, 28)]);
        let bg = &spans.threads[1];
        assert_eq!(bg.rules, vec![Span::new(9, 9, 23)]);
        assert!(bg.instrs.is_empty());
    }

    #[test]
    fn guard_errors_map_to_source_columns() {
        let source = "\
def protocol Bad
  var A, L:
  thread Main:
    repeat:
      L := A &
";
        let e = parse_program(source).unwrap_err();
        assert_eq!(e.line, 5);
        assert_eq!(e.col, 14, "points at the dangling `&`: {e}");
        assert_eq!(e.source, "      L := A &");
        assert!(e.to_string().contains('^'), "caret rendered: {e}");
    }

    #[test]
    fn rule_errors_in_rulesets_map_to_source_columns() {
        let source = "\
def protocol Bad
  var A, B:
  thread Main:
    execute ruleset:
      > (A) + (.) -> (A | B) + (.)
";
        let e = parse_program(source).unwrap_err();
        assert_eq!(e.line, 5);
        // `>` at col 7, rule starts col 9; post-condition paren 13 chars in.
        assert_eq!(e.col, 22, "{e}");
        assert!(e.message.contains("conjunction of literals"), "{e}");
    }

    #[test]
    fn rejects_tabs() {
        let source = "def protocol T\n\tvar A:\n";
        let e = parse_program(source).unwrap_err();
        assert!(e.message.contains("tabs"));
    }

    #[test]
    fn rejects_stray_else() {
        let source = "\
def protocol Bad
  var A:
  thread Main:
    repeat:
      else:
";
        let e = parse_program(source).unwrap_err();
        assert!(e.message.contains("without a matching"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let source = "\
# a comment
def protocol WithComments

  var A as input:   # trailing comment? no — comments start the line
  thread Main:
    repeat:
      # full-line comment
      A := A
";
        // The `#` begins a comment anywhere per lex_lines.
        let program = parse_program(source).expect("parses");
        assert_eq!(program.name, "WithComments");
    }
}
