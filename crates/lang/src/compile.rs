//! Full compilation (Section 5.4): deploying a precompiled ruleset tree on
//! the phase-clock hierarchy as one finite-state population protocol.
//!
//! The hierarchy has one clock level per loop level (`l_max` levels; level
//! 0 is the fastest, driving the innermost loop). Every level's phase
//! counter runs modulo `m = 4·(w_max + 1)`; the *time path* of an agent is
//! the vector of its levels' phases. A leaf with index
//! `τ = (τ_{l_max}, …, τ₁)`, `τ_j ∈ {1..w_max}`, is *active* for an agent
//! pair when both agents' level-`j` phases equal `4·τ_j` for every `j` —
//! the filter `Π_τ` of the paper. Program rules fire only on pairs whose
//! common active leaf contains them; phases `≢ 0 (mod 4)` and phase 0 are
//! idle (they separate consecutive leaves and host the hierarchy's own
//! gating work).
//!
//! Because a faster clock completes `Θ(log n)` cycles per slower-clock
//! phase, each inner loop body re-executes a logarithmic number of times
//! per outer step — exactly the `repeat ≥ c ln n times` semantics — and
//! each leaf stays active for `Θ(log n)` rounds per visit, satisfying its
//! `execute for ≥ c ln n rounds` requirement (Proposition 5.7 / Fig. 1).
//!
//! Raw threads compose alongside, unfiltered. The result is an `O(1)`-state
//! protocol (for fixed program) running with **no global coordination
//! whatsoever** — Theorem 2.4's compilation claim, validated empirically in
//! experiment E13.

use crate::ast::Program;
use crate::precompile::{precompile, CompiledTree};
use pp_clocks::hierarchy::{ClockHierarchy, HierAgent};
use pp_clocks::junta::XControl;
use pp_clocks::oscillator::Oscillator;
use pp_engine::obj::ObjProtocol;
use pp_engine::rng::SimRng;
use pp_rules::{Ruleset, Var};

/// An agent of the compiled protocol: program flags + clock hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledAgent {
    /// Packed program variables (including `K#`/`Z#` auxiliaries).
    pub flags: u32,
    /// The clock-hierarchy component.
    pub clock: HierAgent,
}

/// The compiled population protocol: program flags composed with the clock
/// hierarchy, program rules filtered by active-leaf agreement.
pub struct CompiledProtocol<O, C> {
    tree: CompiledTree,
    hierarchy: ClockHierarchy<O, C>,
    /// Leaf rulesets indexed by time path (row-major, innermost last).
    leaf_rules: Vec<Ruleset>,
    raw: Option<Ruleset>,
    program_inputs: Vec<Var>,
    initial_flags_fn: InitFn,
    modulus: u8,
}

type InitFn = Box<dyn Fn(&[Var]) -> u32 + Send + Sync>;

impl<O: Oscillator, C: XControl> CompiledProtocol<O, C> {
    /// Compiles `program`'s first structured thread onto a hierarchy built
    /// from the given oscillator and `X`-control process, with detector
    /// depth `k`.
    ///
    /// The clock tempo (the paper's "large constant α depending on the
    /// sequential code") is chosen automatically from the program's leaf
    /// complexity so that every agent completes its per-leaf work within a
    /// leaf window w.h.p.; override via
    /// [`ClockHierarchy::with_tempo`](pp_clocks::hierarchy::ClockHierarchy::with_tempo)
    /// when constructing a hierarchy manually.
    ///
    /// # Panics
    ///
    /// Panics if the program has no structured thread, or the loop depth
    /// exceeds the hierarchy's supported levels.
    #[must_use]
    pub fn new(program: &Program, oscillator: O, control: C, k: u8) -> Self {
        let tree = precompile(program);
        let m = 4 * (tree.w_max as u8 + 1);
        // Leaf windows must cover a coupon-collector pass for the largest
        // leaf ruleset: stretch the base period proportionally.
        let max_rules = tree
            .leaves()
            .iter()
            .map(|(_, rs)| rs.len())
            .max()
            .unwrap_or(1)
            .max(1);
        let tempo = (max_rules as u8).clamp(1, 8);
        let hierarchy =
            ClockHierarchy::new(oscillator, control, tree.l_max, k, m).with_tempo(tempo);
        // Flatten leaves into a dense index by time path.
        let mut leaf_rules = vec![Ruleset::new(); tree.num_leaves()];
        let w = tree.w_max;
        for (path, ruleset) in tree.leaves() {
            // path = (τ_{l_max}, …, τ₁); index row-major with outer level
            // most significant.
            let mut idx = 0usize;
            for &t in &path {
                idx = idx * w + (t - 1);
            }
            leaf_rules[idx] = ruleset.clone();
        }
        let raws: Vec<Ruleset> = program.raw_threads().map(|(_, rs)| rs.clone()).collect();
        let raw = if raws.is_empty() {
            None
        } else {
            Some(Ruleset::compose(&raws))
        };
        let program_clone = program.clone();
        let initial_flags_fn: InitFn =
            Box::new(move |inputs_on: &[Var]| program_clone.initial_state(inputs_on));
        Self {
            tree,
            hierarchy,
            leaf_rules,
            raw,
            program_inputs: program.inputs.clone(),
            initial_flags_fn,
            modulus: m,
        }
    }

    /// The precompiled tree.
    #[must_use]
    pub fn tree(&self) -> &CompiledTree {
        &self.tree
    }

    /// The clock hierarchy.
    #[must_use]
    pub fn hierarchy(&self) -> &ClockHierarchy<O, C> {
        &self.hierarchy
    }

    /// The phase modulus `m = 4(w_max + 1)`.
    #[must_use]
    pub fn modulus(&self) -> u8 {
        self.modulus
    }

    /// The initial agent for the given input membership.
    #[must_use]
    pub fn initial_agent(&self, inputs_on: &[Var]) -> CompiledAgent {
        for v in inputs_on {
            assert!(self.program_inputs.contains(v), "not an input variable");
        }
        CompiledAgent {
            flags: (self.initial_flags_fn)(inputs_on),
            clock: self.hierarchy.initial_agent(),
        }
    }

    /// The active leaf index for an agent, if its time path points inside a
    /// leaf window.
    ///
    /// Leaf `τ_j` occupies the level-`j` phases `{4τ_j, 4τ_j+1, 4τ_j+2}`;
    /// every fourth phase (`≡ 3 mod 4`) and the first four phases of the
    /// cycle are idle separators. One separator phase suffices to keep the
    /// ±1 phase skew of the tick waves from mixing adjacent leaves, while
    /// three active phases per leaf make the window robust to the
    /// oscillator's uneven per-species dwell times.
    #[must_use]
    pub fn active_leaf(&self, agent: &CompiledAgent) -> Option<usize> {
        let w = self.tree.w_max;
        let mut idx = 0usize;
        // Outer level (= highest hierarchy level) most significant.
        for j in (0..self.tree.l_max).rev() {
            let phase = agent.clock.cur[j].phase;
            if phase < 4 || phase % 4 == 3 {
                return None;
            }
            let tau = (phase / 4) as usize;
            if tau > w {
                return None;
            }
            idx = idx * w + (tau - 1);
        }
        Some(idx)
    }

    /// Counts agents whose program flags satisfy `guard`.
    pub fn count_flags<'a>(
        &self,
        agents: impl Iterator<Item = &'a CompiledAgent>,
        guard: &pp_rules::Guard,
    ) -> u64 {
        agents.filter(|a| guard.eval(a.flags)).count() as u64
    }
}

impl<O: Oscillator, C: XControl> ObjProtocol for CompiledProtocol<O, C> {
    type State = CompiledAgent;

    fn interact(
        &self,
        a: &CompiledAgent,
        b: &CompiledAgent,
        rng: &mut SimRng,
    ) -> (CompiledAgent, CompiledAgent) {
        let mut a = *a;
        let mut b = *b;
        // Thread split: 1/2 clock hierarchy, 1/8 raw threads (if any),
        // 3/8 program rules (the program thread gets a generous share so
        // per-leaf coupon collection completes within leaf windows).
        let choice = rng.index(8);
        if choice < 4 {
            let (ca, cb) = self.hierarchy.interact(&a.clock, &b.clock, rng);
            a.clock = ca;
            b.clock = cb;
            return (a, b);
        }
        if choice == 4 {
            if let Some(raw) = &self.raw {
                let rule = &raw.rules()[rng.index(raw.len())];
                if rule.matches(a.flags, b.flags)
                    && (rule.probability >= 1.0 || rng.chance(rule.probability))
                {
                    let (fa, fb) = rule.apply(a.flags, b.flags);
                    a.flags = fa;
                    b.flags = fb;
                }
            }
            return (a, b);
        }
        // Program thread: fire only when both agents agree on an active
        // leaf (the Π_τ filter).
        let (Some(la), Some(lb)) = (self.active_leaf(&a), self.active_leaf(&b)) else {
            return (a, b);
        };
        if la != lb {
            return (a, b);
        }
        let ruleset = &self.leaf_rules[la];
        if ruleset.is_empty() {
            return (a, b);
        }
        let rule = &ruleset.rules()[rng.index(ruleset.len())];
        if rule.matches(a.flags, b.flags)
            && (rule.probability >= 1.0 || rng.chance(rule.probability))
        {
            let (fa, fb) = rule.apply(a.flags, b.flags);
            a.flags = fa;
            b.flags = fb;
        }
        (a, b)
    }
}

/// Which execution backend compiles a program, and why.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendChoice {
    /// Every structured thread fits the [`pp_rules::MAX_VARS`] packing
    /// budget (declared variables + lowering flags): the precompile →
    /// clock-hierarchy pipeline applies.
    Hierarchy,
    /// Some thread exceeds the flag budget, but the analyzer's support
    /// closure enumerated the reachable states: the
    /// [`crate::enumerate`] backend compiles it over dense ids.
    Enumerated {
        /// Live packed states (the dense state-space size).
        live_states: usize,
        /// Source-level rules proved dead and stripped.
        dead_rules: usize,
        /// Source-level rules in total.
        total_rules: usize,
    },
    /// Neither compiled backend applies; the interpreter
    /// ([`crate::interp::Executor`]) remains the execution vehicle.
    Interpreted {
        /// Why enumeration was infeasible.
        reason: String,
    },
}

/// Decides the execution backend for a program: the clock hierarchy when
/// every structured thread's projected packed-bit count (declared
/// variables + [`crate::precompile::lowering_flags`]) fits
/// [`pp_rules::MAX_VARS`]; otherwise reachable-state enumeration
/// ([`crate::enumerate::plan`]); otherwise the interpreter.
#[must_use]
pub fn choose_backend(program: &Program) -> BackendChoice {
    let declared = program.vars.len();
    let fits = program
        .structured_threads()
        .all(|(_, body)| declared + crate::precompile::lowering_flags(body) <= pp_rules::MAX_VARS);
    if fits {
        return BackendChoice::Hierarchy;
    }
    match crate::enumerate::plan(program) {
        Ok(plan) => BackendChoice::Enumerated {
            live_states: plan.live.len(),
            dead_rules: plan.dead_rules,
            total_rules: plan.total_rules,
        },
        Err(e) => BackendChoice::Interpreted {
            reason: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{build, Thread};
    use pp_clocks::junta::PairwiseElimination;
    use pp_clocks::oscillator::Dk18Oscillator;
    use pp_engine::obj::ObjPopulation;
    use pp_rules::{Guard, VarSet};

    fn toy_program() -> Program {
        let mut vars = VarSet::new();
        let x = vars.add("X");
        let y = vars.add("Y");
        Program {
            name: "toy".into(),
            vars,
            inputs: vec![x],
            outputs: vec![y],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::assign(y, Guard::var(x))],
            }],
        }
    }

    fn compiled() -> CompiledProtocol<Dk18Oscillator, PairwiseElimination> {
        CompiledProtocol::new(
            &toy_program(),
            Dk18Oscillator::new(),
            PairwiseElimination::new(),
            6,
        )
    }

    #[test]
    fn modulus_follows_width() {
        let c = compiled();
        assert_eq!(c.tree().w_max, 2);
        assert_eq!(c.modulus(), 12);
        assert_eq!(c.tree().l_max, 1);
    }

    #[test]
    fn initial_agent_carries_inputs() {
        let c = compiled();
        let p = toy_program();
        let x = p.vars.get("X").unwrap();
        let agent = c.initial_agent(&[x]);
        assert!(x.is_set(agent.flags));
        assert_eq!(agent.clock.cur[0].phase, 0);
    }

    #[test]
    fn active_leaf_requires_aligned_nonzero_phase() {
        let c = compiled();
        let mut agent = c.initial_agent(&[]);
        assert_eq!(c.active_leaf(&agent), None, "phase 0 is idle");
        agent.clock.cur[0].phase = 4;
        assert_eq!(c.active_leaf(&agent), Some(0));
        agent.clock.cur[0].phase = 6;
        assert_eq!(c.active_leaf(&agent), Some(0), "leaf spans 3 phases");
        agent.clock.cur[0].phase = 7;
        assert_eq!(c.active_leaf(&agent), None, "separator phase");
        agent.clock.cur[0].phase = 8;
        assert_eq!(c.active_leaf(&agent), Some(1));
        agent.clock.cur[0].phase = 10;
        assert_eq!(c.active_leaf(&agent), Some(1));
        agent.clock.cur[0].phase = 3;
        assert_eq!(c.active_leaf(&agent), None);
    }

    #[test]
    fn program_rules_only_fire_in_leaf_windows() {
        let c = compiled();
        let p = toy_program();
        let x = p.vars.get("X").unwrap();
        let y = p.vars.get("Y").unwrap();
        let mut rng = SimRng::seed_from(1);
        // Both agents pinned at idle phase: flags must never change.
        let a0 = c.initial_agent(&[x]);
        let b0 = c.initial_agent(&[]);
        for _ in 0..500 {
            let mut a = a0;
            let mut b = b0;
            a.clock.cur[0].phase = 1;
            b.clock.cur[0].phase = 1;
            let (a2, b2) = c.interact(&a, &b, &mut rng);
            assert_eq!(a2.flags, a.flags);
            assert_eq!(b2.flags, b.flags);
            let _ = y;
        }
    }

    #[test]
    fn full_stack_executes_assignment() {
        // End-to-end: run the compiled toy program (Y := X) on a real
        // population and check that Y eventually reflects X for most
        // agents. This exercises clocks, gating, triggers, and rules.
        let c = compiled();
        let p = toy_program();
        let x = p.vars.get("X").unwrap();
        let y = p.vars.get("Y").unwrap();
        let n = 300usize;
        let mut pop = ObjPopulation::from_fn(&c, n, |i| {
            if i < 100 {
                c.initial_agent(&[x])
            } else {
                c.initial_agent(&[])
            }
        });
        let mut rng = SimRng::seed_from(2);
        // Startup (X-control thinning + oscillator escape) then several
        // full phase cycles. Generous budget; leaf windows recur every
        // m·gap ≈ 12 · Θ(log n) rounds.
        let correct = |pop: &ObjPopulation<&CompiledProtocol<_, _>>| {
            pop.count_where(|ag| y.is_set(ag.flags) == x.is_set(ag.flags))
        };
        let t = pop.run_until(&mut rng, 30_000.0, 256 * n as u64, |p| {
            correct(p) == n as u64
        });
        assert!(
            t.is_some(),
            "compiled assignment completed for every agent; correct = {}/{n}",
            correct(&pop)
        );
    }
}
