//! Precompilation (Section 4): lowering the language to a complete tree of
//! plain rulesets.
//!
//! The structured constructs are eliminated in three steps:
//!
//! 1. **Assignments** `X := Σ` become two leaves using a per-line trigger
//!    flag `K#` (Fig. 1): first every agent arms its trigger, then every
//!    armed agent performs the minimal update and disarms. The randomized
//!    assignment `X := coin` uses two equiprobable rules in the second
//!    leaf. This guarantees each agent applies the assignment at most once
//!    per visit, and exactly once w.h.p.
//! 2. **Branching** `if exists (Σ)` becomes two evaluation leaves using a
//!    per-line flag `Z#` — clear `Z#`, then run an epidemic seeded by the
//!    agents satisfying `Σ` — followed by *ruleset compaction*: the lowered
//!    then- and else-subtrees are padded to isomorphic shape and merged
//!    leaf-wise, conjoining `Z#` (resp. `¬Z#`) onto both guards of every
//!    rule. The guaranteed-behavior property follows: once `Σ` is
//!    permanently absent, `Z#` can never be set again, so then-branch rules
//!    never fire again.
//! 3. **Padding**: the resulting tree is completed to uniform depth
//!    `l_max` and width `w_max` by inserting artificial loops and empty
//!    (`nil`) leaves, so that leaves are exactly indexed by time paths
//!    `τ = (τ_{l_max}, …, τ₁)` with `τ_j ∈ {1, …, w_max}` (Section 5.4).

use crate::ast::{AssignValue, Instr, Program};
use pp_rules::{Guard, Rule, Ruleset, VarSet};

/// A node of the precompiled code tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// An internal `repeat ≥ c ln n times` loop.
    Loop {
        /// Loop constant.
        c: u32,
        /// Children, in execution order.
        children: Vec<TreeNode>,
    },
    /// A leaf: `execute for ≥ c ln n rounds ruleset`.
    Leaf {
        /// Duration constant.
        c: u32,
        /// The rules; empty = `nil` padding leaf.
        ruleset: Ruleset,
    },
}

impl TreeNode {
    fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Loop { children, .. } => {
                1 + children.iter().map(TreeNode::depth).max().unwrap_or(0)
            }
        }
    }
}

/// The result of precompiling one structured thread.
#[derive(Debug, Clone)]
pub struct CompiledTree {
    /// The extended variable set (program variables + `K#`/`Z#` flags).
    pub vars: VarSet,
    /// Loop depth including the implicit outermost `repeat:` (the paper's
    /// `l_max ≥ 1`).
    pub l_max: usize,
    /// Uniform width of every internal node.
    pub w_max: usize,
    /// The complete `w_max`-ary tree: children of the outermost repeat.
    pub root: Vec<TreeNode>,
    /// The loop constant in effect (maximum of all constants in the code).
    pub c: u32,
}

impl CompiledTree {
    /// Collects the leaves in execution order, each tagged with its time
    /// path `τ = (τ_{l_max}, …, τ₁)` (1-based per level).
    #[must_use]
    pub fn leaves(&self) -> Vec<(Vec<usize>, &Ruleset)> {
        let mut out = Vec::new();
        fn walk<'t>(
            nodes: &'t [TreeNode],
            prefix: &mut Vec<usize>,
            out: &mut Vec<(Vec<usize>, &'t Ruleset)>,
        ) {
            for (i, node) in nodes.iter().enumerate() {
                prefix.push(i + 1);
                match node {
                    TreeNode::Leaf { ruleset, .. } => out.push((prefix.clone(), ruleset)),
                    TreeNode::Loop { children, .. } => walk(children, prefix, out),
                }
                prefix.pop();
            }
        }
        let mut prefix = Vec::new();
        walk(&self.root, &mut prefix, &mut out);
        out
    }

    /// Number of leaves (`w_max^{l_max}` after padding).
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.w_max.pow(self.l_max as u32)
    }
}

struct Lowerer {
    vars: VarSet,
    counter: usize,
    c_max: u32,
}

impl Lowerer {
    fn fresh(&mut self, prefix: &str) -> pp_rules::Var {
        let name = format!("{prefix}{}", self.counter);
        self.counter += 1;
        self.vars.add(&name)
    }

    fn lower_block(&mut self, instrs: &[Instr]) -> Vec<TreeNode> {
        let mut out = Vec::new();
        for instr in instrs {
            out.extend(self.lower_instr(instr));
        }
        out
    }

    fn lower_instr(&mut self, instr: &Instr) -> Vec<TreeNode> {
        match instr {
            Instr::Execute { c, ruleset } => {
                self.c_max = self.c_max.max(*c);
                vec![TreeNode::Leaf {
                    c: *c,
                    ruleset: ruleset.clone(),
                }]
            }
            Instr::RepeatLog { c, body } => {
                self.c_max = self.c_max.max(*c);
                vec![TreeNode::Loop {
                    c: *c,
                    children: self.lower_block(body),
                }]
            }
            Instr::Assign { var, value } => {
                let k = self.fresh("K_");
                let arm = Rule::new(Guard::not_var(k), Guard::True, &Guard::var(k), &Guard::True)
                    .expect("arm rule");
                let apply = match value {
                    AssignValue::Formula(sigma) => {
                        let set = Rule::new(
                            sigma.clone().and(Guard::var(k)),
                            Guard::True,
                            &Guard::var(*var).and(Guard::not_var(k)),
                            &Guard::True,
                        )
                        .expect("set rule");
                        let clear = Rule::new(
                            sigma.clone().not().and(Guard::var(k)),
                            Guard::True,
                            &Guard::not_var(*var).and(Guard::not_var(k)),
                            &Guard::True,
                        )
                        .expect("clear rule");
                        Ruleset::from_rules(vec![set, clear])
                    }
                    AssignValue::RandomBit => {
                        // Two equiprobable rules under uniform selection.
                        let heads = Rule::new(
                            Guard::var(k),
                            Guard::True,
                            &Guard::var(*var).and(Guard::not_var(k)),
                            &Guard::True,
                        )
                        .expect("heads rule");
                        let tails = Rule::new(
                            Guard::var(k),
                            Guard::True,
                            &Guard::not_var(*var).and(Guard::not_var(k)),
                            &Guard::True,
                        )
                        .expect("tails rule");
                        Ruleset::from_rules(vec![heads, tails])
                    }
                };
                vec![
                    TreeNode::Leaf {
                        c: 1,
                        ruleset: Ruleset::from_rules(vec![arm]),
                    },
                    TreeNode::Leaf {
                        c: 1,
                        ruleset: apply,
                    },
                ]
            }
            Instr::IfExists {
                cond,
                then_branch,
                else_branch,
            } => {
                let z = self.fresh("Z_");
                // Evaluation leaves: clear Z, then epidemic from cond.
                let clear = Rule::new(Guard::var(z), Guard::True, &Guard::not_var(z), &Guard::True)
                    .expect("clear Z");
                let seed = Rule::new(
                    cond.clone().and(Guard::not_var(z)),
                    Guard::True,
                    &Guard::var(z),
                    &Guard::True,
                )
                .expect("seed Z");
                let spread = Rule::new(
                    Guard::not_var(z),
                    Guard::var(z),
                    &Guard::var(z),
                    &Guard::var(z),
                )
                .expect("spread Z");
                let mut out = vec![
                    TreeNode::Leaf {
                        c: 1,
                        ruleset: Ruleset::from_rules(vec![clear]),
                    },
                    TreeNode::Leaf {
                        c: 1,
                        ruleset: Ruleset::from_rules(vec![seed, spread]),
                    },
                ];
                // Lower both branches and merge leaf-wise under Z / ¬Z.
                let then_tree = self.lower_block(then_branch);
                let else_tree = self.lower_block(else_branch);
                out.extend(merge_branches(then_tree, else_tree, z));
                out
            }
        }
    }
}

/// Pads two lowered branch trees to isomorphic shape, then merges them
/// node-wise, gating then-rules on `Z` and else-rules on `¬Z` (both
/// agents).
fn merge_branches(
    then_tree: Vec<TreeNode>,
    else_tree: Vec<TreeNode>,
    z: pp_rules::Var,
) -> Vec<TreeNode> {
    let depth = then_tree
        .iter()
        .chain(&else_tree)
        .map(TreeNode::depth)
        .max()
        .unwrap_or(0);
    let width = then_tree.len().max(else_tree.len());
    let pad = |mut nodes: Vec<TreeNode>| -> Vec<TreeNode> {
        while nodes.len() < width {
            nodes.push(TreeNode::Leaf {
                c: 1,
                ruleset: Ruleset::new(),
            });
        }
        nodes
    };
    let then_tree = pad(then_tree);
    let else_tree = pad(else_tree);
    then_tree
        .into_iter()
        .zip(else_tree)
        .map(|(t, e)| merge_nodes(t, e, z, depth))
        .collect()
}

fn gate_ruleset(ruleset: &Ruleset, guard_lit: Guard) -> Vec<Rule> {
    ruleset
        .rules()
        .iter()
        .map(|r| {
            let mut gated = r.clone();
            gated.guard_a = guard_lit.clone().and(r.guard_a.clone());
            gated.guard_b = guard_lit.clone().and(r.guard_b.clone());
            gated
        })
        .collect()
}

fn merge_nodes(
    then_node: TreeNode,
    else_node: TreeNode,
    z: pp_rules::Var,
    depth: usize,
) -> TreeNode {
    match (then_node, else_node) {
        (TreeNode::Leaf { c: ct, ruleset: rt }, TreeNode::Leaf { c: ce, ruleset: re }) => {
            let mut rules = gate_ruleset(&rt, Guard::var(z));
            rules.extend(gate_ruleset(&re, Guard::not_var(z)));
            let leaf = TreeNode::Leaf {
                c: ct.max(ce),
                ruleset: Ruleset::from_rules(rules),
            };
            wrap_to_depth(leaf, depth)
        }
        (t, e) => {
            // At least one side is a loop: normalize both to loops of the
            // same width, merge children pairwise.
            let (ct, tc) = into_loop(t);
            let (ce, ec) = into_loop(e);
            let inner_depth = depth.saturating_sub(1);
            let merged = merge_branches_at(tc, ec, z, inner_depth);
            TreeNode::Loop {
                c: ct.max(ce),
                children: merged,
            }
        }
    }
}

fn merge_branches_at(
    then_tree: Vec<TreeNode>,
    else_tree: Vec<TreeNode>,
    z: pp_rules::Var,
    depth: usize,
) -> Vec<TreeNode> {
    let width = then_tree.len().max(else_tree.len()).max(1);
    let pad = |mut nodes: Vec<TreeNode>| -> Vec<TreeNode> {
        while nodes.len() < width {
            nodes.push(TreeNode::Leaf {
                c: 1,
                ruleset: Ruleset::new(),
            });
        }
        nodes
    };
    pad(then_tree)
        .into_iter()
        .zip(pad(else_tree))
        .map(|(t, e)| merge_nodes(t, e, z, depth))
        .collect()
}

fn into_loop(node: TreeNode) -> (u32, Vec<TreeNode>) {
    match node {
        TreeNode::Loop { c, children } => (c, children),
        leaf @ TreeNode::Leaf { .. } => (1, vec![leaf]),
    }
}

fn wrap_to_depth(node: TreeNode, depth: usize) -> TreeNode {
    let mut node = node;
    for _ in 0..depth {
        node = TreeNode::Loop {
            c: 1,
            children: vec![node],
        };
    }
    node
}

/// Completes the tree to uniform depth and width.
fn pad_tree(nodes: Vec<TreeNode>, target_depth: usize, width: usize) -> Vec<TreeNode> {
    let mut out: Vec<TreeNode> = nodes
        .into_iter()
        .map(|n| pad_node(n, target_depth, width))
        .collect();
    while out.len() < width {
        out.push(pad_node(
            TreeNode::Leaf {
                c: 1,
                ruleset: Ruleset::new(),
            },
            target_depth,
            width,
        ));
    }
    out
}

fn pad_node(node: TreeNode, remaining_depth: usize, width: usize) -> TreeNode {
    match node {
        TreeNode::Leaf { c, ruleset } => {
            if remaining_depth == 0 {
                TreeNode::Leaf { c, ruleset }
            } else {
                // Wrap in an artificial single-iteration-schedule loop.
                TreeNode::Loop {
                    c: 1,
                    children: pad_tree(
                        vec![TreeNode::Leaf { c, ruleset }],
                        remaining_depth - 1,
                        width,
                    ),
                }
            }
        }
        TreeNode::Loop { c, children } => {
            debug_assert!(remaining_depth >= 1, "loop deeper than computed depth");
            TreeNode::Loop {
                c,
                children: pad_tree(children, remaining_depth - 1, width),
            }
        }
    }
}

/// Counts the lowering flags this precompilation scheme introduces for a
/// thread body: one `K#` trigger flag per assignment and one `Z#`
/// condition flag per `if exists` (plus the flags of both branches),
/// recursing through loops; `execute` sites need none. Added to the
/// declared-variable count this is the packed-bit budget the thread needs
/// under [`precompile`] — the quantity the analyzer's PP207 check and the
/// compiler's backend choice ([`crate::compile::choose_backend`]) compare
/// against [`pp_rules::MAX_VARS`].
#[must_use]
pub fn lowering_flags(instrs: &[Instr]) -> usize {
    instrs
        .iter()
        .map(|instr| match instr {
            Instr::Assign { .. } => 1,
            Instr::IfExists {
                then_branch,
                else_branch,
                ..
            } => 1 + lowering_flags(then_branch) + lowering_flags(else_branch),
            Instr::RepeatLog { body, .. } => lowering_flags(body),
            Instr::Execute { .. } => 0,
        })
        .sum()
}

/// Computes the width (max children across internal nodes, and the root).
fn tree_width(nodes: &[TreeNode]) -> usize {
    let mut width = nodes.len();
    for node in nodes {
        if let TreeNode::Loop { children, .. } = node {
            width = width.max(tree_width(children));
        }
    }
    width
}

/// Precompiles the first structured thread of `program` into a complete
/// ruleset tree.
///
/// Raw threads are untouched (they compose at execution time); additional
/// structured threads must be compiled separately.
///
/// # Panics
///
/// Panics if the program has no structured thread.
#[must_use]
pub fn precompile(program: &Program) -> CompiledTree {
    let (_, body) = program
        .structured_threads()
        .next()
        .expect("program has a structured thread");
    let mut lowerer = Lowerer {
        vars: program.vars.clone(),
        counter: 0,
        c_max: 1,
    };
    let root = lowerer.lower_block(body);
    let depth = root.iter().map(TreeNode::depth).max().unwrap_or(0);
    let width = tree_width(&root).max(1);
    let root = pad_tree(root, depth, width);
    CompiledTree {
        vars: lowerer.vars,
        l_max: depth + 1,
        w_max: width,
        root,
        c: lowerer.c_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{build, Thread};
    use pp_rules::parse::parse_ruleset;

    fn simple_program(body: Vec<Instr>) -> Program {
        let mut vars = VarSet::new();
        let _ = vars.add("X");
        let _ = vars.add("Y");
        Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        }
    }

    #[test]
    fn assignment_lowered_to_two_leaves() {
        let mut vars = VarSet::new();
        let x = vars.add("X");
        let y = vars.add("Y");
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::assign(x, Guard::var(y))],
            }],
        };
        let tree = precompile(&p);
        assert_eq!(tree.l_max, 1);
        assert_eq!(tree.w_max, 2);
        let leaves = tree.leaves();
        assert_eq!(leaves.len(), 2);
        // First leaf arms the trigger, second applies.
        assert_eq!(leaves[0].1.len(), 1);
        assert_eq!(leaves[1].1.len(), 2);
        assert!(tree.vars.get("K_0").is_some(), "trigger variable created");
    }

    #[test]
    fn coin_assignment_has_two_equiprobable_rules() {
        let mut vars = VarSet::new();
        let f = vars.add("F");
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::assign_coin(f)],
            }],
        };
        let tree = precompile(&p);
        let leaves = tree.leaves();
        let apply = leaves[1].1;
        assert_eq!(apply.len(), 2);
        // One rule sets F, the other clears it.
        let k = tree.vars.get("K_0").unwrap();
        let armed = k.mask();
        let mut rng = pp_engine::rng::SimRng::seed_from(1);
        let outcomes: Vec<u32> = apply.rules().iter().map(|r| r.apply(armed, 0).0).collect();
        assert!(outcomes.contains(&f.mask()), "one rule sets F");
        assert!(outcomes.contains(&0), "one rule clears F");
        let _ = &mut rng;
    }

    #[test]
    fn if_exists_produces_gated_leaves() {
        let mut vars = VarSet::new();
        let x = vars.add("X");
        let y = vars.add("Y");
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![build::if_else(
                    Guard::var(x),
                    vec![build::assign(y, Guard::any())],
                    vec![build::assign(y, Guard::any().not())],
                )],
            }],
        };
        let tree = precompile(&p);
        let z = tree.vars.get("Z_0").expect("Z flag created");
        // Trigger flags for the two branch assignments share the counter.
        let k_then = tree.vars.get("K_1").expect("then trigger");
        let k_else = tree.vars.get("K_2").expect("else trigger");
        let leaves = tree.leaves();
        // 2 evaluation leaves + 2 merged assignment leaves.
        assert_eq!(leaves.len(), 4);
        // Merged apply-leaf contains rules gated on Z and ¬Z.
        let merged = leaves[3].1;
        assert_eq!(merged.len(), 4, "2 then-rules + 2 else-rules");
        let then_state = z.mask() | k_then.mask();
        let else_state = k_else.mask();
        let fires_then = merged
            .rules()
            .iter()
            .filter(|r| r.guard_a.eval(then_state))
            .count();
        let fires_else = merged
            .rules()
            .iter()
            .filter(|r| r.guard_a.eval(else_state))
            .count();
        assert!(fires_then > 0, "some rules fire under Z");
        assert!(fires_else > 0, "some rules fire under ¬Z");
        // No rule fires in both branch contexts.
        let both = merged
            .rules()
            .iter()
            .filter(|r| {
                r.guard_a.eval(z.mask() | k_then.mask() | k_else.mask())
                    && r.guard_a.eval(k_then.mask() | k_else.mask())
            })
            .count();
        assert_eq!(both, 0, "Z and ¬Z gating is exclusive");
    }

    #[test]
    fn nested_loop_increases_depth() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(X) + (.) -> (!X) + (.)", &mut vars).unwrap();
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![
                    build::execute(2, rs.clone()),
                    build::repeat_log(3, vec![build::execute(2, rs)]),
                ],
            }],
        };
        let tree = precompile(&p);
        assert_eq!(tree.l_max, 2);
        assert_eq!(tree.w_max, 2);
        assert_eq!(tree.c, 3, "max constant wins");
        // Complete tree: w^l leaves.
        assert_eq!(tree.leaves().len(), 4);
        // Every time path has l_max coordinates in 1..=w_max.
        for (path, _) in tree.leaves() {
            assert_eq!(path.len(), 2);
            assert!(path.iter().all(|&t| (1..=2).contains(&t)));
        }
    }

    #[test]
    fn empty_padding_leaves_are_nil() {
        let p = simple_program(vec![build::assign(pp_rules::Var::new(0), Guard::any())]);
        let tree = precompile(&p);
        // Assignment gives 2 leaves; no padding needed at width 2.
        assert_eq!(tree.num_leaves(), tree.leaves().len());
    }

    #[test]
    fn leader_election_precompiles() {
        // End-to-end over a real program shape: mirrors LeaderElection.
        let mut vars = VarSet::new();
        let l = vars.add("L");
        let d = vars.add("D");
        let f = vars.add("F");
        let body = vec![
            build::if_exists(
                Guard::var(l),
                vec![
                    build::assign_coin(f),
                    build::assign(d, Guard::var(l).and(Guard::var(f))),
                ],
            ),
            build::if_else(
                Guard::var(d),
                vec![build::assign(l, Guard::var(d))],
                vec![build::if_else(
                    Guard::var(l),
                    vec![],
                    vec![build::assign(l, Guard::any())],
                )],
            ),
        ];
        let p = Program {
            name: "LeaderElection".into(),
            vars,
            inputs: vec![],
            outputs: vec![l],
            init: vec![(l, true)],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        };
        let tree = precompile(&p);
        assert_eq!(tree.l_max, 1, "no nested repeat loops");
        assert!(tree.w_max >= 8, "several lowered leaves: {}", tree.w_max);
        assert_eq!(tree.leaves().len(), tree.num_leaves());
    }
}
