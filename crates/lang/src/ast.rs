//! Abstract syntax of the paper's sequential programming language
//! (Section 2.1).
//!
//! A program is a collection of *threads* over a shared pool of boolean
//! state variables. Each structured thread is an implicit outermost
//! `repeat:` loop around a body built from:
//!
//! * `if exists (Σ): […] else: […]` — branching on whether any agent in the
//!   population satisfies `Σ`;
//! * `repeat ≥ c ln n times: […]` — nested bounded loops;
//! * `X := Σ` — population-wide assignment (each agent sets `X` to the
//!   value of `Σ` on its own variables); the paper also uses the randomized
//!   form `X := {on, off} chosen uniformly at random`;
//! * `execute for ≥ c ln n rounds ruleset: […]` — run a plain ruleset
//!   under a fair scheduler for a logarithmic number of rounds.
//!
//! *Raw threads* (`execute ruleset:` forever) run a fixed ruleset
//! continuously in composition with everything else — the paper uses these
//! for `FilteredCoin`, `ReduceSets`, and the slow blackboxes of the exact
//! protocols.

use pp_rules::{Guard, Ruleset, Var, VarSet};
use std::fmt::Write as _;

/// Right-hand side of an assignment instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignValue {
    /// `X := Σ` for a boolean formula `Σ` on local variables.
    Formula(Guard),
    /// `X := {on, off} chosen uniformly at random` (a fresh coin per
    /// agent).
    RandomBit,
}

/// One instruction of a structured thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `if exists (cond): then_branch else: else_branch`.
    IfExists {
        /// The existential condition on local state variables.
        cond: Guard,
        /// Instructions executed when some agent satisfies `cond`.
        then_branch: Vec<Instr>,
        /// Instructions executed otherwise (may be empty).
        else_branch: Vec<Instr>,
    },
    /// `repeat ≥ c ln n times: body`.
    RepeatLog {
        /// The constant `c` in the iteration count `c ln n`.
        c: u32,
        /// Loop body.
        body: Vec<Instr>,
    },
    /// `execute for ≥ c ln n rounds ruleset: rules`.
    Execute {
        /// The constant `c` in the duration `c ln n` rounds.
        c: u32,
        /// The rules to run under a fair scheduler.
        ruleset: Ruleset,
    },
    /// `var := value` applied to every agent.
    Assign {
        /// The variable being assigned.
        var: Var,
        /// The assigned value.
        value: AssignValue,
    },
}

/// A thread: either structured code (wrapped in an implicit outer
/// `repeat:`) or a raw forever-ruleset.
#[derive(Debug, Clone, PartialEq)]
pub enum Thread {
    /// A structured thread with a name and a body.
    Structured {
        /// Thread name (for display).
        name: String,
        /// The body of the implicit outermost `repeat:` loop.
        body: Vec<Instr>,
    },
    /// A raw thread executing a fixed ruleset forever.
    Raw {
        /// Thread name (for display).
        name: String,
        /// The continuously running ruleset.
        ruleset: Ruleset,
    },
}

impl Thread {
    /// The thread's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Thread::Structured { name, .. } | Thread::Raw { name, .. } => name,
        }
    }
}

/// A complete protocol formulation in the framework.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Protocol name.
    pub name: String,
    /// The shared variable pool.
    pub vars: VarSet,
    /// Variables whose initial values encode the input (never modified by
    /// well-formed programs).
    pub inputs: Vec<Var>,
    /// Variables carrying the protocol's output.
    pub outputs: Vec<Var>,
    /// Initial values (`var ← on/off`) for non-input variables; variables
    /// not listed default to `off`.
    pub init: Vec<(Var, bool)>,
    /// Input-dependent initial values, applied after `init` and the input
    /// flags, in order: each variable is set to the value of its guard
    /// evaluated on the state built so far. Used to seed per-agent protocol
    /// state that depends on input membership (e.g. the slow blackbox's
    /// initial token values).
    pub derived_init: Vec<(Var, Guard)>,
    /// The threads.
    pub threads: Vec<Thread>,
}

impl Program {
    /// The structured threads, in declaration order.
    pub fn structured_threads(&self) -> impl Iterator<Item = (&str, &[Instr])> + '_ {
        self.threads.iter().filter_map(|t| match t {
            Thread::Structured { name, body } => Some((name.as_str(), body.as_slice())),
            Thread::Raw { .. } => None,
        })
    }

    /// The raw threads' rulesets, in declaration order.
    pub fn raw_threads(&self) -> impl Iterator<Item = (&str, &Ruleset)> + '_ {
        self.threads.iter().filter_map(|t| match t {
            Thread::Raw { name, ruleset } => Some((name.as_str(), ruleset)),
            Thread::Structured { .. } => None,
        })
    }

    /// The initial packed state of an agent, given which input variables it
    /// holds.
    #[must_use]
    pub fn initial_state(&self, inputs_on: &[Var]) -> u32 {
        let mut state = 0u32;
        for &(v, on) in &self.init {
            state = v.assign(state, on);
        }
        for &v in inputs_on {
            assert!(
                self.inputs.contains(&v),
                "{} is not an input variable",
                self.vars.name(v)
            );
            state = v.assign(state, true);
        }
        for (v, guard) in &self.derived_init {
            state = v.assign(state, guard.eval(state));
        }
        state
    }

    /// Maximum nesting depth of `RepeatLog` loops across structured threads
    /// (the paper's `l_max` minus the implicit outer repeat).
    #[must_use]
    pub fn loop_depth(&self) -> usize {
        fn depth(instrs: &[Instr]) -> usize {
            instrs
                .iter()
                .map(|i| match i {
                    Instr::RepeatLog { body, .. } => 1 + depth(body),
                    Instr::IfExists {
                        then_branch,
                        else_branch,
                        ..
                    } => depth(then_branch).max(depth(else_branch)),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        self.structured_threads()
            .map(|(_, body)| depth(body))
            .max()
            .unwrap_or(0)
    }

    /// Pretty-prints the program in the paper's pseudocode style.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "def protocol {}", self.name);
        let decls: Vec<String> = self
            .vars
            .iter()
            .map(|(v, name)| {
                let mut tags = Vec::new();
                if self.inputs.contains(&v) {
                    tags.push("input");
                }
                if self.outputs.contains(&v) {
                    tags.push("output");
                }
                let init = self
                    .init
                    .iter()
                    .find(|&&(iv, _)| iv == v)
                    .map(|&(_, on)| if on { " <- on" } else { " <- off" })
                    .unwrap_or("");
                if tags.is_empty() {
                    format!("{name}{init}")
                } else {
                    format!("{name}{init} as {}", tags.join(" "))
                }
            })
            .collect();
        let _ = writeln!(out, "  var {}:", decls.join(", "));
        for thread in &self.threads {
            match thread {
                Thread::Structured { name, body } => {
                    let _ = writeln!(out, "  thread {name}:");
                    let _ = writeln!(out, "    repeat:");
                    self.render_instrs(&mut out, body, 6);
                }
                Thread::Raw { name, ruleset } => {
                    let _ = writeln!(out, "  thread {name}:");
                    let _ = writeln!(out, "    execute ruleset:");
                    for rule in ruleset.rules() {
                        let _ = writeln!(out, "      > {}", rule.render(&self.vars));
                    }
                }
            }
        }
        out
    }

    fn render_instrs(&self, out: &mut String, instrs: &[Instr], indent: usize) {
        let pad = " ".repeat(indent);
        for instr in instrs {
            match instr {
                Instr::IfExists {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let _ = writeln!(out, "{pad}if exists ({}):", cond.render(&self.vars));
                    self.render_instrs(out, then_branch, indent + 2);
                    if !else_branch.is_empty() {
                        let _ = writeln!(out, "{pad}else:");
                        self.render_instrs(out, else_branch, indent + 2);
                    }
                }
                Instr::RepeatLog { c, body } => {
                    let _ = writeln!(out, "{pad}repeat >= {c} ln n times:");
                    self.render_instrs(out, body, indent + 2);
                }
                Instr::Execute { c, ruleset } => {
                    let _ = writeln!(out, "{pad}execute for >= {c} ln n rounds ruleset:");
                    for rule in ruleset.rules() {
                        let _ = writeln!(out, "{pad}  > {}", rule.render(&self.vars));
                    }
                }
                Instr::Assign { var, value } => match value {
                    AssignValue::Formula(g) => {
                        let _ = writeln!(
                            out,
                            "{pad}{} := {}",
                            self.vars.name(*var),
                            g.render(&self.vars)
                        );
                    }
                    AssignValue::RandomBit => {
                        let _ = writeln!(
                            out,
                            "{pad}{} := {{on, off}} chosen uniformly at random",
                            self.vars.name(*var)
                        );
                    }
                },
            }
        }
    }
}

/// Convenience constructors for instructions.
pub mod build {
    use super::*;

    /// `if exists (cond): then_branch` (no else branch).
    #[must_use]
    pub fn if_exists(cond: Guard, then_branch: Vec<Instr>) -> Instr {
        Instr::IfExists {
            cond,
            then_branch,
            else_branch: Vec::new(),
        }
    }

    /// `if exists (cond): then_branch else: else_branch`.
    #[must_use]
    pub fn if_else(cond: Guard, then_branch: Vec<Instr>, else_branch: Vec<Instr>) -> Instr {
        Instr::IfExists {
            cond,
            then_branch,
            else_branch,
        }
    }

    /// `repeat ≥ c ln n times: body`.
    #[must_use]
    pub fn repeat_log(c: u32, body: Vec<Instr>) -> Instr {
        Instr::RepeatLog { c, body }
    }

    /// `execute for ≥ c ln n rounds ruleset: ruleset`.
    #[must_use]
    pub fn execute(c: u32, ruleset: Ruleset) -> Instr {
        Instr::Execute { c, ruleset }
    }

    /// `var := formula`.
    #[must_use]
    pub fn assign(var: Var, formula: Guard) -> Instr {
        Instr::Assign {
            var,
            value: AssignValue::Formula(formula),
        }
    }

    /// `var := {on, off} chosen uniformly at random`.
    #[must_use]
    pub fn assign_coin(var: Var) -> Instr {
        Instr::Assign {
            var,
            value: AssignValue::RandomBit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use pp_rules::parse::parse_ruleset;

    fn toy_program() -> Program {
        let mut vars = VarSet::new();
        let l = vars.add("L");
        let d = vars.add("D");
        let f = vars.add("F");
        let body = vec![
            if_exists(
                Guard::var(l),
                vec![assign_coin(f), assign(d, Guard::var(l).and(Guard::var(f)))],
            ),
            if_else(
                Guard::var(d),
                vec![assign(l, Guard::var(d))],
                vec![assign(l, Guard::any())],
            ),
        ];
        Program {
            name: "LeaderElection".into(),
            vars,
            inputs: vec![],
            outputs: vec![l],
            init: vec![(l, true)],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        }
    }

    #[test]
    fn initial_state_applies_init_and_inputs() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let y = vars.add("Y");
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![a],
            outputs: vec![y],
            init: vec![(y, true)],
            derived_init: vec![],
            threads: vec![],
        };
        assert_eq!(p.initial_state(&[]), y.mask());
        assert_eq!(p.initial_state(&[a]), a.mask() | y.mask());
    }

    #[test]
    #[should_panic(expected = "not an input variable")]
    fn initial_state_validates_inputs() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![],
        };
        let _ = p.initial_state(&[a]);
    }

    #[test]
    fn loop_depth_counts_nested_repeats() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let inner = repeat_log(2, vec![assign(a, Guard::any())]);
        let outer = repeat_log(3, vec![inner]);
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body: vec![outer],
            }],
        };
        assert_eq!(p.loop_depth(), 2);
        assert_eq!(toy_program().loop_depth(), 0);
    }

    #[test]
    fn render_produces_paper_style_pseudocode() {
        let p = toy_program();
        let text = p.render();
        assert!(text.contains("def protocol LeaderElection"));
        assert!(text.contains("thread Main:"));
        assert!(text.contains("if exists (L):"));
        assert!(text.contains("F := {on, off} chosen uniformly at random"));
        assert!(text.contains("else:"));
        assert!(text.contains("L <- on as output"));
    }

    #[test]
    fn raw_threads_are_separated() {
        let mut vars = VarSet::new();
        let rs = parse_ruleset("(R) + (R) -> (R) + (!R)", &mut vars).unwrap();
        let p = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Raw {
                name: "ReduceSets".into(),
                ruleset: rs,
            }],
        };
        assert_eq!(p.raw_threads().count(), 1);
        assert_eq!(p.structured_threads().count(), 0);
        assert!(p.render().contains("execute ruleset:"));
    }

    #[test]
    fn thread_name_accessor() {
        let p = toy_program();
        assert_eq!(p.threads[0].name(), "Main");
    }
}
