//! Static checks over framework programs (`pp_lang::ast::Program`).
//!
//! These are the `PP2xx` diagnostics: data-flow hygiene (use before
//! assign, never-written outputs, writes to inputs), structural smells
//! (empty branches, inert loop bodies), and budget checks against the
//! fixed capacities of the execution substrate (clock-hierarchy levels,
//! packed-variable count). Everything here is a whole-program walk over
//! the AST — no simulation.
//!
//! Spans come from [`pp_lang::parse::ProgramSpans`] when the program was
//! parsed from text: instruction diagnostics attach to the instruction's
//! source line via a pre-order counter that mirrors the parser's pre-order
//! span recording. Built-in programs (constructed in code) lint spanless.

use crate::diag::{Diagnostic, Severity};
use pp_clocks::hierarchy::MAX_LEVELS;
use pp_lang::ast::{AssignValue, Instr, Program, Thread};
use pp_lang::parse::ProgramSpans;
use pp_lang::precompile::{lowering_flags, precompile};
use pp_rules::{Ruleset, Var, MAX_VARS};

/// Maximum `w_max` the clock-driven executor can schedule: minute count
/// `m = 4 (w_max + 1)` must fit in a `u8`.
pub const MAX_TREE_WIDTH: usize = 62;

/// Resolves instruction and rule spans for one program, when available.
pub struct ProgramLocator<'a> {
    /// Parallel span structure from `parse_program_spanned`.
    pub spans: Option<&'a ProgramSpans>,
    /// The original source text, for snippet extraction.
    pub source: Option<&'a str>,
}

impl<'a> ProgramLocator<'a> {
    /// A locator with no source information (builtins).
    #[must_use]
    pub fn none() -> Self {
        Self {
            spans: None,
            source: None,
        }
    }

    fn snippet(&self, line: usize) -> Option<String> {
        self.source
            .and_then(|s| s.lines().nth(line.saturating_sub(1)))
            .map(str::to_string)
    }

    /// Attaches the span of instruction `instr_idx` (pre-order) of thread
    /// `thread_idx` to `d`, when known.
    #[must_use]
    pub fn at_instr(&self, d: Diagnostic, thread_idx: usize, instr_idx: usize) -> Diagnostic {
        let Some(spans) = self.spans else { return d };
        let Some(instr) = spans
            .threads
            .get(thread_idx)
            .and_then(|t| t.instrs.get(instr_idx))
        else {
            return d;
        };
        let d = d.with_span(instr.span);
        match self.snippet(instr.span.line) {
            Some(s) => d.with_snippet(s),
            None => d,
        }
    }

    /// Attaches the `thread NAME:` header span of thread `thread_idx`.
    #[must_use]
    pub fn at_thread(&self, d: Diagnostic, thread_idx: usize) -> Diagnostic {
        let Some(spans) = self.spans else { return d };
        let Some(t) = spans.threads.get(thread_idx) else {
            return d;
        };
        let d = d.with_span(t.header);
        match self.snippet(t.header.line) {
            Some(s) => d.with_snippet(s),
            None => d,
        }
    }

    /// Attaches the `var …:` declaration span.
    #[must_use]
    pub fn at_decl(&self, d: Diagnostic) -> Diagnostic {
        let Some(spans) = self.spans else { return d };
        let d = d.with_span(spans.decl);
        match self.snippet(spans.decl.line) {
            Some(s) => d.with_snippet(s),
            None => d,
        }
    }
}

/// Bitmask of variables a ruleset's updates can touch (set or clear).
fn ruleset_writes(rs: &Ruleset) -> u32 {
    rs.rules()
        .iter()
        .map(|r| r.update_a.set | r.update_a.clear | r.update_b.set | r.update_b.clear)
        .fold(0, |acc, m| acc | m)
}

/// Bitmask of variables a block of instructions can write.
fn instr_writes(instrs: &[Instr]) -> u32 {
    let mut mask = 0u32;
    for instr in instrs {
        match instr {
            Instr::Assign { var, .. } => mask |= var.mask(),
            Instr::Execute { ruleset, .. } => mask |= ruleset_writes(ruleset),
            Instr::RepeatLog { body, .. } => mask |= instr_writes(body),
            Instr::IfExists {
                then_branch,
                else_branch,
                ..
            } => mask |= instr_writes(then_branch) | instr_writes(else_branch),
        }
    }
    mask
}

/// Per-instruction walk state for the data-flow checks.
struct FlowWalker<'a, 'b> {
    program: &'a Program,
    locator: &'a ProgramLocator<'b>,
    thread_idx: usize,
    /// Pre-order instruction counter within the thread (parallels
    /// `ThreadSpans::instrs`).
    counter: usize,
    diagnostics: Vec<Diagnostic>,
}

impl FlowWalker<'_, '_> {
    /// Walks a block, threading the may-assigned mask through it; returns
    /// the mask extended with everything the block may assign.
    fn walk(&mut self, instrs: &[Instr], mut assigned: u32) -> u32 {
        for instr in instrs {
            let idx = self.counter;
            self.counter += 1;
            match instr {
                Instr::Assign { var, value } => {
                    if let AssignValue::Formula(g) = value {
                        self.check_reads(&g.vars(), assigned, idx);
                    }
                    assigned |= var.mask();
                }
                Instr::IfExists {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.check_reads(&cond.vars(), assigned, idx);
                    if then_branch.is_empty() {
                        let d = Diagnostic::new(
                            "PP204",
                            Severity::Warning,
                            format!(
                                "`if exists ({})` has an empty then-branch: the test's \
                                 outcome is never acted on",
                                cond.render(&self.program.vars)
                            ),
                        );
                        self.diagnostics
                            .push(self.locator.at_instr(d, self.thread_idx, idx));
                    }
                    // May-assign: either branch could run.
                    let after_then = self.walk(then_branch, assigned);
                    let after_else = self.walk(else_branch, assigned);
                    assigned = after_then | after_else;
                }
                Instr::RepeatLog { c, body } => {
                    if instr_writes(body) == 0 {
                        let d = Diagnostic::new(
                            "PP205",
                            Severity::Warning,
                            format!(
                                "`repeat >= {c} ln n times` body writes no variable: \
                                 every iteration repeats the same work"
                            ),
                        );
                        self.diagnostics
                            .push(self.locator.at_instr(d, self.thread_idx, idx));
                    }
                    assigned = self.walk(body, assigned);
                }
                Instr::Execute { ruleset, .. } => {
                    assigned |= ruleset_writes(ruleset);
                }
            }
        }
        assigned
    }

    fn check_reads(&mut self, read: &[Var], assigned: u32, idx: usize) {
        for &v in read {
            if assigned & v.mask() == 0 {
                let d = Diagnostic::new(
                    "PP201",
                    Severity::Warning,
                    format!(
                        "{} is read here but nothing assigns it first: the read \
                         always sees `off` on the first pass",
                        self.program.vars.name(v)
                    ),
                );
                self.diagnostics
                    .push(self.locator.at_instr(d, self.thread_idx, idx));
            }
        }
    }
}

/// Runs all `PP2xx` program checks. Ruleset-level checks on embedded
/// rulesets are the caller's job (`lint` wires them up with rule spans).
#[must_use]
pub fn analyze_program(program: &Program, locator: &ProgramLocator<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Baseline may-assigned mask shared by every thread: initialization
    // plus everything *other* threads may write (threads interleave, so a
    // concurrent writer counts as a possible assigner).
    let mut init_mask = 0u32;
    for &(v, _) in &program.init {
        init_mask |= v.mask();
    }
    for &v in &program.inputs {
        init_mask |= v.mask();
    }
    for &(v, _) in &program.derived_init {
        init_mask |= v.mask();
    }

    let thread_writes: Vec<u32> = program
        .threads
        .iter()
        .map(|t| match t {
            Thread::Structured { body, .. } => instr_writes(body),
            Thread::Raw { ruleset, .. } => ruleset_writes(ruleset),
        })
        .collect();
    let all_writes: u32 = thread_writes.iter().fold(0, |acc, m| acc | m);

    // PP201 / PP204 / PP205: per structured thread.
    for (thread_idx, thread) in program.threads.iter().enumerate() {
        let Thread::Structured { body, .. } = thread else {
            continue;
        };
        let others: u32 = thread_writes
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != thread_idx)
            .fold(0, |acc, (_, m)| acc | m);
        let mut walker = FlowWalker {
            program,
            locator,
            thread_idx,
            counter: 0,
            diagnostics: Vec::new(),
        };
        let _ = walker.walk(body, init_mask | others);
        out.extend(walker.diagnostics);

        if instr_writes(body) == 0 && !body.is_empty() {
            let d = Diagnostic::new(
                "PP205",
                Severity::Warning,
                format!(
                    "thread {} writes no variable: its implicit `repeat:` loop \
                     has no effect on the population",
                    thread.name()
                ),
            );
            out.push(locator.at_thread(d, thread_idx));
        }
    }

    // PP202: outputs nobody writes.
    for &v in &program.outputs {
        if all_writes & v.mask() != 0 {
            continue;
        }
        let name = program.vars.name(v);
        let initialized = init_mask & v.mask() != 0;
        let d = if initialized {
            Diagnostic::new(
                "PP202",
                Severity::Warning,
                format!(
                    "output {name} is initialized but never written by any \
                     thread: the output is constant"
                ),
            )
        } else {
            Diagnostic::new(
                "PP202",
                Severity::Error,
                format!(
                    "output {name} is never assigned: it stays `off` for every \
                     agent regardless of input"
                ),
            )
        };
        out.push(locator.at_decl(d));
    }

    // PP203: writes to declared inputs (inputs encode the problem instance
    // and must stay readable).
    for (thread_idx, thread) in program.threads.iter().enumerate() {
        for &v in &program.inputs {
            if thread_writes[thread_idx] & v.mask() == 0 {
                continue;
            }
            let d = Diagnostic::new(
                "PP203",
                Severity::Warning,
                format!(
                    "thread {} writes input {}: the original input assignment \
                     is destroyed",
                    thread.name(),
                    program.vars.name(v)
                ),
            );
            out.push(locator.at_thread(d, thread_idx));
        }
    }

    // PP207: packed-variable budget, checked for *every* structured thread
    // (each thread's lowering mints its own flags on top of the shared
    // declared variables).
    let mut first_thread_fits = None;
    for (name, body) in program.structured_threads() {
        let flags = lowering_flags(body);
        let projected = program.vars.len() + flags;
        if first_thread_fits.is_none() {
            first_thread_fits = Some(projected <= MAX_VARS);
        }
        if projected > MAX_VARS {
            let d = Diagnostic::new(
                "PP207",
                Severity::Warning,
                format!(
                    "precompiling thread {name} needs {projected} packed \
                     variables ({} declared + {flags} lowering flags) but \
                     only {MAX_VARS} bits are available",
                    program.vars.len()
                ),
            );
            out.push(locator.at_decl(d));
        }
    }

    // PP206: tree-shape budgets of the clock hierarchy. Only the first
    // structured thread is precompiled, matching `precompile` — and only
    // when it fits the flag budget (otherwise lowering cannot even run).
    if first_thread_fits == Some(true) {
        let tree = precompile(program);
        if tree.l_max > MAX_LEVELS {
            let d = Diagnostic::new(
                "PP206",
                Severity::Warning,
                format!(
                    "compiled tree has {} loop levels but the clock \
                     hierarchy supports at most {MAX_LEVELS}: deepen \
                     `repeat` nesting no further",
                    tree.l_max
                ),
            );
            out.push(locator.at_decl(d));
        }
        if tree.w_max > MAX_TREE_WIDTH {
            let d = Diagnostic::new(
                "PP206",
                Severity::Warning,
                format!(
                    "compiled tree has width {} but the minute wheel caps \
                     it at {MAX_TREE_WIDTH} (m = 4(w_max+1) must fit u8)",
                    tree.w_max
                ),
            );
            out.push(locator.at_decl(d));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_lang::ast::build;
    use pp_lang::parse::parse_program_spanned;
    use pp_rules::{Guard, VarSet};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    fn program_with_body(body: Vec<Instr>) -> (Program, Var, Var) {
        let mut vars = VarSet::new();
        let x = vars.add("X");
        let y = vars.add("Y");
        (
            Program {
                name: "t".into(),
                vars,
                inputs: vec![],
                outputs: vec![],
                init: vec![],
                derived_init: vec![],
                threads: vec![Thread::Structured {
                    name: "Main".into(),
                    body,
                }],
            },
            x,
            y,
        )
    }

    #[test]
    fn use_before_assign_flags_unwritten_reads() {
        // Y := X where X is never assigned anywhere.
        let (mut program, x, y) = program_with_body(vec![]);
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(y, Guard::var(x))],
        }];
        let diags = analyze_program(&program, &ProgramLocator::none());
        assert!(codes(&diags).contains(&"PP201"), "{diags:?}");
    }

    #[test]
    fn assignment_in_either_branch_counts() {
        // if exists(Y): X := on else: X := off — then read X: no warning.
        let (mut program, x, y) = program_with_body(vec![]);
        program.init = vec![(y, true)];
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![
                build::if_else(
                    Guard::var(y),
                    vec![build::assign(x, Guard::any())],
                    vec![build::assign(x, Guard::var(y))],
                ),
                build::assign(y, Guard::var(x)),
            ],
        }];
        let diags = analyze_program(&program, &ProgramLocator::none());
        assert!(!codes(&diags).contains(&"PP201"), "{diags:?}");
    }

    #[test]
    fn writes_by_other_threads_count_as_assignments() {
        let mut vars = VarSet::new();
        let x = vars.add("X");
        let y = vars.add("Y");
        let writer = pp_rules::parse::parse_ruleset("(.) + (.) -> (X) + (.)", &mut vars).unwrap();
        let program = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![
                Thread::Structured {
                    name: "Main".into(),
                    body: vec![build::assign(y, Guard::var(x))],
                },
                Thread::Raw {
                    name: "Writer".into(),
                    ruleset: writer,
                },
            ],
        };
        let diags = analyze_program(&program, &ProgramLocator::none());
        assert!(!codes(&diags).contains(&"PP201"), "{diags:?}");
    }

    #[test]
    fn never_written_output_is_an_error_when_uninitialized() {
        let (mut program, x, y) = program_with_body(vec![]);
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(x, Guard::any())],
        }];
        program.outputs = vec![y];
        let diags = analyze_program(&program, &ProgramLocator::none());
        let d = diags.iter().find(|d| d.code == "PP202").expect("PP202");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("never assigned"), "{}", d.message);
    }

    #[test]
    fn never_written_output_is_a_warning_when_constant() {
        let (mut program, x, y) = program_with_body(vec![]);
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(x, Guard::any())],
        }];
        program.outputs = vec![y];
        program.init = vec![(y, true)];
        let diags = analyze_program(&program, &ProgramLocator::none());
        let d = diags.iter().find(|d| d.code == "PP202").expect("PP202");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("constant"), "{}", d.message);
    }

    #[test]
    fn input_writes_are_flagged_per_thread() {
        let (mut program, x, _) = program_with_body(vec![]);
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::assign(x, Guard::any())],
        }];
        program.inputs = vec![x];
        let diags = analyze_program(&program, &ProgramLocator::none());
        let d = diags.iter().find(|d| d.code == "PP203").expect("PP203");
        assert!(d.message.contains("thread Main"), "{}", d.message);
    }

    #[test]
    fn empty_then_branch_and_inert_repeat_warn() {
        let (mut program, x, y) = program_with_body(vec![]);
        program.init = vec![(x, true)];
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![
                build::if_exists(Guard::var(x), vec![]),
                build::repeat_log(2, vec![build::if_exists(Guard::var(x), vec![])]),
                build::assign(y, Guard::var(x)),
            ],
        }];
        let diags = analyze_program(&program, &ProgramLocator::none());
        let c = codes(&diags);
        assert_eq!(c.iter().filter(|&&c| c == "PP204").count(), 2, "{diags:?}");
        assert!(c.contains(&"PP205"), "{diags:?}");
    }

    #[test]
    fn inert_thread_warns_once() {
        let (mut program, x, _) = program_with_body(vec![]);
        program.init = vec![(x, true)];
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![build::if_exists(Guard::var(x), vec![])],
        }];
        let diags = analyze_program(&program, &ProgramLocator::none());
        assert!(codes(&diags).contains(&"PP205"), "{diags:?}");
    }

    #[test]
    fn deep_nesting_exceeds_clock_levels() {
        let (mut program, x, _) = program_with_body(vec![]);
        // 4 nested repeats + implicit outer = l_max 5 > MAX_LEVELS 4.
        let mut body = vec![build::assign(x, Guard::any())];
        for _ in 0..4 {
            body = vec![build::repeat_log(2, body)];
        }
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body,
        }];
        let diags = analyze_program(&program, &ProgramLocator::none());
        let d = diags.iter().find(|d| d.code == "PP206").expect("PP206");
        assert!(d.message.contains("loop levels"), "{}", d.message);
    }

    #[test]
    fn variable_budget_counts_lowering_flags() {
        let mut vars = VarSet::new();
        let first = vars.add("V0");
        for i in 1..15 {
            let _ = vars.add(&format!("V{i}"));
        }
        // 15 declared vars + 6 assignments = 21 > 20.
        let body: Vec<Instr> = (0..6).map(|_| build::assign(first, Guard::any())).collect();
        let program = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        };
        let diags = analyze_program(&program, &ProgramLocator::none());
        let d = diags.iter().find(|d| d.code == "PP207").expect("PP207");
        assert!(d.message.contains("21"), "{}", d.message);
        // PP207 suppresses the precompile-based PP206 checks.
        assert!(!codes(&diags).contains(&"PP206"));
    }

    #[test]
    fn variable_budget_checks_every_structured_thread() {
        let mut vars = VarSet::new();
        let first = vars.add("V0");
        for i in 1..18 {
            let _ = vars.add(&format!("V{i}"));
        }
        // Thread A: 18 declared + 1 flag = 19, fits. Thread B: 18 + 3 = 21,
        // over budget. Thread C: 18 + 4 = 22, over budget.
        let assigns = |k: usize| -> Vec<Instr> {
            (0..k).map(|_| build::assign(first, Guard::any())).collect()
        };
        let program = Program {
            name: "t".into(),
            vars,
            inputs: vec![],
            outputs: vec![],
            init: vec![],
            derived_init: vec![],
            threads: vec![
                Thread::Structured {
                    name: "A".into(),
                    body: assigns(1),
                },
                Thread::Structured {
                    name: "B".into(),
                    body: assigns(3),
                },
                Thread::Structured {
                    name: "C".into(),
                    body: assigns(4),
                },
            ],
        };
        let diags = analyze_program(&program, &ProgramLocator::none());
        let pp207: Vec<_> = diags.iter().filter(|d| d.code == "PP207").collect();
        assert_eq!(pp207.len(), 2, "one diagnostic per over-budget thread");
        assert!(pp207[0].message.contains("thread B needs 21 packed"));
        assert!(pp207[1].message.contains("thread C needs 22 packed"));
        // The first thread fits, so the PP206 tree checks still run (and
        // pass silently here).
        assert!(!codes(&diags).contains(&"PP206"));
    }

    #[test]
    fn diagnostics_attach_to_instruction_lines() {
        let source = "\
def protocol T
  var X, Y as output:
  thread Main:
    repeat:
      if exists (X):
      Y := X
";
        let (program, spans) = parse_program_spanned(source).unwrap();
        let locator = ProgramLocator {
            spans: Some(&spans),
            source: Some(source),
        };
        let diags = analyze_program(&program, &locator);
        let empty = diags.iter().find(|d| d.code == "PP204").expect("PP204");
        assert_eq!(empty.span.unwrap().line, 5, "{empty:?}");
        assert!(
            empty.snippet.as_deref().unwrap().contains("if exists"),
            "{empty:?}"
        );
        let uba = diags
            .iter()
            .filter(|d| d.code == "PP201")
            .collect::<Vec<_>>();
        // X is read twice (cond + rhs) and never assigned.
        assert_eq!(uba.len(), 2, "{diags:?}");
        assert_eq!(uba[0].span.unwrap().line, 5);
        assert_eq!(uba[1].span.unwrap().line, 6);
    }

    #[test]
    fn clean_program_stays_clean() {
        let (mut program, x, y) = program_with_body(vec![]);
        program.outputs = vec![y];
        program.threads = vec![Thread::Structured {
            name: "Main".into(),
            body: vec![
                build::assign(x, Guard::any()),
                build::assign(y, Guard::var(x)),
            ],
        }];
        let diags = analyze_program(&program, &ProgramLocator::none());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
