//! `{0, ≥1}`-support reachability: a sound abstraction of which packed
//! agent states can ever occur, given the declared initial supports.
//!
//! The abstraction tracks only the *support* of a configuration — the set
//! of states held by at least one agent — and closes it under all
//! transitions, ignoring counts:
//!
//! * a rule can rewrite an initiator in state `a` whenever some state in
//!   the support satisfies the responder guard (and symmetrically);
//! * a population-wide assignment `X := Σ` maps every supported state
//!   through the assignment (the old states are conservatively *kept*,
//!   since threads interleave and agents may be mid-interaction);
//! * a coin assignment adds both outcomes.
//!
//! Ignoring counts and keeping superseded states only ever *adds* states,
//! so the closure over-approximates every real execution: if a state (or
//! a rule's firing) is unreachable here, it is unreachable in every run
//! from the declared initial supports. The converse does not hold — the
//! abstraction may consider states reachable that no real run produces —
//! which is why PP105/PP106 findings are warnings, not errors.
//!
//! The closure runs over the full `2^k` packed state space and is skipped
//! (with an info diagnostic) when `k >` [`REACH_VAR_CAP`].

use crate::diag::{Diagnostic, Severity};
use crate::ruleset::RuleLocator;
use pp_rules::{Guard, Ruleset, Var, VarSet};

/// Maximum variable count for the support closure (2^16 states).
pub const REACH_VAR_CAP: usize = 16;

/// An abstract population-wide assignment transition.
#[derive(Debug, Clone)]
pub enum AbstractAssign {
    /// `var := formula` evaluated on each agent's own state.
    Formula(Var, Guard),
    /// `var := {on, off}` — both outcomes possible.
    Coin(Var),
}

/// The model handed to the support closure: everything that can rewrite
/// agent states, plus the initial supports.
#[derive(Debug, Clone, Default)]
pub struct SupportModel<'a> {
    /// All rulesets that can ever run (raw threads, `execute` blocks).
    pub rulesets: Vec<&'a Ruleset>,
    /// All population-wide assignments that can ever run.
    pub assigns: Vec<AbstractAssign>,
    /// The declared initial supports (packed states present at time 0).
    pub initial: Vec<u32>,
}

/// The result of the support closure.
#[derive(Debug, Clone)]
pub struct SupportClosure {
    /// `reachable[s]` is true when packed state `s` may occur.
    pub reachable: Vec<bool>,
    /// True when the state space exceeded [`REACH_VAR_CAP`] and the
    /// closure was not computed (all queries answer "reachable").
    pub skipped: bool,
}

impl SupportClosure {
    /// Whether packed state `s` may occur (always true when skipped).
    #[must_use]
    pub fn may_occur(&self, s: u32) -> bool {
        self.skipped || self.reachable.get(s as usize).copied().unwrap_or(false)
    }

    /// Whether some reachable state satisfies the guard.
    #[must_use]
    pub fn any_satisfies(&self, guard: &Guard) -> bool {
        if self.skipped {
            return true;
        }
        self.reachable
            .iter()
            .enumerate()
            .any(|(s, &r)| r && guard.eval(s as u32))
    }

    /// Number of reachable states (0 when skipped).
    #[must_use]
    pub fn count(&self) -> usize {
        self.reachable.iter().filter(|&&r| r).count()
    }
}

/// Computes the support closure for `model` over `vars`.
#[must_use]
pub fn support_closure(vars: &VarSet, model: &SupportModel<'_>) -> SupportClosure {
    if vars.len() > REACH_VAR_CAP {
        return SupportClosure {
            reachable: Vec::new(),
            skipped: true,
        };
    }
    let n = vars.num_states();
    let mut reachable = vec![false; n];
    for &s in &model.initial {
        reachable[(s as usize) % n] = true;
    }
    loop {
        let mut changed = false;
        let mut add = |reachable: &mut Vec<bool>, s: u32| {
            let s = s as usize;
            if !reachable[s] {
                reachable[s] = true;
                changed = true;
            }
        };
        for ruleset in &model.rulesets {
            for rule in ruleset.rules() {
                let a_matches: Vec<u32> = (0..n as u32)
                    .filter(|&s| reachable[s as usize] && rule.guard_a.eval(s))
                    .collect();
                let b_matches: Vec<u32> = (0..n as u32)
                    .filter(|&s| reachable[s as usize] && rule.guard_b.eval(s))
                    .collect();
                if !b_matches.is_empty() {
                    for &a in &a_matches {
                        add(&mut reachable, rule.update_a.apply(a));
                    }
                }
                if !a_matches.is_empty() {
                    for &b in &b_matches {
                        add(&mut reachable, rule.update_b.apply(b));
                    }
                }
            }
        }
        for assign in &model.assigns {
            for s in 0..n as u32 {
                if !reachable[s as usize] {
                    continue;
                }
                match assign {
                    AbstractAssign::Formula(v, g) => {
                        add(&mut reachable, v.assign(s, g.eval(s)));
                    }
                    AbstractAssign::Coin(v) => {
                        add(&mut reachable, v.assign(s, true));
                        add(&mut reachable, v.assign(s, false));
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    SupportClosure {
        reachable,
        skipped: false,
    }
}

/// PP105: rules that can never fire from the declared initial supports.
///
/// A rule fires only when some reachable state satisfies its initiator
/// guard *and* some reachable state satisfies its responder guard; the
/// closure over-approximates reachability, so "never" here is sound.
#[must_use]
pub fn unreachable_rules(
    vars: &VarSet,
    ruleset: &Ruleset,
    closure: &SupportClosure,
    locator: RuleLocator<'_>,
    label: &str,
) -> Vec<Diagnostic> {
    if closure.skipped {
        return Vec::new();
    }
    let ctx = if label.is_empty() {
        String::new()
    } else {
        format!(" in {label}")
    };
    let mut out = Vec::new();
    for (i, rule) in ruleset.rules().iter().enumerate() {
        let a_ok = closure.any_satisfies(&rule.guard_a);
        let b_ok = closure.any_satisfies(&rule.guard_b);
        if !(a_ok && b_ok) {
            let side = if a_ok { "responder" } else { "initiator" };
            out.push(locator.attach(
                Diagnostic::new(
                    "PP105",
                    Severity::Warning,
                    format!(
                        "rule{ctx} can never fire: no state reachable from the declared \
                         initial support satisfies the {side} guard of `{}`",
                        rule.render(vars)
                    ),
                ),
                i,
            ));
        }
    }
    out
}

/// PP106: possible non-silent executions — the per-agent rewrite graph,
/// restricted to reachable states, has a cycle that no edge leaves.
///
/// Soundness runs the other way from PP105: if the rewrite graph is
/// acyclic, every agent changes state finitely often, so all executions
/// become silent. A cycle therefore only indicates *possible* perpetual
/// activity (the abstraction cannot tell whether real counts sustain it) —
/// hence a warning. Only cycles confined to a bottom strongly connected
/// component are reported: a cycle with an escape edge may be a normal
/// transient.
#[must_use]
pub fn non_silent_cycles(
    vars: &VarSet,
    rulesets: &[&Ruleset],
    closure: &SupportClosure,
) -> Vec<Diagnostic> {
    if closure.skipped {
        return Vec::new();
    }
    let n = closure.reachable.len();
    // Per-agent rewrite edges s -> s' (s' != s) enabled within the closure.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for ruleset in rulesets {
        for rule in ruleset.rules() {
            let partner_a = closure.any_satisfies(&rule.guard_b);
            let partner_b = closure.any_satisfies(&rule.guard_a);
            for s in 0..n as u32 {
                if !closure.reachable[s as usize] {
                    continue;
                }
                if partner_a && rule.guard_a.eval(s) {
                    let t = rule.update_a.apply(s);
                    if t != s {
                        edges[s as usize].push(t as usize);
                    }
                }
                if partner_b && rule.guard_b.eval(s) {
                    let t = rule.update_b.apply(s);
                    if t != s {
                        edges[s as usize].push(t as usize);
                    }
                }
            }
        }
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }

    let scc = strongly_connected_components(&edges);
    // A cycle over the varying bits recurs once per combination of the
    // untouched bits, so group components by their shape — the set of
    // varying bits plus the states projected onto them — and report each
    // shape once (from its simplest representative).
    struct CycleShape {
        varying: u32,
        projected: Vec<u32>,
        representative: Vec<usize>,
        contexts: usize,
    }
    let mut shapes: Vec<CycleShape> = Vec::new();
    for component in &scc {
        if component.len() < 2 {
            continue; // single state, no self-edges possible (t != s)
        }
        let escapes = component
            .iter()
            .any(|&s| edges[s].iter().any(|t| !component.contains(t)));
        if escapes {
            continue;
        }
        let or = component.iter().fold(0u32, |m, &s| m | s as u32);
        let and = component.iter().fold(u32::MAX, |m, &s| m & s as u32);
        let varying = or & !and;
        let mut projected: Vec<u32> = component.iter().map(|&s| s as u32 & varying).collect();
        projected.sort_unstable();
        match shapes
            .iter_mut()
            .find(|sh| sh.varying == varying && sh.projected == projected)
        {
            Some(shape) => {
                shape.contexts += 1;
                if component.iter().sum::<usize>() < shape.representative.iter().sum::<usize>() {
                    shape.representative = component.clone();
                }
            }
            None => shapes.push(CycleShape {
                varying,
                projected,
                representative: component.clone(),
                contexts: 1,
            }),
        }
    }
    let mut out = Vec::new();
    for shape in &shapes {
        let mut names: Vec<String> = shape
            .representative
            .iter()
            .take(4)
            .map(|&s| vars.render_state(s as u32))
            .collect();
        names.sort();
        let more = if shape.representative.len() > 4 {
            ", …"
        } else {
            ""
        };
        let recurs = match shape.contexts {
            0 | 1 => String::new(),
            2 => "; the same cycle recurs in 1 other variable context".to_string(),
            n => format!(
                "; the same cycle recurs in {} other variable contexts",
                n - 1
            ),
        };
        out.push(Diagnostic::new(
            "PP106",
            Severity::Warning,
            format!(
                "possible non-silent execution: reachable states can cycle forever \
                 ({}{more}) with no rewrite leaving the cycle{recurs}",
                names.join(" ⇄ ")
            ),
        ));
    }
    out
}

/// Iterative Tarjan SCC over an adjacency list; returns components as
/// sorted vertex lists.
fn strongly_connected_components(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS stack: (vertex, next child offset).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = dfs.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if child < edges[v].len() {
                dfs.last_mut().expect("nonempty").1 += 1;
                let w = edges[v][child];
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rules::parse::parse_ruleset;

    fn closure_of(text: &str, initial_names: &[&[&str]]) -> (VarSet, Ruleset, SupportClosure) {
        let mut vars = VarSet::new();
        let ruleset = parse_ruleset(text, &mut vars).unwrap();
        let initial: Vec<u32> = initial_names
            .iter()
            .map(|names| {
                let on: Vec<Var> = names.iter().map(|n| vars.get(n).unwrap()).collect();
                vars.state_with(&on)
            })
            .collect();
        let model = SupportModel {
            rulesets: vec![&ruleset],
            assigns: Vec::new(),
            initial,
        };
        let closure = support_closure(&vars, &model);
        (vars, ruleset, closure)
    }

    #[test]
    fn epidemic_reaches_all_infected() {
        let (vars, _, closure) = closure_of("(I) + (!I) -> (I) + (I)", &[&["I"], &[]]);
        let i = vars.get("I").unwrap();
        assert!(closure.may_occur(i.mask()));
        assert!(closure.may_occur(0));
        assert_eq!(closure.count(), 2);
    }

    #[test]
    fn unreachable_state_stays_unreachable() {
        // Nothing ever sets B.
        let (vars, _, closure) = closure_of("(A) + (.) -> (!A) + (.)", &[&["A"]]);
        let b = vars.get("B");
        assert!(b.is_none(), "B is never declared");
        let a = vars.get("A").unwrap();
        assert!(closure.may_occur(a.mask()));
        assert!(closure.may_occur(0));
    }

    #[test]
    fn rule_needing_partner_state_fires_only_when_present() {
        // (B) responder is required but B never occurs.
        let text = "(A) + (B) -> (!A) + (B)\n(A) + (.) -> (A) + (.)";
        let (vars, ruleset, closure) = closure_of(text, &[&["A"]]);
        let diags = unreachable_rules(&vars, &ruleset, &closure, RuleLocator::default(), "");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "PP105");
        assert!(diags[0].message.contains("responder"), "{diags:?}");
        // And !A must not be considered reachable via the dead rule.
        let a = vars.get("A").unwrap();
        assert_eq!(closure.count(), 1, "only the initial A state");
        assert!(closure.may_occur(a.mask()));
    }

    #[test]
    fn assignments_extend_the_support() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let b = vars.add("B");
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: vec![AbstractAssign::Formula(b, Guard::var(a))],
            initial: vec![a.mask()],
        };
        let closure = support_closure(&vars, &model);
        assert!(closure.may_occur(a.mask() | b.mask()));
        assert!(!closure.may_occur(b.mask()), "B alone requires A off");
    }

    #[test]
    fn coin_assignment_adds_both_outcomes() {
        let mut vars = VarSet::new();
        let f = vars.add("F");
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: vec![AbstractAssign::Coin(f)],
            initial: vec![0],
        };
        let closure = support_closure(&vars, &model);
        assert!(closure.may_occur(0));
        assert!(closure.may_occur(f.mask()));
    }

    #[test]
    fn closed_cycle_reports_non_silence() {
        // {} -> {R} (spread) and {R} -> {} (skeptic clears): a closed
        // two-state cycle, nothing escapes.
        let text = "(R) + (!R & !S) -> (R) + (R)\n(S) + (R) -> (S) + (!R)";
        let (vars, ruleset, closure) = closure_of(text, &[&["R"], &["S"], &[]]);
        let diags = non_silent_cycles(&vars, &[&ruleset], &closure);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "PP106");
    }

    #[test]
    fn one_way_rewrites_are_silent() {
        // Fratricide only ever clears L: acyclic, hence silent.
        let (vars, ruleset, closure) = closure_of("(L) + (L) -> (L) + (!L)", &[&["L"]]);
        let diags = non_silent_cycles(&vars, &[&ruleset], &closure);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn escaping_cycle_not_reported() {
        // A <-> B cycle, but C escapes it for good once taken.
        let text = "(A) + (.) -> (!A & B) + (.)\n\
                    (B & !C) + (.) -> (A & !B) + (.)\n\
                    (B) + (.) -> (C & !B & !A) + (.)";
        let (vars, ruleset, closure) = closure_of(text, &[&["A"]]);
        let diags = non_silent_cycles(&vars, &[&ruleset], &closure);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn oversized_state_space_is_skipped() {
        let mut vars = VarSet::new();
        for i in 0..(REACH_VAR_CAP + 1) {
            vars.add(&format!("V{i}"));
        }
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: Vec::new(),
            initial: vec![0],
        };
        let closure = support_closure(&vars, &model);
        assert!(closure.skipped);
        assert!(closure.may_occur(12345), "skipped closure answers 'maybe'");
    }

    #[test]
    fn tarjan_finds_components() {
        // 0 -> 1 -> 2 -> 0 (cycle), 3 -> 0 (feeder), 4 isolated.
        let edges = vec![vec![1], vec![2], vec![0], vec![0], vec![]];
        let mut sccs = strongly_connected_components(&edges);
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
        assert!(sccs.contains(&vec![4]));
    }
}
