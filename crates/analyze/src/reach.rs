//! Reachability-based diagnostics on top of the `{0, ≥1}`-support closure.
//!
//! The closure itself lives in [`pp_rules::reach`] (re-exported here), so
//! the enumeration compiler in `pp-lang` and these lint checks run on the
//! *same* abstraction — what the analyzer proves unreachable is exactly
//! what the compiler strips, and the compiler's post-enumeration
//! verification re-checks the analyzer's claims against the enumerated
//! state set (see `pp_lang::enumerate`).
//!
//! Soundness of the diagnostics:
//!
//! * [`unreachable_rules`] (PP105) — the closure over-approximates
//!   support, so a rule with no reachable witness for one of its guards
//!   can never fire in any real run. The converse does not hold, hence a
//!   warning.
//! * [`non_silent_cycles`] (PP106) — if the per-agent rewrite graph over
//!   reachable states is acyclic, every agent changes state finitely often
//!   and all executions become silent; a closed cycle only indicates
//!   *possible* perpetual activity.

use crate::diag::{Diagnostic, Severity};
use crate::ruleset::RuleLocator;
pub use pp_rules::reach::{
    support_closure, AbstractAssign, SupportClosure, SupportModel, REACH_VAR_CAP,
};
use pp_rules::{Ruleset, VarSet};

/// PP105: rules that can never fire from the declared initial supports.
///
/// A rule fires only when some reachable state satisfies its initiator
/// guard *and* some reachable state satisfies its responder guard; the
/// closure over-approximates reachability, so "never" here is sound.
#[must_use]
pub fn unreachable_rules(
    vars: &VarSet,
    ruleset: &Ruleset,
    closure: &SupportClosure,
    locator: RuleLocator<'_>,
    label: &str,
) -> Vec<Diagnostic> {
    if closure.skipped {
        return Vec::new();
    }
    let ctx = if label.is_empty() {
        String::new()
    } else {
        format!(" in {label}")
    };
    let mut out = Vec::new();
    for (i, rule) in ruleset.rules().iter().enumerate() {
        let a_ok = closure.any_satisfies(&rule.guard_a);
        let b_ok = closure.any_satisfies(&rule.guard_b);
        if !(a_ok && b_ok) {
            let side = if a_ok { "responder" } else { "initiator" };
            out.push(locator.attach(
                Diagnostic::new(
                    "PP105",
                    Severity::Warning,
                    format!(
                        "rule{ctx} can never fire: no state reachable from the declared \
                         initial support satisfies the {side} guard of `{}`",
                        rule.render(vars)
                    ),
                ),
                i,
            ));
        }
    }
    out
}

/// PP106: possible non-silent executions — the per-agent rewrite graph,
/// restricted to reachable states, has a cycle that no edge leaves.
///
/// Soundness runs the other way from PP105: if the rewrite graph is
/// acyclic, every agent changes state finitely often, so all executions
/// become silent. A cycle therefore only indicates *possible* perpetual
/// activity (the abstraction cannot tell whether real counts sustain it) —
/// hence a warning. Only cycles confined to a bottom strongly connected
/// component are reported: a cycle with an escape edge may be a normal
/// transient.
#[must_use]
pub fn non_silent_cycles(
    vars: &VarSet,
    rulesets: &[&Ruleset],
    closure: &SupportClosure,
) -> Vec<Diagnostic> {
    if closure.skipped {
        return Vec::new();
    }
    // The rewrite graph is built over dense live-state indices (the closure
    // is closed under enabled rewrites, so every target is itself live);
    // work scales with the live count, not the 2^k space.
    let live = &closure.live;
    let idx_of = |t: u32| -> usize {
        live.binary_search(&t)
            .expect("closure is closed under enabled rewrites")
    };
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    for ruleset in rulesets {
        for rule in ruleset.rules() {
            let partner_a = closure.any_satisfies(&rule.guard_b);
            let partner_b = closure.any_satisfies(&rule.guard_a);
            if !partner_a && !partner_b {
                continue;
            }
            for (i, &s) in live.iter().enumerate() {
                if partner_a && rule.guard_a.eval(s) {
                    let t = rule.update_a.apply(s);
                    if t != s {
                        edges[i].push(idx_of(t));
                    }
                }
                if partner_b && rule.guard_b.eval(s) {
                    let t = rule.update_b.apply(s);
                    if t != s {
                        edges[i].push(idx_of(t));
                    }
                }
            }
        }
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }

    let scc = strongly_connected_components(&edges);
    // A cycle over the varying bits recurs once per combination of the
    // untouched bits, so group components by their shape — the set of
    // varying bits plus the states projected onto them — and report each
    // shape once (from its simplest representative). Components hold live
    // indices; shapes are computed over the packed states behind them.
    struct CycleShape {
        varying: u32,
        projected: Vec<u32>,
        representative: Vec<usize>,
        contexts: usize,
    }
    let mut shapes: Vec<CycleShape> = Vec::new();
    for component in &scc {
        if component.len() < 2 {
            continue; // single state, no self-edges possible (t != s)
        }
        let escapes = component
            .iter()
            .any(|&s| edges[s].iter().any(|t| !component.contains(t)));
        if escapes {
            continue;
        }
        let or = component.iter().fold(0u32, |m, &s| m | live[s]);
        let and = component.iter().fold(u32::MAX, |m, &s| m & live[s]);
        let varying = or & !and;
        let mut projected: Vec<u32> = component.iter().map(|&s| live[s] & varying).collect();
        projected.sort_unstable();
        let packed_sum = |c: &[usize]| c.iter().map(|&s| live[s] as u64).sum::<u64>();
        match shapes
            .iter_mut()
            .find(|sh| sh.varying == varying && sh.projected == projected)
        {
            Some(shape) => {
                shape.contexts += 1;
                if packed_sum(component) < packed_sum(&shape.representative) {
                    shape.representative = component.clone();
                }
            }
            None => shapes.push(CycleShape {
                varying,
                projected,
                representative: component.clone(),
                contexts: 1,
            }),
        }
    }
    let mut out = Vec::new();
    for shape in &shapes {
        let mut names: Vec<String> = shape
            .representative
            .iter()
            .take(4)
            .map(|&s| vars.render_state(live[s]))
            .collect();
        names.sort();
        let more = if shape.representative.len() > 4 {
            ", …"
        } else {
            ""
        };
        let recurs = match shape.contexts {
            0 | 1 => String::new(),
            2 => "; the same cycle recurs in 1 other variable context".to_string(),
            n => format!(
                "; the same cycle recurs in {} other variable contexts",
                n - 1
            ),
        };
        out.push(Diagnostic::new(
            "PP106",
            Severity::Warning,
            format!(
                "possible non-silent execution: reachable states can cycle forever \
                 ({}{more}) with no rewrite leaving the cycle{recurs}",
                names.join(" ⇄ ")
            ),
        ));
    }
    out
}

/// Iterative Tarjan SCC over an adjacency list; returns components as
/// sorted vertex lists.
fn strongly_connected_components(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS stack: (vertex, next child offset).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = dfs.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if child < edges[v].len() {
                dfs.last_mut().expect("nonempty").1 += 1;
                let w = edges[v][child];
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rules::parse::parse_ruleset;
    use pp_rules::{Guard, Var, MAX_VARS};

    fn closure_of(text: &str, initial_names: &[&[&str]]) -> (VarSet, Ruleset, SupportClosure) {
        let mut vars = VarSet::new();
        let ruleset = parse_ruleset(text, &mut vars).unwrap();
        let initial: Vec<u32> = initial_names
            .iter()
            .map(|names| {
                let on: Vec<Var> = names.iter().map(|n| vars.get(n).unwrap()).collect();
                vars.state_with(&on)
            })
            .collect();
        let model = SupportModel {
            rulesets: vec![&ruleset],
            assigns: Vec::new(),
            initial,
        };
        let closure = support_closure(&vars, &model);
        (vars, ruleset, closure)
    }

    #[test]
    fn epidemic_reaches_all_infected() {
        let (vars, _, closure) = closure_of("(I) + (!I) -> (I) + (I)", &[&["I"], &[]]);
        let i = vars.get("I").unwrap();
        assert!(closure.may_occur(i.mask()));
        assert!(closure.may_occur(0));
        assert_eq!(closure.count(), 2);
    }

    #[test]
    fn unreachable_state_stays_unreachable() {
        // Nothing ever sets B.
        let (vars, _, closure) = closure_of("(A) + (.) -> (!A) + (.)", &[&["A"]]);
        let b = vars.get("B");
        assert!(b.is_none(), "B is never declared");
        let a = vars.get("A").unwrap();
        assert!(closure.may_occur(a.mask()));
        assert!(closure.may_occur(0));
    }

    #[test]
    fn rule_needing_partner_state_fires_only_when_present() {
        // (B) responder is required but B never occurs.
        let text = "(A) + (B) -> (!A) + (B)\n(A) + (.) -> (A) + (.)";
        let (vars, ruleset, closure) = closure_of(text, &[&["A"]]);
        let diags = unreachable_rules(&vars, &ruleset, &closure, RuleLocator::default(), "");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "PP105");
        assert!(diags[0].message.contains("responder"), "{diags:?}");
        // And !A must not be considered reachable via the dead rule.
        let a = vars.get("A").unwrap();
        assert_eq!(closure.count(), 1, "only the initial A state");
        assert!(closure.may_occur(a.mask()));
    }

    #[test]
    fn assignments_extend_the_support() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let b = vars.add("B");
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: vec![AbstractAssign::Formula(b, Guard::var(a))],
            initial: vec![a.mask()],
        };
        let closure = support_closure(&vars, &model);
        assert!(closure.may_occur(a.mask() | b.mask()));
        assert!(!closure.may_occur(b.mask()), "B alone requires A off");
    }

    #[test]
    fn closed_cycle_reports_non_silence() {
        // {} -> {R} (spread) and {R} -> {} (skeptic clears): a closed
        // two-state cycle, nothing escapes.
        let text = "(R) + (!R & !S) -> (R) + (R)\n(S) + (R) -> (S) + (!R)";
        let (vars, ruleset, closure) = closure_of(text, &[&["R"], &["S"], &[]]);
        let diags = non_silent_cycles(&vars, &[&ruleset], &closure);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "PP106");
    }

    #[test]
    fn one_way_rewrites_are_silent() {
        // Fratricide only ever clears L: acyclic, hence silent.
        let (vars, ruleset, closure) = closure_of("(L) + (L) -> (L) + (!L)", &[&["L"]]);
        let diags = non_silent_cycles(&vars, &[&ruleset], &closure);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn escaping_cycle_not_reported() {
        // A <-> B cycle, but C escapes it for good once taken.
        let text = "(A) + (.) -> (!A & B) + (.)\n\
                    (B & !C) + (.) -> (A & !B) + (.)\n\
                    (B) + (.) -> (C & !B & !A) + (.)";
        let (vars, ruleset, closure) = closure_of(text, &[&["A"]]);
        let diags = non_silent_cycles(&vars, &[&ruleset], &closure);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn full_variable_budget_gets_a_closure() {
        // The cap now equals the packing budget: a MAX_VARS-variable space
        // (previously skipped above 16) computes a real closure, so
        // reachability checks cover every representable protocol.
        assert_eq!(REACH_VAR_CAP, MAX_VARS);
        let mut vars = VarSet::new();
        for i in 0..MAX_VARS {
            vars.add(&format!("V{i}"));
        }
        let model = SupportModel {
            rulesets: Vec::new(),
            assigns: Vec::new(),
            initial: vec![0],
        };
        let closure = support_closure(&vars, &model);
        assert!(!closure.skipped);
        assert_eq!(closure.count(), 1);
        assert!(!closure.may_occur(12345));
    }

    #[test]
    fn tarjan_finds_components() {
        // 0 -> 1 -> 2 -> 0 (cycle), 3 -> 0 (feeder), 4 isolated.
        let edges = vec![vec![1], vec![2], vec![0], vec![0], vec![]];
        let mut sccs = strongly_connected_components(&edges);
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
        assert!(sccs.contains(&vec![4]));
    }
}
