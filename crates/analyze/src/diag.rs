//! Diagnostics: severities, codes, spans, and rendering.
//!
//! Every finding of the analyzer is a [`Diagnostic`] carrying a stable
//! code (`PP0xx` parse shape, `PP1xx` ruleset, `PP2xx` program), a
//! severity, an optional source [`Span`], and — when the source text is
//! available — the offending line for caret rendering. A [`Report`]
//! collects diagnostics for one lint target and renders them for humans
//! (rustc-style, with carets) or machines (JSON Lines via
//! [`pp_engine::json`]).

use pp_engine::json::Json;
use pp_rules::parse::Span;
use std::fmt;

/// How serious a diagnostic is.
///
/// Errors make `ppsim lint` exit nonzero; warnings and infos do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The input is broken: simulation would be meaningless or rejected.
    Error,
    /// Suspicious but runnable; shipped protocols may carry warnings.
    Warning,
    /// Context the analyzer wants to surface (e.g. a skipped check).
    Info,
}

impl Severity {
    /// Lowercase label used in rendered output (`error`, `warning`, `info`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `PP101`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Source location, when the target came from a file.
    pub span: Option<Span>,
    /// The source line the span points into (for caret rendering).
    pub snippet: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no location.
    #[must_use]
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Self {
            code,
            severity,
            message: message.into(),
            span: None,
            snippet: None,
        }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches the source line the span points into.
    #[must_use]
    pub fn with_snippet(mut self, snippet: impl Into<String>) -> Self {
        self.snippet = Some(snippet.into());
        self
    }

    /// Renders the diagnostic rustc-style:
    ///
    /// ```text
    /// warning[PP103]: rule 3 is shadowed under first-match scheduling
    ///   --> line 7, col 9
    ///    |   > (A) + (.) -> (A) + (.)
    ///    |     ^^^^^^^^^^^^^^^^^^^^^^
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            out.push_str(&format!("\n  --> line {}, col {}", span.line, span.col));
            if let Some(snippet) = &self.snippet {
                let pad: String = snippet
                    .chars()
                    .take(span.col.saturating_sub(1))
                    .map(|c| if c == '\t' { '\t' } else { ' ' })
                    .collect();
                let carets = "^".repeat(span.len.max(1));
                out.push_str(&format!("\n   | {snippet}\n   | {pad}{carets}"));
            }
        }
        out
    }

    /// The diagnostic as a single JSON object (one JSONL record).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("code", Json::from(self.code)),
            ("severity", Json::from(self.severity.label())),
            ("message", Json::from(self.message.clone())),
        ];
        if let Some(span) = self.span {
            fields.push(("line", Json::from(span.line)));
            fields.push(("col", Json::from(span.col)));
            fields.push(("len", Json::from(span.len)));
        }
        if let Some(snippet) = &self.snippet {
            fields.push(("snippet", Json::from(snippet.clone())));
        }
        Json::obj(fields)
    }
}

/// A collection of diagnostics for one lint target.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in the order checks produced them (sorted by
    /// [`Report::sort`]).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Whether any diagnostic is an [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Counts by severity: `(errors, warnings, infos)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }

    /// Sorts diagnostics by source position, then severity, then code, so
    /// output order tracks the file top to bottom.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by_key(|d| {
            let (line, col) = d.span.map_or((usize::MAX, usize::MAX), |s| (s.line, s.col));
            (line, col, d.severity, d.code)
        });
    }

    /// Renders all diagnostics for humans, one block per finding, followed
    /// by a summary line.
    #[must_use]
    pub fn render_human(&self, target: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let (e, w, i) = self.counts();
        if self.diagnostics.is_empty() {
            out.push_str(&format!("{target}: clean\n"));
        } else {
            out.push_str(&format!(
                "{target}: {e} error(s), {w} warning(s), {i} info(s)\n"
            ));
        }
        out
    }

    /// Renders all diagnostics as JSON Lines (one object per line).
    #[must_use]
    pub fn render_jsonl(&self, target: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let mut json = d.to_json();
            if let Json::Obj(fields) = &mut json {
                fields.insert(0, ("target".to_string(), Json::from(target)));
            }
            out.push_str(&json.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_code_span_and_caret() {
        let d = Diagnostic::new("PP101", Severity::Error, "guard is unsatisfiable")
            .with_span(Span::new(3, 5, 7))
            .with_snippet("    (A & !A) + (.) -> (.) + (.)");
        let r = d.render();
        assert!(r.contains("error[PP101]"), "{r}");
        assert!(r.contains("line 3, col 5"), "{r}");
        assert!(r.contains("^^^^^^^"), "{r}");
    }

    #[test]
    fn json_roundtrips_through_engine_reader() {
        let d = Diagnostic::new("PP204", Severity::Warning, "empty branch")
            .with_span(Span::new(7, 3, 10));
        let text = d.to_json().render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("code").and_then(Json::as_str), Some("PP204"));
        assert_eq!(back.get("line").and_then(Json::as_u64), Some(7));
        assert_eq!(back.get("severity").and_then(Json::as_str), Some("warning"));
    }

    #[test]
    fn report_counts_and_errors() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.push(Diagnostic::new("PP102", Severity::Warning, "no-op"));
        r.push(Diagnostic::new("PP101", Severity::Error, "dead"));
        assert!(r.has_errors());
        assert_eq!(r.counts(), (1, 1, 0));
    }

    #[test]
    fn sort_orders_by_position() {
        let mut r = Report::new();
        r.push(Diagnostic::new("PP102", Severity::Warning, "later").with_span(Span::new(9, 1, 1)));
        r.push(Diagnostic::new("PP101", Severity::Error, "earlier").with_span(Span::new(2, 1, 1)));
        r.push(Diagnostic::new("PP206", Severity::Warning, "no span"));
        r.sort();
        assert_eq!(r.diagnostics[0].code, "PP101");
        assert_eq!(r.diagnostics[1].code, "PP102");
        assert_eq!(r.diagnostics[2].code, "PP206");
    }
}
