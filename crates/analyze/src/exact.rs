//! Exact small-`n` configuration-graph checking.
//!
//! For a fixed tiny population (`n ≤ 8`), the set of configurations —
//! multisets of packed agent states — is small enough to explore
//! exhaustively. This module builds the full reachable configuration graph
//! under a ruleset (every ordered agent pair × every rule, all treated as
//! possible since every rule has positive probability) and decides
//! *stabilization* exactly:
//!
//! Under uniform random scheduling the execution is a finite Markov chain,
//! so with probability 1 it ends up in (and then never leaves) a bottom
//! strongly connected component of the reachable graph. The protocol
//! stabilizes to a predicate `P` from the given initial configuration if
//! and only if **every** configuration of **every** bottom SCC satisfies
//! `P`. That classification is exact for the explored `n` — no sampling,
//! no bounds — but says nothing about larger populations: a protocol can
//! be correct for all `n ≤ 8` and wrong for `n = 9`. The checker is a
//! verifier for claimed behavior at small sizes, not a proof.
//!
//! Silence is classified the same way: a configuration is *silent* when no
//! rule is effective on any ordered pair; a bottom SCC is silent iff it is
//! a single silent configuration.

use pp_rules::Ruleset;
use std::collections::HashMap;

/// Maximum population size the checker accepts.
pub const MAX_EXACT_N: usize = 8;

/// The exact verdict for one initial configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizationReport {
    /// Number of distinct reachable configurations.
    pub configs_explored: usize,
    /// Number of bottom strongly connected components.
    pub bottom_components: usize,
    /// How many bottom components are a single silent configuration.
    pub silent_bottoms: usize,
    /// A configuration (sorted agent states) inside a bottom component
    /// that violates the predicate, when stabilization fails.
    pub failing_example: Option<Vec<u32>>,
}

impl StabilizationReport {
    /// Whether the protocol stabilizes to the predicate from the explored
    /// initial configuration.
    #[must_use]
    pub fn stabilizes(&self) -> bool {
        self.failing_example.is_none()
    }

    /// Whether every execution additionally becomes silent.
    #[must_use]
    pub fn silences(&self) -> bool {
        self.silent_bottoms == self.bottom_components
    }
}

/// Explores the configuration graph from `initial` (agent states, `n =
/// initial.len()`) and checks that every bottom SCC satisfies `predicate`
/// on all its configurations.
///
/// # Panics
///
/// Panics when `initial` is empty or larger than [`MAX_EXACT_N`].
#[must_use]
pub fn check_stabilization(
    ruleset: &Ruleset,
    initial: &[u32],
    predicate: impl Fn(&[u32]) -> bool,
) -> StabilizationReport {
    assert!(
        !initial.is_empty() && initial.len() <= MAX_EXACT_N,
        "exact checker handles 1 ≤ n ≤ {MAX_EXACT_N} agents, got {}",
        initial.len()
    );
    let mut start = initial.to_vec();
    start.sort_unstable();

    // BFS over configurations, building the transition graph.
    let mut ids: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut configs: Vec<Vec<u32>> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();
    ids.insert(start.clone(), 0);
    configs.push(start);
    edges.push(Vec::new());
    let mut frontier = vec![0usize];
    while let Some(id) = frontier.pop() {
        let config = configs[id].clone();
        let mut successors = Vec::new();
        for i in 0..config.len() {
            for j in 0..config.len() {
                if i == j {
                    continue;
                }
                for rule in ruleset.rules() {
                    let (a, b) = (config[i], config[j]);
                    if !rule.matches(a, b) {
                        continue;
                    }
                    let (a2, b2) = rule.apply(a, b);
                    if (a2, b2) == (a, b) {
                        continue;
                    }
                    let mut next = config.clone();
                    next[i] = a2;
                    next[j] = b2;
                    next.sort_unstable();
                    successors.push(next);
                }
            }
        }
        successors.sort();
        successors.dedup();
        for next in successors {
            let next_id = *ids.entry(next.clone()).or_insert_with(|| {
                configs.push(next);
                edges.push(Vec::new());
                frontier.push(configs.len() - 1);
                configs.len() - 1
            });
            if next_id != id {
                edges[id].push(next_id);
            }
        }
    }

    // Bottom SCCs: components with no edge to a different component.
    let components = scc(&edges);
    let mut component_of = vec![0usize; configs.len()];
    for (c, members) in components.iter().enumerate() {
        for &v in members {
            component_of[v] = c;
        }
    }
    let mut bottom_components = 0usize;
    let mut silent_bottoms = 0usize;
    let mut failing_example = None;
    for (c, members) in components.iter().enumerate() {
        let is_bottom = members
            .iter()
            .all(|&v| edges[v].iter().all(|&w| component_of[w] == c));
        if !is_bottom {
            continue;
        }
        bottom_components += 1;
        let silent = members.len() == 1 && edges[members[0]].is_empty();
        if silent {
            silent_bottoms += 1;
        }
        if failing_example.is_none() {
            if let Some(&bad) = members.iter().find(|&&v| !predicate(&configs[v])) {
                failing_example = Some(configs[bad].clone());
            }
        }
    }

    StabilizationReport {
        configs_explored: configs.len(),
        bottom_components,
        silent_bottoms,
        failing_example,
    }
}

/// Tarjan SCC (iterative), shared shape with the support-graph version but
/// kept local: the two graphs index different node kinds.
fn scc(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, child)) = dfs.last() {
            if child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if child < edges[v].len() {
                dfs.last_mut().expect("nonempty").1 += 1;
                let w = edges[v][child];
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rules::parse::parse_ruleset;
    use pp_rules::VarSet;

    fn setup(text: &str) -> (VarSet, Ruleset) {
        let mut vars = VarSet::new();
        let rs = parse_ruleset(text, &mut vars).unwrap();
        (vars, rs)
    }

    #[test]
    fn fratricide_stabilizes_to_one_leader() {
        let (vars, rs) = setup("(L) + (L) -> (L) + (!L)");
        let l = vars.get("L").unwrap().mask();
        for n in 2..=6 {
            let initial = vec![l; n];
            let report = check_stabilization(&rs, &initial, |config| {
                config.iter().filter(|&&s| s & l != 0).count() == 1
            });
            assert!(report.stabilizes(), "n={n}: {report:?}");
            assert!(report.silences(), "n={n}: fratricide terminates");
        }
    }

    #[test]
    fn epidemic_stabilizes_to_all_infected() {
        let (vars, rs) = setup("(I) + (!I) -> (I) + (I)");
        let i = vars.get("I").unwrap().mask();
        let initial = vec![i, 0, 0, 0, 0];
        let report =
            check_stabilization(&rs, &initial, |config| config.iter().all(|&s| s & i != 0));
        assert!(report.stabilizes(), "{report:?}");
        assert!(report.silences());
        // Configurations: 1..=5 infected agents.
        assert_eq!(report.configs_explored, 5);
    }

    #[test]
    fn cancellation_preserves_majority_sign() {
        // The slow majority blackbox rule: opposing tokens annihilate.
        let (vars, rs) = setup("(A) + (B) -> (!A) + (!B)");
        let a = vars.get("A").unwrap().mask();
        let b = vars.get("B").unwrap().mask();
        // 3 A's vs 2 B's: every bottom config must keep only A tokens.
        let initial = vec![a, a, a, b, b];
        let report = check_stabilization(&rs, &initial, |config| {
            let na = config.iter().filter(|&&s| s & a != 0).count();
            let nb = config.iter().filter(|&&s| s & b != 0).count();
            na == 1 && nb == 0
        });
        assert!(report.stabilizes(), "{report:?}");
    }

    #[test]
    fn broken_protocol_reports_failing_config() {
        // "Leader election" that can also kill the last leader via a
        // non-leader initiator: the all-dead configuration is absorbing
        // and violates the predicate.
        let (vars, rs) = setup("(L) + (L) -> (L) + (!L)\n(!L) + (L) -> (!L) + (!L)");
        let l = vars.get("L").unwrap().mask();
        let report = check_stabilization(&rs, &[l, l, l], |config| {
            config.iter().filter(|&&s| s & l != 0).count() == 1
        });
        assert!(!report.stabilizes(), "{report:?}");
        let bad = report.failing_example.unwrap();
        assert!(bad.iter().all(|&s| s & l == 0), "all leaders dead: {bad:?}");
    }

    #[test]
    fn oscillating_rules_are_non_silent_but_can_stabilize() {
        // X flips forever on agents holding T; the T-count stays fixed, so
        // a predicate on T stabilizes while the chain never silences.
        let (vars, rs) = setup("(T & X) + (.) -> (!X) + (.)\n(T & !X) + (.) -> (X) + (.)");
        let t = vars.get("T").unwrap().mask();
        let report = check_stabilization(&rs, &[t, 0], |config| {
            config.iter().filter(|&&s| s & t != 0).count() == 1
        });
        assert!(report.stabilizes(), "{report:?}");
        assert!(!report.silences(), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "exact checker")]
    fn oversized_population_rejected() {
        let (_, rs) = setup("(L) + (L) -> (L) + (!L)");
        let _ = check_stabilization(&rs, &[0; 9], |_| true);
    }
}
