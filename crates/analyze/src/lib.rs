//! `pp-analyze`: static analysis for population-protocol rulesets and
//! framework programs.
//!
//! The analyzer inspects protocols *without running them*: it decides
//! guard satisfiability exactly over the packed state space, detects rules
//! that can never fire or never change anything, flags first-match
//! shadowing and uniform-mode outcome conflicts, over-approximates
//! reachable agent states from the declared initial supports (`PP105`,
//! `PP106`), and checks framework programs for data-flow hygiene and
//! substrate budgets (`PP2xx`). A separate exact checker
//! ([`exact::check_stabilization`]) explores the full configuration graph
//! for tiny populations and verifies claimed stabilization outright.
//!
//! Diagnostic codes are stable:
//!
//! | Range   | Meaning                          | Severity        |
//! |---------|----------------------------------|-----------------|
//! | `PP001` | syntax error                     | error           |
//! | `PP002` | post-condition not literals      | error           |
//! | `PP003` | contradictory post-condition     | error           |
//! | `PP101` | dead rule (unsatisfiable guard)  | error           |
//! | `PP102` | no-op rule                       | warning         |
//! | `PP103` | first-match shadowed rule        | warning         |
//! | `PP104` | uniform-mode outcome conflict    | warning         |
//! | `PP105` | unreachable rule                 | warning         |
//! | `PP106` | possible non-silent execution    | warning         |
//! | `PP190` | a check was skipped              | info            |
//! | `PP191` | enumeration compiles past the flag budget | info   |
//! | `PP201` | use before assign                | warning         |
//! | `PP202` | never-written output             | error / warning |
//! | `PP203` | write to an input variable       | warning         |
//! | `PP204` | empty `if exists` then-branch    | warning         |
//! | `PP205` | inert loop or thread body        | warning         |
//! | `PP206` | compiled tree exceeds clock/width budget | warning |
//! | `PP207` | packed-variable budget exceeded  | warning         |
//!
//! Entry points: [`lint::lint_source`] for `.pp` files,
//! [`lint::lint_builtin`] for programs constructed in code, and the
//! individual passes in [`ruleset`], [`reach`], and [`program`] for
//! embedding.

#![deny(missing_docs)]

pub mod diag;
pub mod exact;
pub mod lint;
pub mod program;
pub mod reach;
pub mod ruleset;

pub use diag::{Diagnostic, Report, Severity};
pub use exact::{check_stabilization, StabilizationReport};
pub use lint::{lint_builtin, lint_program, lint_source};
