//! Ruleset analyses: guard satisfiability and dead rules (PP101), no-op
//! rules (PP102), first-match shadowing (PP103), and uniform-mode outcome
//! conflicts (PP104).
//!
//! All checks are *exact* over the packed state space: guards mention a
//! handful of variables, so enumerating every assignment of the mentioned
//! variables decides satisfiability and pairwise overlap precisely. Joint
//! pair checks (shadowing, conflicts) enumerate initiator × responder
//! assignments and are skipped with an info diagnostic when the combined
//! variable count exceeds [`PAIR_VAR_CAP`] (2^14 pairs).

use crate::diag::{Diagnostic, Severity};
use crate::reach::SupportClosure;
use pp_rules::parse::Span;
use pp_rules::{Guard, Rule, Ruleset, Var, VarSet};

/// Maximum combined (initiator + responder) mentioned-variable count for
/// the joint pair enumerations of PP103/PP104.
pub const PAIR_VAR_CAP: usize = 14;

/// Attaches rule locations (spans + snippets) to ruleset diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleLocator<'a> {
    /// Span of each rule, parallel to the ruleset (empty when unknown).
    pub spans: &'a [Span],
    /// The full source text, for snippet extraction.
    pub source: Option<&'a str>,
}

impl<'a> RuleLocator<'a> {
    /// Decorates a diagnostic with the location of rule `idx`, when known.
    #[must_use]
    pub fn attach(&self, mut d: Diagnostic, idx: usize) -> Diagnostic {
        if let Some(&span) = self.spans.get(idx) {
            d = d.with_span(span);
            if let Some(line) = self
                .source
                .and_then(|s| s.lines().nth(span.line.saturating_sub(1)))
            {
                d = d.with_snippet(line.trim_end());
            }
        }
        d
    }
}

/// Enumerates every assignment of `vars`, calling `f` with the packed
/// state (all unmentioned variables off).
fn for_each_assignment(vars: &[Var], mut f: impl FnMut(u32)) {
    debug_assert!(vars.len() < 32);
    for bits in 0u32..(1 << vars.len()) {
        let mut state = 0u32;
        for (i, v) in vars.iter().enumerate() {
            if bits & (1 << i) != 0 {
                state |= v.mask();
            }
        }
        f(state);
    }
}

/// Whether some assignment of the guard's mentioned variables satisfies it
/// (exact: unmentioned variables cannot influence the result).
#[must_use]
pub fn satisfiable(guard: &Guard) -> bool {
    let vars = guard.vars();
    let mut sat = false;
    for_each_assignment(&vars, |state| sat |= guard.eval(state));
    sat
}

/// Variables mentioned by a rule's side: guard variables plus update bits.
fn side_vars(guard: &Guard, set: u32, clear: u32) -> Vec<Var> {
    let mut vars = guard.vars();
    let touched = set | clear;
    for i in 0..32 {
        if touched & (1 << i) != 0 {
            vars.push(Var::new(i));
        }
    }
    vars.sort();
    vars.dedup();
    vars
}

/// Whether the rule changes at least one matching state pair.
fn is_noop(rule: &Rule) -> bool {
    let mut changes = false;
    let a_vars = side_vars(&rule.guard_a, rule.update_a.set, rule.update_a.clear);
    for_each_assignment(&a_vars, |a| {
        changes |= rule.guard_a.eval(a) && rule.update_a.changes(a);
    });
    let b_vars = side_vars(&rule.guard_b, rule.update_b.set, rule.update_b.clear);
    for_each_assignment(&b_vars, |b| {
        changes |= rule.guard_b.eval(b) && rule.update_b.changes(b);
    });
    !changes
}

/// Runs the per-ruleset checks (PP101–PP104), decorating findings via
/// `locator`. `label` names the ruleset in messages (e.g. a thread name);
/// empty for standalone rulesets.
#[must_use]
pub fn analyze_ruleset(
    vars: &VarSet,
    ruleset: &Ruleset,
    locator: RuleLocator<'_>,
    label: &str,
) -> Vec<Diagnostic> {
    analyze_ruleset_with(vars, ruleset, locator, label, None)
}

/// [`analyze_ruleset`] with an optional support closure: when present, the
/// PP104 overlap check only considers pairs of *reachable* states, which
/// silences conflicts on states the protocol's invariants rule out (e.g. a
/// token carrying both the `+1` and `-1` value bit).
#[must_use]
pub fn analyze_ruleset_with(
    vars: &VarSet,
    ruleset: &Ruleset,
    locator: RuleLocator<'_>,
    label: &str,
    closure: Option<&SupportClosure>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rules = ruleset.rules();
    let ctx = if label.is_empty() {
        String::new()
    } else {
        format!(" in {label}")
    };

    // PP101: dead rules — a side's guard has no satisfying assignment.
    let mut dead = vec![false; rules.len()];
    for (i, rule) in rules.iter().enumerate() {
        let side = if !satisfiable(&rule.guard_a) {
            Some("initiator")
        } else if !satisfiable(&rule.guard_b) {
            Some("responder")
        } else {
            None
        };
        if let Some(side) = side {
            dead[i] = true;
            out.push(locator.attach(
                Diagnostic::new(
                    "PP101",
                    Severity::Error,
                    format!(
                        "rule{ctx} is dead: {side} guard is unsatisfiable in `{}`",
                        rule.render(vars)
                    ),
                ),
                i,
            ));
        }
    }

    // PP102: live rules that can never change any matching state.
    for (i, rule) in rules.iter().enumerate() {
        if !dead[i] && is_noop(rule) {
            out.push(locator.attach(
                Diagnostic::new(
                    "PP102",
                    Severity::Warning,
                    format!(
                        "rule{ctx} is a no-op: `{}` never changes a matching pair",
                        rule.render(vars)
                    ),
                ),
                i,
            ));
        }
    }

    // Joint pair checks need the combined mentioned-variable sets.
    let mut skipped_note = false;
    let mut skip = |out: &mut Vec<Diagnostic>| {
        if !skipped_note {
            skipped_note = true;
            out.push(Diagnostic::new(
                "PP190",
                Severity::Info,
                format!(
                    "shadowing checks skipped{ctx}: rules mention more than \
                     {PAIR_VAR_CAP} combined variables"
                ),
            ));
        }
    };

    // PP103: first-match shadowing — every pair matching rule i is already
    // matched by an earlier rule, so under first-match scheduling rule i
    // never fires.
    for i in 1..rules.len() {
        if dead[i] {
            continue;
        }
        let mut a_vars: Vec<Var> = Vec::new();
        let mut b_vars: Vec<Var> = Vec::new();
        for rule in &rules[..=i] {
            a_vars.extend(rule.guard_a.vars());
            b_vars.extend(rule.guard_b.vars());
        }
        a_vars.sort();
        a_vars.dedup();
        b_vars.sort();
        b_vars.dedup();
        if a_vars.len() + b_vars.len() > PAIR_VAR_CAP {
            skip(&mut out);
            continue;
        }
        let mut unshadowed = false;
        for_each_assignment(&a_vars, |a| {
            if unshadowed || !rules[i].guard_a.eval(a) {
                return;
            }
            for_each_assignment(&b_vars, |b| {
                if unshadowed || !rules[i].guard_b.eval(b) {
                    return;
                }
                if !rules[..i].iter().any(|r| r.matches(a, b)) {
                    unshadowed = true;
                }
            });
        });
        if !unshadowed {
            out.push(locator.attach(
                Diagnostic::new(
                    "PP103",
                    Severity::Warning,
                    format!(
                        "rule{ctx} is shadowed under first-match scheduling: every pair \
                         matching `{}` is matched by an earlier rule",
                        rules[i].render(vars)
                    ),
                ),
                i,
            ));
        }
    }

    // PP104: uniform-mode conflicts — two deterministic rules that match a
    // common pair and drive some shared variable in *opposite* directions
    // (one sets what the other clears), so the scheduler's uniform rule
    // pick decides that variable's value. Rules with disjoint or agreeing
    // updates are not flagged: both eventually apply and the order does
    // not matter.
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            if dead[i] || dead[j] {
                continue;
            }
            let (ri, rj) = (&rules[i], &rules[j]);
            if ri.probability < 1.0 || rj.probability < 1.0 {
                // Sub-unit probabilities signal deliberate randomization.
                continue;
            }
            let opposed_a =
                (ri.update_a.set & rj.update_a.clear) | (ri.update_a.clear & rj.update_a.set);
            let opposed_b =
                (ri.update_b.set & rj.update_b.clear) | (ri.update_b.clear & rj.update_b.set);
            if opposed_a == 0 && opposed_b == 0 {
                continue;
            }
            // `matches(a, b)` factors per side, so joint matchability is
            // per-side joint satisfiability — no pair enumeration needed.
            let joint_a = ri.guard_a.clone().and(rj.guard_a.clone());
            let joint_b = ri.guard_b.clone().and(rj.guard_b.clone());
            let conflict = match closure {
                Some(c) => c.any_satisfies(&joint_a) && c.any_satisfies(&joint_b),
                None => satisfiable(&joint_a) && satisfiable(&joint_b),
            };
            if conflict {
                out.push(locator.attach(
                    Diagnostic::new(
                        "PP104",
                        Severity::Warning,
                        format!(
                            "rules{ctx} overlap with conflicting outcomes under uniform-rule \
                             scheduling: `{}` vs `{}`",
                            ri.render(vars),
                            rj.render(vars)
                        ),
                    ),
                    j,
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_rules::parse::parse_ruleset_spanned;

    fn analyzed(text: &str) -> (Vec<Diagnostic>, VarSet) {
        let mut vars = VarSet::new();
        let (ruleset, spans) = parse_ruleset_spanned(text, &mut vars).unwrap();
        let locator = RuleLocator {
            spans: &spans,
            source: Some(text),
        };
        let diags = analyze_ruleset(&vars, &ruleset, locator, "");
        (diags, vars)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_ruleset_has_no_findings() {
        let (diags, _) = analyzed("(L) + (L) -> (L) + (!L)");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unsatisfiable_guard_is_dead_rule() {
        let (diags, _) = analyzed("(A & !A) + (.) -> (B) + (.)");
        assert_eq!(codes(&diags), vec!["PP101"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].span.unwrap().line, 1);
        assert!(diags[0].message.contains("initiator"), "{diags:?}");
    }

    #[test]
    fn unsatisfiable_responder_guard_detected() {
        let (diags, _) = analyzed("(.) + (B & !B) -> (A) + (.)");
        assert_eq!(codes(&diags), vec!["PP101"]);
        assert!(diags[0].message.contains("responder"), "{diags:?}");
    }

    #[test]
    fn noop_rule_detected() {
        // Sets A on agents that already have A.
        let (diags, _) = analyzed("(A) + (.) -> (A) + (.)");
        assert_eq!(codes(&diags), vec!["PP102"]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn effective_rule_is_not_noop() {
        let (diags, _) = analyzed("(A) + (.) -> (!A) + (.)");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn shadowed_rule_detected_with_span() {
        let text = "(A) + (.) -> (!A) + (.)\n(A & B) + (.) -> (!B) + (.)";
        let (diags, _) = analyzed(text);
        assert_eq!(codes(&diags), vec!["PP103"]);
        let span = diags[0].span.unwrap();
        assert_eq!(span.line, 2, "span points at the shadowed rule");
        assert!(
            diags[0].message.contains("first-match"),
            "framed as a first-match concern: {diags:?}"
        );
    }

    #[test]
    fn non_shadowed_rules_pass() {
        // Second rule matches pairs the first does not (B without A).
        let text = "(A) + (.) -> (!A) + (.)\n(B) + (.) -> (!B) + (.)";
        let (diags, _) = analyzed(text);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uniform_conflict_detected() {
        // Both rules match (A, anything) but disagree on the rewrite.
        let text = "(A) + (.) -> (B) + (.)\n(A) + (.) -> (!B) + (.)";
        let (diags, _) = analyzed(text);
        assert!(codes(&diags).contains(&"PP104"), "{diags:?}");
    }

    #[test]
    fn probabilistic_overlap_not_flagged() {
        // Deliberate randomization: equiprobable coin rules.
        let text = "(K) + (.) -> (X & !K) + (.) @ 0.5\n(K) + (.) -> (!X & !K) + (.) @ 0.5";
        let (diags, _) = analyzed(text);
        assert!(!codes(&diags).contains(&"PP104"), "{diags:?}");
    }

    #[test]
    fn satisfiable_helper_is_exact() {
        let mut vars = VarSet::new();
        let a = vars.add("A");
        let b = vars.add("B");
        assert!(satisfiable(&Guard::var(a).and(Guard::var(b))));
        assert!(!satisfiable(&Guard::var(a).and(Guard::not_var(a))));
        // (A | B) & !A & !B is unsatisfiable; needs joint enumeration.
        let g = Guard::var(a)
            .or(Guard::var(b))
            .and(Guard::not_var(a))
            .and(Guard::not_var(b));
        assert!(!satisfiable(&g));
    }
}
