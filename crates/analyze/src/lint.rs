//! The lint driver: ties parsing, program checks, ruleset checks, and
//! support reachability into one [`Report`] per target.
//!
//! Three entry points:
//!
//! * [`lint_source`] — lint a `.pp` protocol definition from text. Parse
//!   failures become a single `PP00x` error diagnostic; otherwise the
//!   parsed program is linted with full span information.
//! * [`lint_program`] — lint an already-built [`Program`] (optionally with
//!   spans and source text from `parse_program_spanned`).
//! * [`lint_builtin`] — lint a built-in program constructed in code
//!   (spanless diagnostics).

use crate::diag::{Diagnostic, Report, Severity};
use crate::program::{analyze_program, ProgramLocator};
use crate::reach::{
    non_silent_cycles, support_closure, unreachable_rules, AbstractAssign, SupportModel,
    REACH_VAR_CAP,
};
use crate::ruleset::{analyze_ruleset_with, RuleLocator};
use pp_lang::ast::{AssignValue, Instr, Program, Thread};
use pp_lang::parse::{
    parse_program_spanned, InstrSpan, ParseErrorKind, ParseProgramError, ProgramSpans, Span,
};
use pp_rules::{Ruleset, Var};

/// Maximum declared-input count for enumerating initial supports (each
/// subset of inputs is one initial state; `2^k` subsets).
pub const INPUT_ENUM_CAP: usize = 12;

/// The diagnostic code for a parse error of the given kind.
#[must_use]
pub fn parse_error_code(kind: ParseErrorKind) -> &'static str {
    match kind {
        ParseErrorKind::Syntax => "PP001",
        ParseErrorKind::PostConditionNotLiterals => "PP002",
        ParseErrorKind::ContradictoryPostCondition => "PP003",
    }
}

/// Converts a parse failure into its diagnostic.
#[must_use]
pub fn parse_error_diagnostic(e: &ParseProgramError) -> Diagnostic {
    let mut d = Diagnostic::new(parse_error_code(e.kind), Severity::Error, e.message.clone())
        .with_span(Span::point(e.line, e.col));
    if !e.source.is_empty() {
        d = d.with_snippet(e.source.clone());
    }
    d
}

/// Lints a `.pp` protocol definition from source text.
#[must_use]
pub fn lint_source(source: &str) -> Report {
    match parse_program_spanned(source) {
        Err(e) => {
            let mut report = Report::new();
            report.push(parse_error_diagnostic(&e));
            report
        }
        Ok((program, spans)) => lint_program(&program, Some(&spans), Some(source)),
    }
}

/// Lints a built-in program constructed in code (no source locations).
#[must_use]
pub fn lint_builtin(program: &Program) -> Report {
    lint_program(program, None, None)
}

/// One ruleset occurrence inside a program, with its location info.
struct RulesetSite<'a> {
    ruleset: &'a Ruleset,
    spans: &'a [Span],
    label: String,
}

/// Collects every ruleset in the program — raw threads and `execute`
/// instructions — pairing each with its rule spans (pre-order instruction
/// counters mirror `ThreadSpans::instrs`).
fn collect_rulesets<'a>(
    program: &'a Program,
    spans: Option<&'a ProgramSpans>,
) -> Vec<RulesetSite<'a>> {
    fn walk<'a>(
        instrs: &'a [Instr],
        thread_spans: Option<&'a [InstrSpan]>,
        counter: &mut usize,
        label: &str,
        out: &mut Vec<RulesetSite<'a>>,
    ) {
        for instr in instrs {
            let idx = *counter;
            *counter += 1;
            match instr {
                Instr::Execute { ruleset, .. } => {
                    out.push(RulesetSite {
                        ruleset,
                        spans: thread_spans
                            .and_then(|t| t.get(idx))
                            .map_or(&[][..], |s| s.rules.as_slice()),
                        label: label.to_string(),
                    });
                }
                Instr::IfExists {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, thread_spans, counter, label, out);
                    walk(else_branch, thread_spans, counter, label, out);
                }
                Instr::RepeatLog { body, .. } => {
                    walk(body, thread_spans, counter, label, out);
                }
                Instr::Assign { .. } => {}
            }
        }
    }

    let mut out = Vec::new();
    for (thread_idx, thread) in program.threads.iter().enumerate() {
        let thread_spans = spans.and_then(|s| s.threads.get(thread_idx));
        match thread {
            Thread::Raw { name, ruleset } => {
                out.push(RulesetSite {
                    ruleset,
                    spans: thread_spans.map_or(&[][..], |t| t.rules.as_slice()),
                    label: format!("thread {name}"),
                });
            }
            Thread::Structured { name, body } => {
                let mut counter = 0usize;
                walk(
                    body,
                    thread_spans.map(|t| t.instrs.as_slice()),
                    &mut counter,
                    &format!("thread {name}"),
                    &mut out,
                );
            }
        }
    }
    out
}

/// Collects every population-wide assignment for the support abstraction.
fn collect_assigns(program: &Program) -> Vec<AbstractAssign> {
    fn walk(instrs: &[Instr], out: &mut Vec<AbstractAssign>) {
        for instr in instrs {
            match instr {
                Instr::Assign { var, value } => out.push(match value {
                    AssignValue::Formula(g) => AbstractAssign::Formula(*var, g.clone()),
                    AssignValue::RandomBit => AbstractAssign::Coin(*var),
                }),
                Instr::IfExists {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                Instr::RepeatLog { body, .. } => walk(body, out),
                Instr::Execute { .. } => {}
            }
        }
    }
    let mut out = Vec::new();
    for (_, body) in program.structured_threads() {
        walk(body, &mut out);
    }
    out
}

/// The declared initial supports: one packed state per subset of the input
/// variables (every agent carries some subset of the inputs), with `init`
/// and `derived_init` applied. `None` when there are too many inputs to
/// enumerate.
fn initial_supports(program: &Program) -> Option<Vec<u32>> {
    if program.inputs.len() > INPUT_ENUM_CAP {
        return None;
    }
    let mut supports = Vec::with_capacity(1 << program.inputs.len());
    for bits in 0u32..(1 << program.inputs.len()) {
        let on: Vec<Var> = program
            .inputs
            .iter()
            .enumerate()
            .filter(|&(i, _)| bits & (1 << i) != 0)
            .map(|(_, &v)| v)
            .collect();
        supports.push(program.initial_state(&on));
    }
    Some(supports)
}

/// Lints a program: `PP2xx` program checks, `PP10x` checks on every
/// embedded ruleset, and support-reachability checks (`PP105`/`PP106`)
/// from the declared initial supports.
#[must_use]
pub fn lint_program(
    program: &Program,
    spans: Option<&ProgramSpans>,
    source: Option<&str>,
) -> Report {
    let mut report = Report::new();

    let locator = ProgramLocator { spans, source };
    for d in analyze_program(program, &locator) {
        report.push(d);
    }

    let sites = collect_rulesets(program, spans);

    // Support reachability from the declared initial supports, computed
    // first so the ruleset checks can restrict themselves to states that
    // may actually occur.
    let closure = match initial_supports(program) {
        None => {
            report.push(Diagnostic::new(
                "PP190",
                Severity::Info,
                format!(
                    "reachability checks skipped: more than {INPUT_ENUM_CAP} declared \
                     inputs to enumerate"
                ),
            ));
            None
        }
        Some(initial) => {
            let model = SupportModel {
                rulesets: sites.iter().map(|s| s.ruleset).collect(),
                assigns: collect_assigns(program),
                initial,
            };
            let closure = support_closure(&program.vars, &model);
            if closure.skipped {
                report.push(Diagnostic::new(
                    "PP190",
                    Severity::Info,
                    format!(
                        "reachability checks skipped: more than {REACH_VAR_CAP} \
                         variables in the packed state space"
                    ),
                ));
                None
            } else {
                Some(closure)
            }
        }
    };

    for site in &sites {
        let rule_locator = RuleLocator {
            spans: site.spans,
            source,
        };
        for d in analyze_ruleset_with(
            &program.vars,
            site.ruleset,
            rule_locator,
            &site.label,
            closure.as_ref(),
        ) {
            report.push(d);
        }
    }

    if let Some(closure) = &closure {
        for site in &sites {
            let rule_locator = RuleLocator {
                spans: site.spans,
                source,
            };
            for d in unreachable_rules(
                &program.vars,
                site.ruleset,
                closure,
                rule_locator,
                &site.label,
            ) {
                report.push(d);
            }
        }
        let rulesets: Vec<&Ruleset> = sites.iter().map(|s| s.ruleset).collect();
        for d in non_silent_cycles(&program.vars, &rulesets, closure) {
            report.push(d);
        }
    }

    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn syntax_error_becomes_pp001() {
        let report = lint_source("def protocol Broken\n  var X:\n  thread T:\n    what\n");
        assert!(report.has_errors());
        assert_eq!(codes(&report), vec!["PP001"]);
        let d = &report.diagnostics[0];
        assert!(d.span.is_some(), "{d:?}");
    }

    #[test]
    fn disjunctive_post_condition_becomes_pp002() {
        let source = "\
def protocol Bad
  var A, B:
  thread T:
    execute ruleset:
      > (A) + (.) -> (A | B) + (.)
";
        let report = lint_source(source);
        assert_eq!(codes(&report), vec!["PP002"]);
        let d = &report.diagnostics[0];
        assert_eq!(d.span.unwrap().line, 5, "{d:?}");
        assert!(d.snippet.is_some(), "{d:?}");
    }

    #[test]
    fn contradictory_post_condition_becomes_pp003() {
        let source = "\
def protocol Bad
  var A:
  thread T:
    execute ruleset:
      > (A) + (.) -> (A & !A) + (.)
";
        let report = lint_source(source);
        assert_eq!(codes(&report), vec!["PP003"]);
    }

    #[test]
    fn ruleset_findings_carry_rule_spans() {
        let source = "\
def protocol Shadow
  var A, B as output:
  thread T:
    execute ruleset:
      > (A) + (.) -> (!A & B) + (.)
      > (A & B) + (.) -> (!B) + (.)
";
        let report = lint_source(source);
        let shadowed = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PP103")
            .expect("PP103");
        assert_eq!(shadowed.span.unwrap().line, 6, "{shadowed:?}");
        assert!(
            shadowed.snippet.as_deref().unwrap().contains("(A & B)"),
            "{shadowed:?}"
        );
        assert!(shadowed.message.contains("thread T"), "{shadowed:?}");
    }

    #[test]
    fn unreachable_rule_found_from_initial_support() {
        // B never occurs: no init, no input, nothing sets it.
        let source = "\
def protocol Dead
  var A as input, B, Y as output:
  thread T:
    execute ruleset:
      > (A) + (.) -> (Y) + (.)
      > (B) + (.) -> (!Y) + (.)
";
        let report = lint_source(source);
        let unreachable = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PP105")
            .expect("PP105: {report:?}");
        assert_eq!(unreachable.span.unwrap().line, 6, "{unreachable:?}");
    }

    #[test]
    fn clean_program_is_clean() {
        let source = "\
def protocol Fratricide
  var L <- on as output:
  thread Elect:
    execute ruleset:
      > (L) + (L) -> (L) + (!L)
";
        let report = lint_source(source);
        assert!(report.diagnostics.is_empty(), "{report:?}");
    }

    #[test]
    fn raw_thread_rules_are_checked() {
        let source = "\
def protocol Raw
  var R <- on as output:
  thread Forever:
    execute ruleset:
      > (R & !R) + (.) -> (R) + (.)
";
        // No `repeat:` under the thread header, so this parses as a raw
        // (forever) thread and exercises the raw-thread span path.
        let report = lint_source(source);
        assert!(codes(&report).contains(&"PP101"), "{report:?}");
        assert!(report.has_errors());
    }

    #[test]
    fn report_is_sorted_by_position() {
        let source = "\
def protocol Multi
  var A, Y as output:
  thread T:
    execute ruleset:
      > (A & !A) + (.) -> (Y) + (.)
      > (A) + (.) -> (A) + (.)
";
        let report = lint_source(source);
        let lines: Vec<usize> = report
            .diagnostics
            .iter()
            .filter_map(|d| d.span.map(|s| s.line))
            .collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "{report:?}");
    }
}
