//! The lint driver: ties parsing, program checks, ruleset checks, and
//! support reachability into one [`Report`] per target.
//!
//! Three entry points:
//!
//! * [`lint_source`] — lint a `.pp` protocol definition from text. Parse
//!   failures become a single `PP00x` error diagnostic; otherwise the
//!   parsed program is linted with full span information.
//! * [`lint_program`] — lint an already-built [`Program`] (optionally with
//!   spans and source text from `parse_program_spanned`).
//! * [`lint_builtin`] — lint a built-in program constructed in code
//!   (spanless diagnostics).

use crate::diag::{Diagnostic, Report, Severity};
use crate::program::{analyze_program, ProgramLocator};
use crate::reach::{non_silent_cycles, support_closure, unreachable_rules, REACH_VAR_CAP};
use crate::ruleset::{analyze_ruleset_with, RuleLocator};
use pp_lang::ast::{Instr, Program, Thread};
use pp_lang::enumerate::{collect_assigns, initial_supports};
use pp_lang::parse::{
    parse_program_spanned, InstrSpan, ParseErrorKind, ParseProgramError, ProgramSpans, Span,
};
use pp_rules::reach::SupportModel;
use pp_rules::Ruleset;

pub use pp_lang::enumerate::{ENUM_STATE_CAP, INPUT_ENUM_CAP};

/// The diagnostic code for a parse error of the given kind.
#[must_use]
pub fn parse_error_code(kind: ParseErrorKind) -> &'static str {
    match kind {
        ParseErrorKind::Syntax => "PP001",
        ParseErrorKind::PostConditionNotLiterals => "PP002",
        ParseErrorKind::ContradictoryPostCondition => "PP003",
    }
}

/// Converts a parse failure into its diagnostic.
#[must_use]
pub fn parse_error_diagnostic(e: &ParseProgramError) -> Diagnostic {
    let mut d = Diagnostic::new(parse_error_code(e.kind), Severity::Error, e.message.clone())
        .with_span(Span::point(e.line, e.col));
    if !e.source.is_empty() {
        d = d.with_snippet(e.source.clone());
    }
    d
}

/// Lints a `.pp` protocol definition from source text.
#[must_use]
pub fn lint_source(source: &str) -> Report {
    match parse_program_spanned(source) {
        Err(e) => {
            let mut report = Report::new();
            report.push(parse_error_diagnostic(&e));
            report
        }
        Ok((program, spans)) => lint_program(&program, Some(&spans), Some(source)),
    }
}

/// Lints a built-in program constructed in code (no source locations).
#[must_use]
pub fn lint_builtin(program: &Program) -> Report {
    lint_program(program, None, None)
}

/// One ruleset occurrence inside a program, with its location info.
struct RulesetSite<'a> {
    ruleset: &'a Ruleset,
    spans: &'a [Span],
    label: String,
}

/// Collects every ruleset in the program — raw threads and `execute`
/// instructions — pairing each with its rule spans (pre-order instruction
/// counters mirror `ThreadSpans::instrs`).
fn collect_rulesets<'a>(
    program: &'a Program,
    spans: Option<&'a ProgramSpans>,
) -> Vec<RulesetSite<'a>> {
    fn walk<'a>(
        instrs: &'a [Instr],
        thread_spans: Option<&'a [InstrSpan]>,
        counter: &mut usize,
        label: &str,
        out: &mut Vec<RulesetSite<'a>>,
    ) {
        for instr in instrs {
            let idx = *counter;
            *counter += 1;
            match instr {
                Instr::Execute { ruleset, .. } => {
                    out.push(RulesetSite {
                        ruleset,
                        spans: thread_spans
                            .and_then(|t| t.get(idx))
                            .map_or(&[][..], |s| s.rules.as_slice()),
                        label: label.to_string(),
                    });
                }
                Instr::IfExists {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, thread_spans, counter, label, out);
                    walk(else_branch, thread_spans, counter, label, out);
                }
                Instr::RepeatLog { body, .. } => {
                    walk(body, thread_spans, counter, label, out);
                }
                Instr::Assign { .. } => {}
            }
        }
    }

    let mut out = Vec::new();
    for (thread_idx, thread) in program.threads.iter().enumerate() {
        let thread_spans = spans.and_then(|s| s.threads.get(thread_idx));
        match thread {
            Thread::Raw { name, ruleset } => {
                out.push(RulesetSite {
                    ruleset,
                    spans: thread_spans.map_or(&[][..], |t| t.rules.as_slice()),
                    label: format!("thread {name}"),
                });
            }
            Thread::Structured { name, body } => {
                let mut counter = 0usize;
                walk(
                    body,
                    thread_spans.map(|t| t.instrs.as_slice()),
                    &mut counter,
                    &format!("thread {name}"),
                    &mut out,
                );
            }
        }
    }
    out
}

/// Lints a program: `PP2xx` program checks, `PP10x` checks on every
/// embedded ruleset, and support-reachability checks (`PP105`/`PP106`)
/// from the declared initial supports.
///
/// When a program exceeds the precompile flag budget (`PP207`) but the
/// support closure proves the live state space small enough for the
/// `pp-lang` enumeration backend ([`ENUM_STATE_CAP`]), the `PP207`
/// warnings are replaced by a single `PP191` info diagnostic reporting the
/// live-state count, the compression ratio against `2^bits`, and the
/// dead-rule stripping — the program compiles after all.
#[must_use]
pub fn lint_program(
    program: &Program,
    spans: Option<&ProgramSpans>,
    source: Option<&str>,
) -> Report {
    let mut report = Report::new();

    let locator = ProgramLocator { spans, source };
    let program_diags = analyze_program(program, &locator);

    let sites = collect_rulesets(program, spans);

    // Support reachability from the declared initial supports, computed
    // first so the ruleset checks can restrict themselves to states that
    // may actually occur.
    let closure = match initial_supports(program) {
        None => {
            report.push(Diagnostic::new(
                "PP190",
                Severity::Info,
                format!(
                    "reachability checks skipped: more than {INPUT_ENUM_CAP} declared \
                     inputs to enumerate"
                ),
            ));
            None
        }
        Some(initial) => {
            let model = SupportModel {
                rulesets: sites.iter().map(|s| s.ruleset).collect(),
                assigns: collect_assigns(program),
                initial,
            };
            let closure = support_closure(&program.vars, &model);
            if closure.skipped {
                report.push(Diagnostic::new(
                    "PP190",
                    Severity::Info,
                    format!(
                        "reachability checks skipped: more than {REACH_VAR_CAP} \
                         variables in the packed state space"
                    ),
                ));
                None
            } else {
                Some(closure)
            }
        }
    };

    // PP191: the enumeration backend compiles past the flag budget. When
    // PP207 fired but the closure proved the live state space enumerable,
    // the budget warnings are moot — replace them with one info line.
    let over_budget = program_diags.iter().any(|d| d.code == "PP207");
    let enumerable = closure
        .as_ref()
        .is_some_and(|c| !c.live.is_empty() && c.live.len() <= ENUM_STATE_CAP);
    if over_budget && enumerable {
        let closure = closure.as_ref().expect("enumerable implies closure");
        let mut dead = 0usize;
        let mut total = 0usize;
        for site in &sites {
            for rule in site.ruleset.rules() {
                total += 1;
                if !(closure.any_satisfies(&rule.guard_a) && closure.any_satisfies(&rule.guard_b)) {
                    dead += 1;
                }
            }
        }
        let bits = program.vars.len();
        let upper = 1u64 << bits;
        let live = closure.live.len();
        let ratio = upper as f64 / live as f64;
        for d in program_diags {
            if d.code != "PP207" {
                report.push(d);
            }
        }
        report.push(Diagnostic::new(
            "PP191",
            Severity::Info,
            format!(
                "enumeration compiles this protocol over {live} live states \
                 (of {upper} possible with {bits} variables, {ratio:.0}x \
                 compression); {dead} of {total} rules are dead and stripped; \
                 the precompile flag budget does not apply"
            ),
        ));
    } else {
        for d in program_diags {
            report.push(d);
        }
    }

    for site in &sites {
        let rule_locator = RuleLocator {
            spans: site.spans,
            source,
        };
        for d in analyze_ruleset_with(
            &program.vars,
            site.ruleset,
            rule_locator,
            &site.label,
            closure.as_ref(),
        ) {
            report.push(d);
        }
    }

    if let Some(closure) = &closure {
        for site in &sites {
            let rule_locator = RuleLocator {
                spans: site.spans,
                source,
            };
            for d in unreachable_rules(
                &program.vars,
                site.ruleset,
                closure,
                rule_locator,
                &site.label,
            ) {
                report.push(d);
            }
        }
        let rulesets: Vec<&Ruleset> = sites.iter().map(|s| s.ruleset).collect();
        for d in non_silent_cycles(&program.vars, &rulesets, closure) {
            report.push(d);
        }
    }

    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn syntax_error_becomes_pp001() {
        let report = lint_source("def protocol Broken\n  var X:\n  thread T:\n    what\n");
        assert!(report.has_errors());
        assert_eq!(codes(&report), vec!["PP001"]);
        let d = &report.diagnostics[0];
        assert!(d.span.is_some(), "{d:?}");
    }

    #[test]
    fn disjunctive_post_condition_becomes_pp002() {
        let source = "\
def protocol Bad
  var A, B:
  thread T:
    execute ruleset:
      > (A) + (.) -> (A | B) + (.)
";
        let report = lint_source(source);
        assert_eq!(codes(&report), vec!["PP002"]);
        let d = &report.diagnostics[0];
        assert_eq!(d.span.unwrap().line, 5, "{d:?}");
        assert!(d.snippet.is_some(), "{d:?}");
    }

    #[test]
    fn contradictory_post_condition_becomes_pp003() {
        let source = "\
def protocol Bad
  var A:
  thread T:
    execute ruleset:
      > (A) + (.) -> (A & !A) + (.)
";
        let report = lint_source(source);
        assert_eq!(codes(&report), vec!["PP003"]);
    }

    #[test]
    fn ruleset_findings_carry_rule_spans() {
        let source = "\
def protocol Shadow
  var A, B as output:
  thread T:
    execute ruleset:
      > (A) + (.) -> (!A & B) + (.)
      > (A & B) + (.) -> (!B) + (.)
";
        let report = lint_source(source);
        let shadowed = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PP103")
            .expect("PP103");
        assert_eq!(shadowed.span.unwrap().line, 6, "{shadowed:?}");
        assert!(
            shadowed.snippet.as_deref().unwrap().contains("(A & B)"),
            "{shadowed:?}"
        );
        assert!(shadowed.message.contains("thread T"), "{shadowed:?}");
    }

    #[test]
    fn unreachable_rule_found_from_initial_support() {
        // B never occurs: no init, no input, nothing sets it.
        let source = "\
def protocol Dead
  var A as input, B, Y as output:
  thread T:
    execute ruleset:
      > (A) + (.) -> (Y) + (.)
      > (B) + (.) -> (!Y) + (.)
";
        let report = lint_source(source);
        let unreachable = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PP105")
            .expect("PP105: {report:?}");
        assert_eq!(unreachable.span.unwrap().line, 6, "{unreachable:?}");
    }

    #[test]
    fn clean_program_is_clean() {
        let source = "\
def protocol Fratricide
  var L <- on as output:
  thread Elect:
    execute ruleset:
      > (L) + (L) -> (L) + (!L)
";
        let report = lint_source(source);
        assert!(report.diagnostics.is_empty(), "{report:?}");
    }

    #[test]
    fn raw_thread_rules_are_checked() {
        let source = "\
def protocol Raw
  var R <- on as output:
  thread Forever:
    execute ruleset:
      > (R & !R) + (.) -> (R) + (.)
";
        // No `repeat:` under the thread header, so this parses as a raw
        // (forever) thread and exercises the raw-thread span path.
        let report = lint_source(source);
        assert!(codes(&report).contains(&"PP101"), "{report:?}");
        assert!(report.has_errors());
    }

    #[test]
    fn over_budget_but_enumerable_program_reports_pp191_not_pp207() {
        use pp_lang::ast::build;
        use pp_rules::{Guard, VarSet};

        let mut vars = VarSet::new();
        let first = vars.add("V0");
        for i in 1..15 {
            let _ = vars.add(&format!("V{i}"));
        }
        // 15 declared + 6 lowering flags = 21 > 20: PP207 territory. But
        // only two states are ever live ({} and {V0}), so enumeration
        // compiles it and the budget warning is replaced by PP191.
        let body: Vec<Instr> = (0..6).map(|_| build::assign(first, Guard::any())).collect();
        let program = Program {
            name: "big".into(),
            vars,
            inputs: vec![],
            outputs: vec![first],
            init: vec![],
            derived_init: vec![],
            threads: vec![Thread::Structured {
                name: "Main".into(),
                body,
            }],
        };
        let report = lint_builtin(&program);
        assert!(!codes(&report).contains(&"PP207"), "{report:?}");
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "PP191")
            .expect("PP191");
        assert_eq!(d.severity, Severity::Info);
        assert!(
            d.message.contains("2 live states"),
            "live count: {}",
            d.message
        );
        assert!(
            d.message.contains("of 32768 possible with 15 variables"),
            "{}",
            d.message
        );
    }

    #[test]
    fn within_budget_program_gets_no_pp191() {
        // Fits the flag budget: the hierarchy backend applies, so no
        // enumeration info line even though the closure ran.
        let source = "\
def protocol Fits
  var L <- on as output:
  thread Elect:
    execute ruleset:
      > (L) + (L) -> (L) + (!L)
";
        let report = lint_source(source);
        assert!(!codes(&report).contains(&"PP191"), "{report:?}");
    }

    #[test]
    fn report_is_sorted_by_position() {
        let source = "\
def protocol Multi
  var A, Y as output:
  thread T:
    execute ruleset:
      > (A & !A) + (.) -> (Y) + (.)
      > (A) + (.) -> (A) + (.)
";
        let report = lint_source(source);
        let lines: Vec<usize> = report
            .diagnostics
            .iter()
            .filter_map(|d| d.span.map(|s| s.line))
            .collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "{report:?}");
    }
}
