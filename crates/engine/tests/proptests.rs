//! Property-based tests for the engine's probabilistic and data-structure
//! invariants.

use pp_engine::fenwick::Fenwick;
use pp_engine::meanfield;
use pp_engine::protocol::{Protocol, ProtocolSpec, TableProtocol};
use pp_engine::rng::SimRng;
use pp_engine::stats::{fit_line, quantile_sorted, Summary};
use proptest::prelude::*;

proptest! {
    /// Fenwick prefix sums always equal naive prefix sums.
    #[test]
    fn fenwick_matches_naive(weights in proptest::collection::vec(0u64..100, 1..64)) {
        let f = Fenwick::from_weights(&weights);
        let mut acc = 0u64;
        for i in 0..=weights.len() {
            prop_assert_eq!(f.prefix(i), acc);
            if i < weights.len() {
                acc += weights[i];
            }
        }
        prop_assert_eq!(f.total(), acc);
    }

    /// Fenwick find() returns the slot containing the rank.
    #[test]
    fn fenwick_find_is_consistent(weights in proptest::collection::vec(0u64..20, 1..64), rank_frac in 0.0f64..1.0) {
        let f = Fenwick::from_weights(&weights);
        prop_assume!(f.total() > 0);
        let r = ((f.total() as f64) * rank_frac) as u64;
        let r = r.min(f.total() - 1);
        let slot = f.find(r);
        prop_assert!(f.prefix(slot) <= r);
        prop_assert!(r < f.prefix(slot + 1));
    }

    /// Incremental add/remove keeps the tree equal to a rebuilt tree.
    #[test]
    fn fenwick_incremental_equals_rebuild(
        weights in proptest::collection::vec(1u64..50, 2..32),
        updates in proptest::collection::vec((0usize..31, -5i64..6), 0..32),
    ) {
        let mut w = weights.clone();
        let mut f = Fenwick::from_weights(&w);
        for (slot, delta) in updates {
            let slot = slot % w.len();
            let delta = delta.max(-(w[slot] as i64));
            w[slot] = (w[slot] as i64 + delta) as u64;
            f.add(slot, delta);
        }
        prop_assert_eq!(f, Fenwick::from_weights(&w));
    }

    /// Binomial samples stay in range for arbitrary parameters.
    #[test]
    fn binomial_in_range(seed in 0u64..5000, count in 0u64..2_000_000, p in 0.0f64..=1.0) {
        let mut rng = SimRng::seed_from(seed);
        let x = rng.binomial(count, p);
        prop_assert!(x <= count);
    }

    /// Geometric samples are finite and non-negative for valid p.
    #[test]
    fn geometric_is_finite(seed in 0u64..5000, p in 0.001f64..=1.0) {
        let mut rng = SimRng::seed_from(seed);
        let _ = rng.geometric(p);
    }

    /// below(k) is always < k.
    #[test]
    fn below_in_range(seed in 0u64..5000, bound in 1u64..u64::MAX) {
        let mut rng = SimRng::seed_from(seed);
        prop_assert!(rng.below(bound) < bound);
    }

    /// The mean-field drift conserves total mass for conservative
    /// protocols (population protocols never create or destroy agents).
    #[test]
    fn drift_conserves_mass(x0 in 0.0f64..1.0, x1 in 0.0f64..1.0) {
        let total = x0 + x1;
        prop_assume!(total > 0.0);
        let p = TableProtocol::new(2, "e").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
        let d = meanfield::drift(&p, &[x0 / total, x1 / total]);
        prop_assert!(d.iter().sum::<f64>().abs() < 1e-12);
    }

    /// TableProtocol outcome distributions always sum to 1.
    #[test]
    fn outcomes_normalized(a in 0usize..3, b in 0usize..3, p1 in 0.01f64..0.5, p2 in 0.01f64..0.5) {
        let proto = TableProtocol::new(3, "t")
            .rule_p(0, 1, 2, 2, p1)
            .rule_p(0, 1, 1, 0, p2)
            .rule(2, 2, 0, 0);
        let outs = proto.outcomes(a, b);
        let total: f64 = outs.iter().map(|&(_, q)| q).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// interact() only returns states the outcome distribution supports.
    #[test]
    fn interact_supported_by_outcomes(seed in 0u64..2000, a in 0usize..3, b in 0usize..3) {
        let proto = TableProtocol::new(3, "t")
            .rule_p(0, 1, 2, 2, 0.5)
            .rule(1, 2, 0, 0);
        let mut rng = SimRng::seed_from(seed);
        let result = proto.interact(a, b, &mut rng);
        let outs = proto.outcomes(a, b);
        prop_assert!(outs.iter().any(|&(o, q)| o == result && q > 0.0),
            "result {:?} not in {:?}", result, outs);
    }

    /// Summary quantiles are ordered and bounded by min/max.
    #[test]
    fn summary_is_ordered(data in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.median && s.median <= s.p90 && s.p90 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// quantile_sorted is monotone in q.
    #[test]
    fn quantiles_monotone(mut data in proptest::collection::vec(-1e3f64..1e3, 2..50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&data, lo) <= quantile_sorted(&data, hi) + 1e-9);
    }

    /// Line fits recover exact affine relationships.
    #[test]
    fn fit_line_exact(slope in -100.0f64..100.0, intercept in -100.0f64..100.0) {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| {
            let x = i as f64;
            (x, slope * x + intercept)
        }).collect();
        let fit = fit_line(&pts);
        prop_assert!((fit.slope - slope).abs() < 1e-6);
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
    }
}
