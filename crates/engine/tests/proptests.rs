//! Property-based tests for the engine's probabilistic and data-structure
//! invariants, driven by seeded random case generation (no external
//! property-testing dependency: cases are drawn from [`SimRng`], so every
//! failure is reproducible from the printed case index).

use pp_engine::fenwick::Fenwick;
use pp_engine::meanfield;
use pp_engine::protocol::{Protocol, ProtocolSpec, TableProtocol};
use pp_engine::rng::SimRng;
use pp_engine::stats::{fit_line, quantile_sorted, Summary};

const CASES: u64 = 256;

/// Generates a random weight vector with entries in `0..bound`.
fn random_weights(rng: &mut SimRng, max_len: usize, bound: u64) -> Vec<u64> {
    let len = 1 + rng.index(max_len);
    (0..len).map(|_| rng.below(bound)).collect()
}

/// Fenwick prefix sums always equal naive prefix sums.
#[test]
fn fenwick_matches_naive() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(100 + case);
        let weights = random_weights(&mut rng, 64, 100);
        let f = Fenwick::from_weights(&weights);
        let mut acc = 0u64;
        for i in 0..=weights.len() {
            assert_eq!(f.prefix(i), acc, "case {case}, prefix {i}");
            if i < weights.len() {
                acc += weights[i];
            }
        }
        assert_eq!(f.total(), acc, "case {case}");
    }
}

/// Fenwick find() returns the slot containing the rank.
#[test]
fn fenwick_find_is_consistent() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(200 + case);
        let weights = random_weights(&mut rng, 64, 20);
        let f = Fenwick::from_weights(&weights);
        if f.total() == 0 {
            continue;
        }
        let r = rng.below(f.total());
        let slot = f.find(r);
        assert!(f.prefix(slot) <= r, "case {case}");
        assert!(r < f.prefix(slot + 1), "case {case}");
    }
}

/// Incremental add/remove keeps the tree equal to a rebuilt tree.
#[test]
fn fenwick_incremental_equals_rebuild() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(300 + case);
        let len = 2 + rng.index(30);
        let mut w: Vec<u64> = (0..len).map(|_| 1 + rng.below(49)).collect();
        let mut f = Fenwick::from_weights(&w);
        let updates = rng.index(32);
        for _ in 0..updates {
            let slot = rng.index(w.len());
            let delta = (rng.below(11) as i64 - 5).max(-(w[slot] as i64));
            w[slot] = (w[slot] as i64 + delta) as u64;
            f.add(slot, delta);
        }
        assert_eq!(f, Fenwick::from_weights(&w), "case {case}");
    }
}

/// Binomial samples stay in range for arbitrary parameters.
#[test]
fn binomial_in_range() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(400 + case);
        let count = rng.below(2_000_000);
        let p = rng.f64();
        let x = rng.binomial(count, p);
        assert!(x <= count, "case {case}: {x} > {count}");
    }
}

/// Geometric samples are finite and non-negative for valid p.
#[test]
fn geometric_is_finite() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(500 + case);
        let p = 0.001 + 0.999 * rng.f64();
        let _ = rng.geometric(p);
    }
}

/// below(k) is always < k.
#[test]
fn below_in_range() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(600 + case);
        let bound = 1 + (rng.next_u64() >> 1);
        assert!(rng.below(bound) < bound, "case {case}");
    }
}

/// The mean-field drift conserves total mass for conservative protocols
/// (population protocols never create or destroy agents).
#[test]
fn drift_conserves_mass() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(700 + case);
        let x0 = rng.f64();
        let x1 = rng.f64();
        let total = x0 + x1;
        if total <= 0.0 {
            continue;
        }
        let p = TableProtocol::new(2, "e").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
        let d = meanfield::drift(&p, &[x0 / total, x1 / total]);
        assert!(d.iter().sum::<f64>().abs() < 1e-12, "case {case}");
    }
}

/// TableProtocol outcome distributions always sum to 1.
#[test]
fn outcomes_normalized() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(800 + case);
        let a = rng.index(3);
        let b = rng.index(3);
        let p1 = 0.01 + 0.49 * rng.f64();
        let p2 = 0.01 + 0.49 * rng.f64();
        let proto = TableProtocol::new(3, "t")
            .rule_p(0, 1, 2, 2, p1)
            .rule_p(0, 1, 1, 0, p2)
            .rule(2, 2, 0, 0);
        let outs = proto.outcomes(a, b);
        let total: f64 = outs.iter().map(|&(_, q)| q).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total {total}");
    }
}

/// interact() only returns states the outcome distribution supports.
#[test]
fn interact_supported_by_outcomes() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(900 + case);
        let a = rng.index(3);
        let b = rng.index(3);
        let proto = TableProtocol::new(3, "t")
            .rule_p(0, 1, 2, 2, 0.5)
            .rule(1, 2, 0, 0);
        let result = proto.interact(a, b, &mut rng);
        let outs = proto.outcomes(a, b);
        assert!(
            outs.iter().any(|&(o, q)| o == result && q > 0.0),
            "case {case}: result {result:?} not in {outs:?}"
        );
    }
}

/// Summary quantiles are ordered and bounded by min/max.
#[test]
fn summary_is_ordered() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(1000 + case);
        let len = 1 + rng.index(99);
        let data: Vec<f64> = (0..len).map(|_| (rng.f64() - 0.5) * 2e6).collect();
        let s = Summary::of(&data);
        assert!(
            s.min <= s.median && s.median <= s.p90 && s.p90 <= s.max,
            "case {case}"
        );
        assert!(s.min <= s.mean && s.mean <= s.max, "case {case}");
    }
}

/// quantile_sorted is monotone in q.
#[test]
fn quantiles_monotone() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(1100 + case);
        let len = 2 + rng.index(48);
        let mut data: Vec<f64> = (0..len).map(|_| (rng.f64() - 0.5) * 2e3).collect();
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q1 = rng.f64();
        let q2 = rng.f64();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(
            quantile_sorted(&data, lo) <= quantile_sorted(&data, hi) + 1e-9,
            "case {case}"
        );
    }
}

/// Line fits recover exact affine relationships.
#[test]
fn fit_line_exact() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(1200 + case);
        let slope = (rng.f64() - 0.5) * 200.0;
        let intercept = (rng.f64() - 0.5) * 200.0;
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = i as f64;
                (x, slope * x + intercept)
            })
            .collect();
        let fit = fit_line(&pts);
        assert!((fit.slope - slope).abs() < 1e-6, "case {case}");
        assert!((fit.intercept - intercept).abs() < 1e-6, "case {case}");
    }
}
