//! Hierarchical section profiler for the engine's hot paths.
//!
//! Where [`crate::metrics`] counts *how often* things happen, this module
//! measures *where the time goes*: monotonic-clock scoped timers attached to
//! a fixed set of named [`Section`]s, stacked per thread so nested sections
//! attribute self-time vs child-time correctly. Aggregation is keyed on
//! (parent, child) edges, so the same section (say
//! [`Section::PmfInversion`]) shows up separately under each caller in the
//! rendered tree.
//!
//! The cost model mirrors `metrics`:
//!
//! * **Disabled (default):** every capture point is one relaxed atomic load
//!   and a predicted-not-taken branch. Backends hoist the flag out of their
//!   batch loops with [`enabled`] + [`section_if`], so a disabled profiler
//!   adds one load per `step_batch` call plus one per pmf draw — nothing
//!   per interaction. No timestamps are taken, no thread-local is touched.
//! * **Enabled:** opening a scope pushes a frame on a thread-local stack
//!   and reads the monotonic clock; closing it reads the clock again,
//!   subtracts accumulated child time, and adds (calls, total, self) to
//!   shared relaxed atomics keyed by the (parent, child) edge.
//!
//! Sections were chosen over sampling deliberately: the hot paths are a few
//! microseconds per epoch and heavily regime-dependent, so a statistical
//! profiler needs long runs and symbol infrastructure to resolve the same
//! attribution that four scoped timers give exactly — see DESIGN.md §14.
//!
//! # Examples
//!
//! ```
//! use pp_engine::prof::{self, Section};
//!
//! prof::reset();
//! prof::enable();
//! {
//!     let _outer = prof::section(Section::BatchCount);
//!     let _inner = prof::section(Section::CollisionEpoch);
//! } // guards drop here, attributing elapsed time
//! prof::disable();
//! let report = prof::snapshot();
//! assert_eq!(report.calls_of("count_step_batch"), 1);
//! assert_eq!(report.calls_of("collision_epoch"), 1);
//! ```

use crate::json::Json;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Named timed sections of the engine's hot paths.
///
/// The set is fixed at compile time so capture points cost an enum constant
/// rather than a string hash, and so the report renderer can lay out the
/// whole tree without allocation on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Section {
    /// One `CountPopulation::step_batch` call (the three-regime dispatcher).
    BatchCount,
    /// One `AcceleratedPopulation::step_batch` call.
    BatchAccel,
    /// One agent-array `Population::step_batch` call.
    BatchAgents,
    /// One `SparseCountPopulation::step_batch` call.
    BatchSparse,
    /// One `MatchingPopulation::step_batch` call.
    BatchMatching,
    /// The no-reactivity-cache tight loop (`k > BATCH_STATE_LIMIT`).
    DenseFallback,
    /// One Fenwick-sampled step in the reactive-dense per-step regime.
    PerStep,
    /// One geometric no-op leap plus its reactive interaction.
    Leap,
    /// One collision-free contingency-table epoch ([`crate::collision`]).
    CollisionEpoch,
    /// Epoch-length draw: guided CDF inversion of the birthday law.
    EpochLenSample,
    /// Epoch margins: the `W` and `M | W` multivariate-hypergeometric
    /// conditional chains.
    EpochMargins,
    /// Epoch row draws: per-row multivariate-hypergeometric conditionals.
    EpochRows,
    /// Table settling: applying one cell's rule deltas (`apply_cell`).
    EpochSettle,
    /// The per-epoch boundary (colliding) interaction.
    EpochBoundary,
    /// Fenwick tree sync from a collision epoch's per-state deltas.
    FenwickSync,
    /// Fenwick tree construction from a full weight vector.
    FenwickRebuild,
    /// Exact mode-centered pmf inversion in `SimRng` (binomial and
    /// hypergeometric draws — the collision chain's conditionals).
    PmfInversion,
    /// One sharded super-epoch round: all shard chains, spawn to join
    /// ([`crate::pardense::run_super_epoch`]).
    ShardRound,
    /// Fixed-order merge of per-shard deltas plus the count-structure sync
    /// after a super-epoch.
    ShardMerge,
    /// Fault-plan trigger splitting and due-injection application in
    /// `FaultyPopulation::step_batch`.
    FaultSplit,
    /// Caller-side observation work (species counts, dominance tracking)
    /// recorded by `ppsim profile` so run-loop analysis is attributed too.
    Observer,
}

impl Section {
    /// All sections, in report order.
    pub const ALL: [Section; 21] = [
        Section::BatchCount,
        Section::BatchAccel,
        Section::BatchAgents,
        Section::BatchSparse,
        Section::BatchMatching,
        Section::DenseFallback,
        Section::PerStep,
        Section::Leap,
        Section::CollisionEpoch,
        Section::EpochLenSample,
        Section::EpochMargins,
        Section::EpochRows,
        Section::EpochSettle,
        Section::EpochBoundary,
        Section::FenwickSync,
        Section::FenwickRebuild,
        Section::PmfInversion,
        Section::ShardRound,
        Section::ShardMerge,
        Section::FaultSplit,
        Section::Observer,
    ];

    /// Stable snake_case name used in reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Section::BatchCount => "count_step_batch",
            Section::BatchAccel => "accel_step_batch",
            Section::BatchAgents => "agents_step_batch",
            Section::BatchSparse => "sparse_step_batch",
            Section::BatchMatching => "matching_step_batch",
            Section::DenseFallback => "dense_fallback",
            Section::PerStep => "per_step",
            Section::Leap => "noop_leap",
            Section::CollisionEpoch => "collision_epoch",
            Section::EpochLenSample => "epoch_len_sample",
            Section::EpochMargins => "epoch_margins",
            Section::EpochRows => "epoch_rows",
            Section::EpochSettle => "epoch_settle",
            Section::EpochBoundary => "epoch_boundary",
            Section::FenwickSync => "fenwick_sync",
            Section::FenwickRebuild => "fenwick_rebuild",
            Section::PmfInversion => "pmf_inversion",
            Section::ShardRound => "shard_round",
            Section::ShardMerge => "shard_merge",
            Section::FaultSplit => "fault_split",
            Section::Observer => "observer",
        }
    }
}

const NUM_SECTIONS: usize = Section::ALL.len();
/// Parent slots: index 0 is "root" (no enclosing section), `s + 1` is
/// section `s`.
const NUM_PARENTS: usize = NUM_SECTIONS + 1;
const NUM_EDGES: usize = NUM_PARENTS * NUM_SECTIONS;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EDGE_CALLS: [AtomicU64; NUM_EDGES] = [const { AtomicU64::new(0) }; NUM_EDGES];
static EDGE_TOTAL_NS: [AtomicU64; NUM_EDGES] = [const { AtomicU64::new(0) }; NUM_EDGES];
static EDGE_SELF_NS: [AtomicU64; NUM_EDGES] = [const { AtomicU64::new(0) }; NUM_EDGES];

struct Frame {
    section: usize,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Whether the profiler is currently recording. Hot loops load this once
/// per batch and pass the cached result to [`section_if`].
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on (all capture points start timing).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Edges accumulated so far are kept; sections already
/// open still attribute on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Zeroes every accumulated edge (recording state is unchanged).
pub fn reset() {
    for c in &EDGE_CALLS {
        c.store(0, Ordering::Relaxed);
    }
    for t in &EDGE_TOTAL_NS {
        t.store(0, Ordering::Relaxed);
    }
    for s in &EDGE_SELF_NS {
        s.store(0, Ordering::Relaxed);
    }
}

/// An open scoped timer; attributes its elapsed time on drop.
///
/// Obtained from [`section`] / [`section_if`]; hold it in a `let _guard`
/// binding for the region being timed. Guards nest: time spent in an inner
/// guard is subtracted from the outer section's self-time.
#[must_use = "the section is timed until the guard drops"]
#[derive(Debug)]
pub struct SectionGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a scoped timer for `s` under the innermost open section of this
/// thread. Returns `None` (and does nothing else) while disabled.
#[inline]
pub fn section(s: Section) -> Option<SectionGuard> {
    section_if(enabled(), s)
}

/// [`section`] with the enabled flag hoisted by the caller: batch loops
/// load [`enabled`] once and pass it here per iteration, skipping even the
/// relaxed atomic load while disabled.
#[inline]
pub fn section_if(on: bool, s: Section) -> Option<SectionGuard> {
    if !on {
        return None;
    }
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            section: s as usize,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    Some(SectionGuard {
        _not_send: std::marker::PhantomData,
    })
}

impl Drop for SectionGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop().expect("section guard with empty stack");
            let elapsed = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            let parent = match stack.last_mut() {
                Some(p) => {
                    p.child_ns = p.child_ns.saturating_add(elapsed);
                    p.section + 1
                }
                None => 0,
            };
            let edge = parent * NUM_SECTIONS + frame.section;
            EDGE_CALLS[edge].fetch_add(1, Ordering::Relaxed);
            EDGE_TOTAL_NS[edge].fetch_add(elapsed, Ordering::Relaxed);
            EDGE_SELF_NS[edge].fetch_add(self_ns, Ordering::Relaxed);
        });
    }
}

/// One aggregated (parent, child) edge of the section tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfEdge {
    /// Enclosing section name, or `None` for sections opened at top level.
    pub parent: Option<&'static str>,
    /// Section name.
    pub name: &'static str,
    /// Times this section was entered under this parent.
    pub calls: u64,
    /// Total wall nanoseconds inside this section under this parent
    /// (children included).
    pub total_ns: u64,
    /// Nanoseconds not attributed to any child section.
    pub self_ns: u64,
}

/// A frozen snapshot of the profiler registry.
///
/// Edges are read with relaxed ordering, so a snapshot taken while other
/// threads are recording is approximate; take it after the timed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfReport {
    /// Non-empty edges, in section-enum order grouped by parent.
    pub edges: Vec<ProfEdge>,
}

/// Freezes the current profiler contents into a [`ProfReport`].
#[must_use]
pub fn snapshot() -> ProfReport {
    let mut edges = Vec::new();
    for parent in 0..NUM_PARENTS {
        for child in 0..NUM_SECTIONS {
            let edge = parent * NUM_SECTIONS + child;
            let calls = EDGE_CALLS[edge].load(Ordering::Relaxed);
            if calls == 0 {
                continue;
            }
            edges.push(ProfEdge {
                parent: if parent == 0 {
                    None
                } else {
                    Some(Section::ALL[parent - 1].name())
                },
                name: Section::ALL[child].name(),
                calls,
                total_ns: EDGE_TOTAL_NS[edge].load(Ordering::Relaxed),
                self_ns: EDGE_SELF_NS[edge].load(Ordering::Relaxed),
            });
        }
    }
    ProfReport { edges }
}

/// Formats nanoseconds for the human-readable tree.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

impl ProfReport {
    /// Total nanoseconds attributed to sections opened at top level (the
    /// roots of the tree) — the profiler's coverage of the timed run.
    #[must_use]
    pub fn attributed_ns(&self) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.parent.is_none())
            .map(|e| e.total_ns)
            .sum()
    }

    /// Total calls of a section summed across all parents.
    #[must_use]
    pub fn calls_of(&self, name: &str) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.calls)
            .sum()
    }

    /// Total nanoseconds of a section summed across all parents. Nested
    /// occurrences of the same section double-count here; use the edge list
    /// for exact accounting.
    #[must_use]
    pub fn total_ns_of(&self, name: &str) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.total_ns)
            .sum()
    }

    /// The edge for `name` directly under `parent` (`None` = top level).
    #[must_use]
    pub fn edge(&self, parent: Option<&str>, name: &str) -> Option<&ProfEdge> {
        self.edges
            .iter()
            .find(|e| e.name == name && e.parent == parent)
    }

    fn render_children(&self, parent: Option<&'static str>, depth: usize, out: &mut String) {
        for e in self.edges.iter().filter(|e| e.parent == parent) {
            out.push_str(&format!(
                "{:indent$}{:<width$} {:>12} {:>12} {:>12}\n",
                "",
                e.name,
                e.calls,
                fmt_ns(e.total_ns),
                fmt_ns(e.self_ns),
                indent = 2 * depth,
                width = 28usize.saturating_sub(2 * depth),
            ));
            // Recurse only when the child actually encloses something, and
            // guard against self-edges (a section nested in itself) so the
            // renderer cannot loop.
            if e.parent != Some(e.name) {
                self.render_children(Some(e.name), depth + 1, out);
            }
        }
    }

    /// Renders the section tree as aligned text: calls, total time, and
    /// self time per (parent, child) edge, children indented.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = format!(
            "{:<28} {:>12} {:>12} {:>12}\n",
            "section", "calls", "total", "self"
        );
        self.render_children(None, 0, &mut out);
        out
    }

    /// Renders the report as a JSON document. When `wall_ns` is given (the
    /// caller's own measurement of the profiled region), the document also
    /// carries the attributed fraction `attributed_ns / wall_ns`.
    #[must_use]
    pub fn to_json(&self, wall_ns: Option<u64>) -> Json {
        let mut pairs = vec![
            ("kind", Json::from("profile_report")),
            ("attributed_ns", Json::from(self.attributed_ns())),
        ];
        if let Some(wall) = wall_ns {
            pairs.push(("wall_ns", Json::from(wall)));
            let frac = if wall > 0 {
                self.attributed_ns() as f64 / wall as f64
            } else {
                0.0
            };
            pairs.push(("attributed_frac", Json::from(frac)));
        }
        pairs.push((
            "sections",
            Json::arr(self.edges.iter().map(|e| {
                Json::obj([
                    (
                        "parent",
                        e.parent.map_or(Json::Null, |p| Json::from(p.to_string())),
                    ),
                    ("name", Json::from(e.name)),
                    ("calls", Json::from(e.calls)),
                    ("total_ns", Json::from(e.total_ns)),
                    ("self_ns", Json::from(e.self_ns)),
                ])
            })),
        ));
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The registry is process-global and other engine tests run
    // concurrently, so these tests only assert on edges whose parent chain
    // they alone can produce (rooted at Section::Observer, which no backend
    // opens), and they serialize behind the shared metrics test mutex so
    // reset() cannot clobber a sibling's recording window.

    #[test]
    fn disabled_sections_record_nothing() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        disable();
        reset();
        {
            let g = section(Section::Observer);
            assert!(g.is_none(), "disabled profiler must not open sections");
        }
        assert_eq!(snapshot().calls_of("observer"), 0);
    }

    #[test]
    fn nested_scopes_split_self_and_child_time() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        {
            let _outer = section(Section::Observer);
            std::thread::sleep(Duration::from_millis(15));
            {
                let _inner = section(Section::FaultSplit);
                std::thread::sleep(Duration::from_millis(30));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        disable();
        let report = snapshot();
        let outer = report.edge(None, "observer").expect("outer edge").clone();
        let inner = report
            .edge(Some("observer"), "fault_split")
            .expect("inner edge")
            .clone();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Child total is the sleep inside it; outer self is its own sleeps.
        assert!(inner.total_ns >= 30_000_000, "inner {}", inner.total_ns);
        assert!(outer.total_ns >= 50_000_000, "outer {}", outer.total_ns);
        // Self-time is exactly total minus the children's elapsed time.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert!(outer.self_ns >= 20_000_000, "self {}", outer.self_ns);
        assert_eq!(inner.self_ns, inner.total_ns, "leaf self == total");
    }

    #[test]
    fn report_renders_tree_and_json() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        {
            let _outer = section(Section::Observer);
            let _inner = section(Section::PmfInversion);
        }
        disable();
        let report = snapshot();
        let tree = report.render_tree();
        assert!(tree.contains("observer"));
        assert!(tree.contains("  pmf_inversion"), "child indented:\n{tree}");
        let doc = report.to_json(Some(report.attributed_ns().max(1)));
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some("profile_report")
        );
        let frac = doc.get("attributed_frac").and_then(Json::as_f64).unwrap();
        assert!(frac > 0.9, "attribution {frac}");
    }

    #[test]
    fn attribution_sums_children_into_parent_total() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reset();
        enable();
        for _ in 0..100 {
            let _outer = section(Section::Observer);
            for _ in 0..3 {
                let _inner = section(Section::EpochLenSample);
            }
        }
        disable();
        let report = snapshot();
        let outer = report.edge(None, "observer").expect("outer").clone();
        let inner = report
            .edge(Some("observer"), "epoch_len_sample")
            .expect("inner")
            .clone();
        assert_eq!(outer.calls, 100);
        assert_eq!(inner.calls, 300);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }
}
