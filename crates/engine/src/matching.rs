//! Random-matching synchronous scheduler.
//!
//! Section 5.3 of the paper slows protocols down by emulating a scheduler
//! that "activates a random matching in the population in every step". This
//! module provides that scheduler directly: each round draws a uniformly
//! random (near-)perfect matching on the agents and applies one interaction
//! per matched pair, with a uniformly random orientation.
//!
//! Theorem 5.1's oscillator analysis, and consequently the whole clock
//! hierarchy, is claimed to hold under both the asynchronous and the
//! random-matching scheduler; experiment E12 checks this empirically.

use crate::json::Json;
use crate::metrics::{self, record_batch, Counter};
use crate::population::Population;
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::sim::{BatchOutcome, Simulator, StepOutcome};
use crate::snapshot::{hex_u64, parse_hex_u64};

/// A population driven by the random-matching synchronous scheduler.
///
/// Each [`MatchingPopulation::round`] performs `⌊n/2⌋` pairwise interactions
/// along a fresh uniformly random matching. With odd `n`, one agent idles per
/// round. Parallel time advances by 1 per round (each agent participates in
/// ≤ 1 interaction per round, matching the paper's convention).
///
/// # Examples
///
/// ```
/// use pp_engine::matching::MatchingPopulation;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::Simulator;
///
/// let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
/// let mut pop = MatchingPopulation::from_counts(&p, &[127, 1]);
/// let mut rng = SimRng::seed_from(0);
/// while pop.count(0) > 0 {
///     pop.round(&mut rng);
/// }
/// // One-way epidemic over matchings completes in Θ(log n) rounds.
/// assert!(pop.rounds() < 64);
/// ```
#[derive(Debug, Clone)]
pub struct MatchingPopulation<P> {
    inner: Population<P>,
    /// Shuffle buffer of agent indices, reused across rounds.
    order: Vec<u32>,
    rounds: u64,
}

impl<P: Protocol> MatchingPopulation<P> {
    /// Creates a population with `counts[s]` agents in state `s`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Population::from_counts`].
    #[must_use]
    pub fn from_counts(protocol: P, counts: &[u64]) -> Self {
        let inner = Population::from_counts(protocol, counts);
        let order = (0..inner.n() as u32).collect();
        Self {
            inner,
            order,
            rounds: 0,
        }
    }

    /// Number of matching rounds executed.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Access to the underlying explicit population.
    #[must_use]
    pub fn population(&self) -> &Population<P> {
        &self.inner
    }

    /// Executes one round: a fresh uniform random matching, one interaction
    /// per matched pair with random orientation. Returns how many of the
    /// round's interactions changed at least one agent's state.
    pub fn round(&mut self, rng: &mut SimRng) -> u64 {
        // Fisher–Yates shuffle; consecutive entries are matched.
        let n = self.order.len();
        for i in (1..n).rev() {
            let j = rng.index(i + 1);
            self.order.swap(i, j);
        }
        let mut changed = 0u64;
        for pair in self.order.chunks_exact(2) {
            let (mut i, mut j) = (pair[0] as usize, pair[1] as usize);
            if rng.chance(0.5) {
                std::mem::swap(&mut i, &mut j);
            }
            if self.inner.interact_pair(i, j, rng) == StepOutcome::Changed {
                changed += 1;
            }
        }
        self.rounds += 1;
        changed
    }

    /// Runs until `stop` holds (checked once per round) or `max_rounds`
    /// pass; returns the round count at which `stop` first held.
    pub fn run_until<F>(&mut self, rng: &mut SimRng, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&Population<P>) -> bool,
    {
        if stop(&self.inner) {
            return Some(self.rounds);
        }
        for _ in 0..max_rounds {
            self.round(rng);
            if stop(&self.inner) {
                return Some(self.rounds);
            }
        }
        None
    }
}

impl<P: Protocol> Simulator for MatchingPopulation<P> {
    fn n(&self) -> u64 {
        self.inner.n()
    }

    fn num_states(&self) -> usize {
        self.inner.num_states()
    }

    fn steps(&self) -> u64 {
        self.inner.steps()
    }

    /// Parallel time under the matching scheduler is the round count.
    fn time(&self) -> f64 {
        self.rounds as f64
    }

    fn count(&self, state: usize) -> u64 {
        self.inner.count(state)
    }

    fn counts(&self) -> Vec<u64> {
        self.inner.counts()
    }

    /// Delegates to the underlying agent array; migrated agents take part
    /// in the next matching round under their new state.
    fn migrate(&mut self, from: usize, to: usize, k: u64) -> u64 {
        self.inner.migrate(from, to, k)
    }

    /// A single scheduler activation is a whole matching round.
    fn step(&mut self, rng: &mut SimRng) -> StepOutcome {
        if self.round(rng) > 0 {
            StepOutcome::Changed
        } else {
            StepOutcome::Unchanged
        }
    }

    /// Runs whole matching rounds until at least `max_steps` interactions
    /// (`⌊n/2⌋` per round) have been executed. The matching scheduler has no
    /// sub-round granularity, so a batch may overshoot `max_steps` by up to
    /// one round minus one interaction; `executed` reports the true step
    /// delta. Never reports silence.
    fn step_batch(&mut self, rng: &mut SimRng, max_steps: u64) -> BatchOutcome {
        let _batch_span = crate::prof::section(crate::prof::Section::BatchMatching);
        let start = self.inner.steps();
        let start_rounds = self.rounds;
        let mut changed = 0u64;
        while self.inner.steps() - start < max_steps {
            changed += self.round(rng);
        }
        let out = BatchOutcome {
            executed: self.inner.steps() - start,
            changed,
            silent: false,
        };
        if metrics::enabled() {
            metrics::add(Counter::MatchingRounds, self.rounds - start_rounds);
            record_batch(&out);
        }
        out
    }

    fn backend_tag(&self) -> &'static str {
        "matching"
    }

    /// Serializes the inner agent array, the shuffle buffer (its order
    /// persists across rounds and seeds the next Fisher–Yates pass, so it is
    /// RNG-visible), and the round counter.
    fn snapshot(&self) -> Result<Json, String> {
        Ok(Json::obj([
            ("inner", self.inner.snapshot()?),
            (
                "order",
                Json::Arr(
                    self.order
                        .iter()
                        .map(|&i| Json::from(u64::from(i)))
                        .collect(),
                ),
            ),
            ("rounds", hex_u64(self.rounds)),
        ]))
    }

    fn restore(&mut self, state: &Json) -> Result<(), String> {
        let inner_state = state
            .get("inner")
            .ok_or("matching snapshot missing inner")?;
        let arr = state
            .get("order")
            .and_then(Json::as_arr)
            .ok_or("matching snapshot missing shuffle order")?;
        let rounds = parse_hex_u64(state.get("rounds").unwrap_or(&Json::Null))?;
        let n = self.order.len();
        if arr.len() != n {
            return Err(format!(
                "snapshot shuffle order has {} entries, population has {n}",
                arr.len()
            ));
        }
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        for j in arr {
            let i = j.as_u64().ok_or("shuffle entry is not an integer")? as usize;
            if i >= n || seen[i] {
                return Err(format!("shuffle order is not a permutation (entry {i})"));
            }
            seen[i] = true;
            order.push(i as u32);
        }
        // Restore the inner population last so an order error leaves the
        // simulator untouched.
        self.inner.restore(inner_state)?;
        self.order = order;
        self.rounds = rounds;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TableProtocol;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn each_agent_interacts_at_most_once_per_round() {
        // With the swap protocol, counts are invariant, but every matched
        // pair swaps; after one round each agent took part in ≤ 1 pair.
        // We verify indirectly: a 2-agent population swaps exactly once.
        let swap = TableProtocol::new(2, "swap")
            .rule(0, 1, 1, 0)
            .rule(1, 0, 0, 1);
        let mut pop = MatchingPopulation::from_counts(swap, &[1, 1]);
        let mut rng = SimRng::seed_from(1);
        let before = pop.population().agent(0);
        pop.round(&mut rng);
        let after = pop.population().agent(0);
        assert_ne!(before, after, "the unique pair must have swapped");
        assert_eq!(pop.steps(), 1);
    }

    #[test]
    fn odd_population_idles_one_agent() {
        let p = epidemic();
        let mut pop = MatchingPopulation::from_counts(p, &[4, 3]);
        let mut rng = SimRng::seed_from(2);
        pop.round(&mut rng);
        assert_eq!(pop.steps(), 3, "⌊7/2⌋ interactions per round");
    }

    #[test]
    fn epidemic_completes_in_logarithmic_rounds() {
        let mut pop = MatchingPopulation::from_counts(epidemic(), &[1023, 1]);
        let mut rng = SimRng::seed_from(3);
        let r = pop
            .run_until(&mut rng, 10_000, |p| p.count(0) == 0)
            .expect("epidemic completes");
        // log2(1024) = 10; epidemic over matchings needs ≈ log2 n + O(log n).
        assert!((10..80).contains(&r), "rounds {r}");
    }

    #[test]
    fn orientation_is_randomized() {
        // One-directional rule (initiator infects responder) spreads even
        // though matching orientation is random.
        let oneway = TableProtocol::new(2, "oneway").rule(1, 0, 1, 1);
        let mut pop = MatchingPopulation::from_counts(oneway, &[63, 1]);
        let mut rng = SimRng::seed_from(4);
        let r = pop.run_until(&mut rng, 10_000, |p| p.count(0) == 0);
        assert!(r.is_some(), "one-way epidemic still completes");
    }

    #[test]
    fn run_rounds_overshoot_is_below_half_n() {
        // `run_rounds` asks for a step budget, but this backend only runs
        // whole matching rounds, so it may overshoot — by strictly less than
        // one round, i.e. < ⌊n/2⌋ interactions. Use a count-invariant swap
        // protocol (never silent) and fractional round targets so the step
        // target never aligns with a round boundary.
        let swap = TableProtocol::new(2, "swap")
            .rule(0, 1, 1, 0)
            .rule(1, 0, 0, 1);
        let n: u64 = 101;
        for (seed, rounds) in [(7u64, 0.3f64), (8, 1.7), (9, 5.5), (10, 12.9)] {
            let mut pop = MatchingPopulation::from_counts(swap.clone(), &[n - 1, 1]);
            let mut rng = SimRng::seed_from(seed);
            crate::sim::run_rounds(&mut pop, rounds, &mut rng, &mut []);
            let target = (rounds * n as f64).ceil() as u64;
            assert!(
                pop.steps() >= target,
                "undershoot: {} < {target}",
                pop.steps()
            );
            assert!(
                pop.steps() - target < n / 2,
                "overshoot {} must be < ⌊n/2⌋ = {} (target {target})",
                pop.steps() - target,
                n / 2
            );
        }
    }

    #[test]
    fn migrate_delegates_to_inner_population() {
        let mut pop = MatchingPopulation::from_counts(epidemic(), &[6, 2]);
        assert_eq!(pop.migrate(1, 0, 2), 2);
        assert_eq!(pop.count(0), 8);
        assert_eq!(pop.count(1), 0);
        assert_eq!(pop.steps(), 0);
    }

    #[test]
    fn simulator_time_counts_rounds() {
        let mut pop = MatchingPopulation::from_counts(epidemic(), &[10, 10]);
        let mut rng = SimRng::seed_from(5);
        pop.round(&mut rng);
        pop.round(&mut rng);
        assert_eq!(pop.time(), 2.0);
        assert_eq!(pop.rounds(), 2);
    }
}
