//! Exact no-op leaping: fast-forward through interaction stretches that
//! provably cannot change any state.
//!
//! Many population protocols spend most of their wall-clock interactions on
//! pairs with identity transitions (e.g. two followers meeting after a leader
//! has been elected). Let `R` be the number of ordered pairs of distinct
//! agents whose state pair is *reactive* (per [`Protocol::is_reactive`]).
//! Each scheduler activation hits a reactive pair with probability
//! `p = R / (n(n−1))` independently, so the number of consecutive non-reactive
//! activations is geometric. The accelerated backend samples that geometric
//! skip in `O(1)` and then samples one interaction *conditioned on the pair
//! being reactive* — the resulting process is equal in distribution to the
//! naive one, step for step, provided `is_reactive` is sound.
//!
//! Note the conditioned interaction may still be an *effective* no-op (a
//! probabilistic rule may resolve to identity); only pairs that can never
//! react are skipped, which is what keeps the acceleration exact.

use crate::collision::{self, BirthdayCdf, CollisionScratch, PlanTable};
use crate::json::Json;
use crate::metrics::{self, record_batch, BatchScratch, Counter};
use crate::pardense;
use crate::prof::{self, Section};
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::sim::{BatchOutcome, Simulator, StepOutcome};
use crate::snapshot::{hex_u64, parse_hex_u64};
use crate::sweep;
use crate::trace::{self, DispatchRecord};

/// Minimum expected reactive interactions per collision-free epoch for the
/// contingency-table path to engage (same dispatch rule as
/// `CountPopulation`; see `counts.rs`).
const COLLISION_MIN_REACTIVE: f64 = 8.0;

/// Count-based backend with exact geometric leaping over non-reactive pairs.
///
/// Per-step cost is `O(k)` in the number of states `k` (to maintain reactive
/// pair counts), so this backend pays off when the protocol is sparse in
/// reactive pairs and `k` is modest — precisely the regime of converged or
/// slow-moving finite-state protocols.
///
/// # Examples
///
/// ```
/// use pp_engine::accel::AcceleratedPopulation;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{Simulator, StepOutcome};
///
/// // Leader fratricide: two leaders meet, one survives.
/// let p = TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0);
/// let mut pop = AcceleratedPopulation::from_counts(&p, &[0, 1000]);
/// let mut rng = SimRng::seed_from(0);
/// loop {
///     if pop.step(&mut rng) == StepOutcome::Silent { break; }
/// }
/// assert_eq!(pop.count(1), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratedPopulation<P> {
    protocol: P,
    counts: Vec<u64>,
    /// `reactive[a * k + b]`: interaction (a, b) can change states.
    reactive: Vec<bool>,
    /// `row[a]` = Σ_b reactive(a,b) · c'_b where c' excludes one agent of
    /// state a (ordered-pair convention); recomputed lazily per step.
    n: u64,
    steps: u64,
    /// Number of reactive ordered pairs of distinct agents.
    reactive_pairs: u64,
    /// Birthday-process table for the collision-batch regime, built lazily
    /// (keyed only on `n`, which never changes).
    birthday: Option<BirthdayCdf>,
    /// Full k×k cell-plan table for sharded super-epochs, built lazily at
    /// sharding scale (depends only on the protocol, so never invalidated).
    plan_table: Option<PlanTable>,
    /// Physical worker-thread knob for sharded super-epochs (0 = auto).
    /// Execution-only: never snapshotted, never affects the trajectory.
    threads: usize,
    /// Working memory for collision epochs (urns + cell-plan cache).
    scratch: CollisionScratch,
}

impl<P: Protocol> AcceleratedPopulation<P> {
    /// Creates a population with `counts[s]` agents in state `s`.
    ///
    /// Precomputes the `k × k` reactivity table, so construction is `O(k²)`.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is longer than the state space or the population
    /// has fewer than 2 agents.
    #[must_use]
    pub fn from_counts(protocol: P, counts: &[u64]) -> Self {
        let k = protocol.num_states();
        assert!(counts.len() <= k, "more initial counts than states");
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must have at least 2 agents");
        let mut full = vec![0u64; k];
        full[..counts.len()].copy_from_slice(counts);
        let mut reactive = vec![false; k * k];
        for a in 0..k {
            for b in 0..k {
                reactive[a * k + b] = protocol.is_reactive(a, b);
            }
        }
        let mut this = Self {
            protocol,
            counts: full,
            reactive,
            n,
            steps: 0,
            reactive_pairs: 0,
            birthday: None,
            plan_table: None,
            threads: 0,
            scratch: CollisionScratch::new(),
        };
        this.reactive_pairs = this.recount_reactive_pairs();
        this
    }

    /// Full `O(k²)` recount of reactive ordered pairs (used at construction
    /// and in debug assertions).
    fn recount_reactive_pairs(&self) -> u64 {
        let k = self.counts.len();
        let mut total = 0u64;
        for a in 0..k {
            let ca = self.counts[a];
            if ca == 0 {
                continue;
            }
            for b in 0..k {
                if self.reactive[a * k + b] {
                    let cb = if a == b { ca - 1 } else { self.counts[b] };
                    total += ca * cb;
                }
            }
        }
        total
    }

    /// Adjusts `reactive_pairs` for a count change `c_u += delta`, given the
    /// *current* counts already reflect the change. `O(k)`.
    fn adjust_reactive_pairs(&mut self, u: usize, delta: i64) {
        let k = self.counts.len();
        let cu = self.counts[u] as i64;
        let old_cu = cu - delta;
        let mut d = 0i64;
        for v in 0..k {
            let cv = self.counts[v] as i64;
            if v == u {
                // Ordered pairs within state u: c(c-1).
                if self.reactive[u * k + u] {
                    d += cu * (cu - 1) - old_cu * (old_cu - 1);
                }
                continue;
            }
            if self.reactive[u * k + v] {
                d += delta * cv;
            }
            if self.reactive[v * k + u] {
                d += cv * delta;
            }
        }
        self.reactive_pairs = (self.reactive_pairs as i64 + d) as u64;
    }

    fn apply_count_change(&mut self, state: usize, delta: i64) {
        self.counts[state] = (self.counts[state] as i64 + delta) as u64;
        self.adjust_reactive_pairs(state, delta);
    }

    /// Samples an ordered reactive pair `(a, b)` of states, proportional to
    /// the number of agent pairs realizing it. `O(k²)` worst case but the
    /// row scan short-circuits on empty states.
    fn sample_reactive_pair(&mut self, rng: &mut SimRng) -> (usize, usize) {
        debug_assert!(self.reactive_pairs > 0);
        let mut r = rng.below(self.reactive_pairs);
        let k = self.counts.len();
        for a in 0..k {
            let ca = self.counts[a];
            if ca == 0 {
                continue;
            }
            for b in 0..k {
                if !self.reactive[a * k + b] {
                    continue;
                }
                let cb = if a == b { ca - 1 } else { self.counts[b] };
                let w = ca * cb;
                if r < w {
                    return (a, b);
                }
                r -= w;
            }
        }
        unreachable!("rank exhausted the reactive pair mass");
    }
}

impl<P: Protocol> Simulator for AcceleratedPopulation<P> {
    fn n(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.counts.len()
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn count(&self, state: usize) -> u64 {
        self.counts[state]
    }

    fn counts(&self) -> Vec<u64> {
        self.counts.clone()
    }

    /// Applies both count deltas through the incremental reactive-pair
    /// maintenance, so silence detection stays exact after the edit. `O(k)`.
    fn migrate(&mut self, from: usize, to: usize, k: u64) -> u64 {
        let states = self.counts.len();
        assert!(from < states, "migrate source state out of range");
        assert!(to < states, "migrate target state out of range");
        let moved = k.min(self.counts[from]);
        if from == to || moved == 0 {
            return 0;
        }
        self.apply_count_change(from, -(moved as i64));
        self.apply_count_change(to, moved as i64);
        debug_assert_eq!(self.reactive_pairs, self.recount_reactive_pairs());
        moved
    }

    /// One *logical* activation: leaps over the geometric number of
    /// non-reactive activations (adding them to `steps`), then performs one
    /// reactive interaction. Returns [`StepOutcome::Silent`] if no reactive
    /// pair exists.
    fn step(&mut self, rng: &mut SimRng) -> StepOutcome {
        if self.reactive_pairs == 0 {
            return StepOutcome::Silent;
        }
        let total_pairs = self.n * (self.n - 1);
        let p = self.reactive_pairs as f64 / total_pairs as f64;
        if p < 1.0 {
            self.steps += rng.geometric(p);
        }
        self.steps += 1;
        let (a, b) = self.sample_reactive_pair(rng);
        let (a2, b2) = self.protocol.interact(a, b, rng);
        if (a2, b2) == (a, b) {
            return StepOutcome::Unchanged;
        }
        self.apply_count_change(a, -1);
        self.apply_count_change(b, -1);
        self.apply_count_change(a2, 1);
        self.apply_count_change(b2, 1);
        debug_assert_eq!(self.reactive_pairs, self.recount_reactive_pairs());
        StepOutcome::Changed
    }

    /// The no-op leaping of [`AcceleratedPopulation::step`] folded into one
    /// loop, composed with collision-batch epochs: while the configuration
    /// is reactive-dense enough that an epoch settles ≥ 8 reactive
    /// interactions in expectation, each iteration runs one exact
    /// contingency-table epoch ([`collision::run_epoch`], ≈ √n activations
    /// in O(q²) draws); otherwise it draws the geometric skip and performs
    /// one reactive interaction, stopping when the skip overshoots the
    /// batch budget (exact by memorylessness — the leftover activations are
    /// provably no-ops) or the configuration goes silent. The reactive-pair
    /// consistency recount runs once per batch instead of per change.
    fn step_batch(&mut self, rng: &mut SimRng, max_steps: u64) -> BatchOutcome {
        // One relaxed load per batch (metrics, prof, dispatch); the loop
        // branches on the bools and accumulates into local scratch flushed
        // once at batch end.
        let rec = metrics::enabled();
        let pf = prof::enabled();
        let disp = trace::dispatch_enabled();
        let _batch_span = prof::section_if(pf, Section::BatchAccel);
        let mut stats = BatchScratch::new();
        let mut out = BatchOutcome::default();
        let n = self.n;
        let total_pairs = n * (n - 1);
        let epoch_len = (std::f64::consts::PI * n as f64 / 8.0).sqrt();
        let entry_pairs = self.reactive_pairs;
        let mut first_regime: Option<&'static str> = None;
        let (mut d_epochs, mut d_leaps) = (0u64, 0u64);
        while out.executed < max_steps {
            if self.reactive_pairs == 0 {
                out.silent = true;
                break;
            }
            let remaining = max_steps - out.executed;
            let p = self.reactive_pairs as f64 / total_pairs as f64;
            if p * epoch_len >= COLLISION_MIN_REACTIVE {
                let birthday = self.birthday.get_or_insert_with(|| BirthdayCdf::new(n));
                let expected = birthday.expected_interactions();
                if pardense::scale_eligible(n, remaining, expected) {
                    // Sharded super-epoch: engages on eligibility alone —
                    // never on the thread knob — so the trajectory is
                    // thread-count independent (see `counts.rs`).
                    let num_states = self.counts.len();
                    let table = self
                        .plan_table
                        .get_or_insert_with(|| PlanTable::build(&self.protocol, num_states));
                    if table.complete() {
                        let window = pardense::shard_window(n, remaining);
                        let epoch_seed = rng.next_u64();
                        let workers =
                            sweep::resolve_workers(self.threads, pardense::LOGICAL_SHARDS);
                        let shard_span = prof::section_if(pf, Section::ShardRound);
                        let se = pardense::run_super_epoch(
                            table,
                            &self.counts,
                            birthday,
                            epoch_seed,
                            window,
                            workers,
                        );
                        drop(shard_span);
                        let merge_span = prof::section_if(pf, Section::ShardMerge);
                        for (s, &d) in se.delta.iter().enumerate() {
                            if d != 0 {
                                self.counts[s] = (self.counts[s] as i64 + d) as u64;
                            }
                        }
                        self.reactive_pairs =
                            self.scratch.reactive_pairs(&self.reactive, &self.counts);
                        drop(merge_span);
                        out.executed += se.executed;
                        out.changed += se.changed;
                        if rec {
                            metrics::add(Counter::ShardRounds, 1);
                            metrics::add(Counter::ShardMergeConflicts, se.shards_dropped as u64);
                            for &len in &se.epoch_lens {
                                stats.record_epoch(len);
                            }
                        }
                        if disp {
                            first_regime.get_or_insert("collision_sharded");
                            d_epochs += se.epoch_lens.len() as u64;
                        }
                        continue;
                    }
                }
                let ep = collision::run_epoch(
                    &self.protocol,
                    &mut self.counts,
                    birthday,
                    &mut self.scratch,
                    rng,
                    remaining,
                );
                self.reactive_pairs = self.scratch.reactive_pairs(&self.reactive, &self.counts);
                out.executed += ep.executed;
                out.changed += ep.changed;
                if rec {
                    stats.record_epoch(ep.executed);
                }
                if disp {
                    first_regime.get_or_insert("collision");
                    d_epochs += 1;
                }
                continue;
            }
            let _leap_span = prof::section_if(pf, Section::Leap);
            if disp {
                first_regime.get_or_insert("leap");
                d_leaps += 1;
            }
            let skip = if p < 1.0 { rng.geometric(p) } else { 0 };
            if skip >= remaining {
                if rec {
                    stats.record_leap(remaining);
                }
                out.executed = max_steps;
                break;
            }
            if rec {
                stats.record_leap(skip);
            }
            out.executed += skip + 1;
            let (a, b) = self.sample_reactive_pair(rng);
            let (a2, b2) = self.protocol.interact(a, b, rng);
            if (a2, b2) != (a, b) {
                out.changed += 1;
                self.apply_count_change(a, -1);
                self.apply_count_change(b, -1);
                self.apply_count_change(a2, 1);
                self.apply_count_change(b2, 1);
            }
        }
        debug_assert_eq!(self.reactive_pairs, self.recount_reactive_pairs());
        self.steps += out.executed;
        if rec {
            stats.flush();
            record_batch(&out);
        }
        if disp {
            trace::record_dispatch(DispatchRecord {
                backend: "AcceleratedPopulation",
                n,
                pairs: entry_pairs,
                p: entry_pairs as f64 / total_pairs as f64,
                expected_epoch: epoch_len,
                regime: first_regime.unwrap_or("silent"),
                executed: out.executed,
                collision_epochs: d_epochs,
                leaps: d_leaps,
                per_steps: 0,
            });
        }
        out
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    fn backend_tag(&self) -> &'static str {
        "accel"
    }

    /// Serializes the count vector and step counter. The reactivity table
    /// depends only on the protocol, and the reactive-pair count, birthday
    /// table, and collision scratch derive RNG-free from the counts, so all
    /// are rebuilt on restore.
    fn snapshot(&self) -> Result<Json, String> {
        Ok(Json::obj([
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| hex_u64(c)).collect()),
            ),
            ("steps", hex_u64(self.steps)),
        ]))
    }

    fn restore(&mut self, state: &Json) -> Result<(), String> {
        let arr = state
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or("accel snapshot missing count array")?;
        if arr.len() != self.counts.len() {
            return Err(format!(
                "snapshot has {} states, simulator protocol has {}",
                arr.len(),
                self.counts.len()
            ));
        }
        let steps = parse_hex_u64(state.get("steps").unwrap_or(&Json::Null))?;
        let mut counts = Vec::with_capacity(arr.len());
        for j in arr {
            counts.push(parse_hex_u64(j)?);
        }
        let total: u64 = counts.iter().sum();
        if total != self.n {
            return Err(format!(
                "snapshot population {total} does not match simulator population {}",
                self.n
            ));
        }
        self.counts = counts;
        self.steps = steps;
        self.reactive_pairs = self.recount_reactive_pairs();
        self.birthday = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::CountPopulation;
    use crate::protocol::TableProtocol;
    use crate::sim::run_until;

    fn fratricide() -> TableProtocol {
        TableProtocol::new(2, "fratricide").rule(1, 1, 1, 0)
    }

    #[test]
    fn detects_silence() {
        let mut pop = AcceleratedPopulation::from_counts(fratricide(), &[9, 1]);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(pop.step(&mut rng), StepOutcome::Silent);
        assert_eq!(pop.steps(), 0);
    }

    #[test]
    fn reduces_to_single_leader() {
        let mut pop = AcceleratedPopulation::from_counts(fratricide(), &[0, 100]);
        let mut rng = SimRng::seed_from(2);
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000);
            if pop.step(&mut rng) == StepOutcome::Silent {
                break;
            }
        }
        assert_eq!(pop.count(1), 1);
        assert_eq!(pop.count(0), 99);
    }

    #[test]
    fn migrate_keeps_reactive_pairs_consistent() {
        let mut pop = AcceleratedPopulation::from_counts(fratricide(), &[9, 1]);
        let mut rng = SimRng::seed_from(7);
        // One leader: silent. Migrating a second agent into state 1 must
        // revive reactivity through the incremental pair maintenance.
        assert_eq!(pop.step(&mut rng), StepOutcome::Silent);
        assert_eq!(pop.migrate(0, 1, 1), 1);
        assert_eq!(pop.step(&mut rng), StepOutcome::Changed);
        assert_eq!(pop.count(1), 1);
        assert_eq!(pop.migrate(1, 0, 100), 1, "capped at the source count");
    }

    #[test]
    fn skipped_steps_are_counted() {
        // With 2 leaders among 1000 agents, reactive probability is tiny;
        // the accelerated backend must attribute the skipped activations.
        let mut pop = AcceleratedPopulation::from_counts(fratricide(), &[998, 2]);
        let mut rng = SimRng::seed_from(3);
        assert_eq!(pop.step(&mut rng), StepOutcome::Changed);
        // Expected skip ≈ total_pairs / reactive_pairs = (1000·999)/2 ≈ 5·10⁵.
        assert!(pop.steps() > 1_000, "steps {} too small", pop.steps());
    }

    #[test]
    fn hitting_time_matches_unaccelerated_mean() {
        // Fratricide from 10 leaders among 100 agents: compare mean
        // completion time against the exact count backend.
        let runs = 40;
        let mut t_fast = 0.0;
        let mut t_exact = 0.0;
        for seed in 0..runs {
            let mut a = AcceleratedPopulation::from_counts(fratricide(), &[90, 10]);
            let mut rng = SimRng::seed_from(500 + seed);
            t_fast += run_until(&mut a, &mut rng, 1e6, 1, |s| s.count(1) == 1).unwrap();

            let mut b = CountPopulation::from_counts(fratricide(), &[90, 10]);
            let mut rng = SimRng::seed_from(9000 + seed);
            t_exact += run_until(&mut b, &mut rng, 1e6, 1, |s| s.count(1) == 1).unwrap();
        }
        let mf = t_fast / runs as f64;
        let me = t_exact / runs as f64;
        let rel = (mf - me).abs() / me;
        assert!(rel < 0.2, "accelerated mean {mf} vs exact mean {me}");
    }

    #[test]
    fn probabilistic_noop_rules_are_not_skipped() {
        // Rule fires with probability 0.5; the pair is still reactive, so
        // the accelerated backend must sample it and may see identity.
        let p = TableProtocol::new(2, "half").rule_p(1, 0, 0, 0, 0.5);
        let mut pop = AcceleratedPopulation::from_counts(p, &[5, 5]);
        let mut rng = SimRng::seed_from(4);
        let mut unchanged = 0;
        let mut changed = 0;
        for _ in 0..500 {
            match pop.step(&mut rng) {
                StepOutcome::Unchanged => unchanged += 1,
                StepOutcome::Changed => changed += 1,
                StepOutcome::Silent => break,
            }
        }
        assert!(changed > 0 && unchanged > 0, "both outcomes should occur");
    }

    #[test]
    fn conservation_holds() {
        let p = TableProtocol::new(3, "cycle")
            .rule(0, 1, 1, 1)
            .rule(1, 2, 2, 2)
            .rule(2, 0, 0, 0);
        let mut pop = AcceleratedPopulation::from_counts(p, &[30, 30, 40]);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..3_000 {
            if pop.step(&mut rng) == StepOutcome::Silent {
                break;
            }
            assert_eq!(pop.counts().iter().sum::<u64>(), 100);
        }
    }
}
