//! Count-based simulation backend: agents are indistinguishable, so the
//! configuration is fully described by the vector of per-state counts.
//!
//! Sampling an ordered pair of distinct agents uniformly at random is
//! equivalent to sampling the initiator's state with probability `c_a / n`
//! and then the responder's state with probability `c'_b / (n − 1)`, where
//! `c'` is the count vector with one agent of the initiator's state removed.
//! Both draws are `O(log k)` with a Fenwick tree over the counts, so memory
//! and cache traffic are independent of `n` — this backend simulates
//! populations of 10⁸ agents as cheaply as 10³.
//!
//! The per-step distribution is *identical* to the agent-array backend
//! ([`crate::population::Population`]); a property test asserts the
//! statistical equivalence.

use crate::collision::{self, BirthdayCdf, CollisionScratch, PlanTable};
use crate::fenwick::Fenwick;
use crate::json::Json;
use crate::metrics::{self, record_batch, BatchScratch, Counter};
use crate::pardense;
use crate::prof::{self, Section};
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::sim::{BatchOutcome, Simulator, StepOutcome};
use crate::snapshot::{hex_u64, parse_hex_u64};
use crate::sweep;
use crate::trace::{self, DispatchRecord};

/// Largest state space for which [`CountPopulation`] builds the `k × k`
/// reactivity cache that powers batched no-op leaping. Above this, the
/// `O(k²)` table build and reactive-pair scans would dominate, so
/// `step_batch` falls back to a tight Fenwick-sampled loop.
const BATCH_STATE_LIMIT: usize = 1024;

/// Minimum expected number of *reactive* interactions per collision-free
/// epoch for the contingency-table path to engage. An epoch costs a fixed
/// handful of distribution draws; below this threshold the geometric no-op
/// leap settles the same work with less overhead.
const COLLISION_MIN_REACTIVE: f64 = 8.0;

/// Expected collision-free interactions per epoch, `E[T]/2 ≈ 0.6267 √n`,
/// estimated without building the birthday table (used only for regime
/// dispatch; the exact table is built lazily on first collision use).
fn estimated_epoch_len(n: u64) -> f64 {
    (std::f64::consts::PI * n as f64 / 8.0).sqrt()
}

/// Lazily built state for batched stepping: the protocol's reactivity table,
/// a dense shadow of the Fenwick counts, and the number of ordered reactive
/// pairs of distinct agents.
#[derive(Debug, Clone)]
struct BatchCache {
    /// `reactive[a * k + b]`: interaction `(a, b)` can change states.
    reactive: Vec<bool>,
    /// Dense mirror of the Fenwick counts (kept in sync by `apply_change`).
    dense: Vec<u64>,
    /// Number of ordered reactive pairs of distinct agents.
    pairs: u64,
}

impl BatchCache {
    fn recount(&self) -> u64 {
        let k = self.dense.len();
        let mut total = 0u64;
        for a in 0..k {
            let ca = self.dense[a];
            if ca == 0 {
                continue;
            }
            for b in 0..k {
                if self.reactive[a * k + b] {
                    let cb = if a == b { ca - 1 } else { self.dense[b] };
                    total += ca * cb;
                }
            }
        }
        total
    }

    /// Adjusts `pairs` for a count change `dense[u] += delta`, with `dense`
    /// already reflecting the change. `O(k)`.
    fn adjust(&mut self, u: usize, delta: i64) {
        let k = self.dense.len();
        let cu = self.dense[u] as i64;
        let old_cu = cu - delta;
        let mut d = 0i64;
        for v in 0..k {
            let cv = self.dense[v] as i64;
            if v == u {
                if self.reactive[u * k + u] {
                    d += cu * (cu - 1) - old_cu * (old_cu - 1);
                }
                continue;
            }
            if self.reactive[u * k + v] {
                d += delta * cv;
            }
            if self.reactive[v * k + u] {
                d += cv * delta;
            }
        }
        self.pairs = (self.pairs as i64 + d) as u64;
    }

    /// Samples an ordered reactive state pair proportional to the number of
    /// agent pairs realizing it. `O(k²)` worst case; rows of empty states
    /// short-circuit.
    fn sample_reactive_pair(&self, rng: &mut SimRng) -> (usize, usize) {
        debug_assert!(self.pairs > 0);
        let mut r = rng.below(self.pairs);
        let k = self.dense.len();
        for a in 0..k {
            let ca = self.dense[a];
            if ca == 0 {
                continue;
            }
            for b in 0..k {
                if !self.reactive[a * k + b] {
                    continue;
                }
                let cb = if a == b { ca - 1 } else { self.dense[b] };
                let w = ca * cb;
                if r < w {
                    return (a, b);
                }
                r -= w;
            }
        }
        unreachable!("rank exhausted the reactive pair mass");
    }
}

/// A population represented by per-state agent counts.
///
/// # Examples
///
/// ```
/// use pp_engine::counts::CountPopulation;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{run_until, Simulator};
///
/// let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
/// let mut pop = CountPopulation::from_counts(&p, &[999_999, 1]);
/// let mut rng = SimRng::seed_from(0);
/// let t = run_until(&mut pop, &mut rng, 100.0, 1024, |s| s.count(0) == 0);
/// assert!(t.is_some(), "epidemic completes in O(log n) rounds");
/// ```
#[derive(Debug, Clone)]
pub struct CountPopulation<P> {
    protocol: P,
    counts: Fenwick,
    n: u64,
    steps: u64,
    /// Built on the first `step_batch` call (for `k ≤ BATCH_STATE_LIMIT`);
    /// invalidated by out-of-band count edits ([`CountPopulation::reassign`]).
    batch: Option<BatchCache>,
    /// Birthday-process table for the collision-batch regime. Keyed only on
    /// `n`, which never changes, so it survives batch-cache invalidations.
    birthday: Option<BirthdayCdf>,
    /// Full k×k cell-plan table for sharded super-epochs, built lazily the
    /// first time the population reaches sharding scale. Depends only on
    /// the protocol (fixed for the population's lifetime), so it survives
    /// batch-cache invalidations and restores.
    plan_table: Option<PlanTable>,
    /// Physical worker-thread knob for sharded super-epochs (0 = auto via
    /// [`sweep::resolve_workers`]). Execution-only: never snapshotted, and
    /// by construction it cannot affect the simulated trajectory.
    threads: usize,
    /// Working memory for collision epochs (urns + cell-plan cache).
    scratch: CollisionScratch,
}

impl<P: Protocol> CountPopulation<P> {
    /// Creates a population with `counts[s]` agents in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is longer than the state space or the population
    /// has fewer than 2 agents.
    #[must_use]
    pub fn from_counts(protocol: P, counts: &[u64]) -> Self {
        let k = protocol.num_states();
        assert!(counts.len() <= k, "more initial counts than states");
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must have at least 2 agents");
        let mut full = vec![0u64; k];
        full[..counts.len()].copy_from_slice(counts);
        Self {
            protocol,
            counts: Fenwick::from_weights(&full),
            n,
            steps: 0,
            batch: None,
            birthday: None,
            plan_table: None,
            threads: 0,
            scratch: CollisionScratch::new(),
        }
    }

    /// Creates a population of `n` agents all in state `init`.
    ///
    /// # Panics
    ///
    /// Panics if `init` is out of range or `n < 2`.
    #[must_use]
    pub fn uniform(protocol: P, n: u64, init: usize) -> Self {
        let k = protocol.num_states();
        assert!(init < k, "initial state out of range");
        let mut counts = vec![0u64; k];
        counts[init] = n;
        Self::from_counts(protocol, &counts)
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Moves `how_many` agents from state `from` to state `to` without
    /// consuming scheduler steps (test setups, external perturbations).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `how_many` agents are in `from` or states are
    /// out of range.
    pub fn reassign(&mut self, from: usize, to: usize, how_many: u64) {
        assert!(
            self.counts.get(from) >= how_many,
            "not enough agents in source state"
        );
        assert!(to < self.protocol.num_states());
        self.counts.add(from, -(how_many as i64));
        self.counts.add(to, how_many as i64);
        // Out-of-band edit: the batch cache's dense mirror and reactive-pair
        // count are stale; rebuild lazily on the next step_batch.
        self.batch = None;
    }

    /// Samples the states of a uniformly random ordered pair of distinct
    /// agents without consuming a step.
    fn sample_pair(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let a = self.counts.find(rng.below(self.n));
        // Remove one agent of state `a`, sample the responder, restore.
        self.counts.add(a, -1);
        let b = self.counts.find(rng.below(self.n - 1));
        self.counts.add(a, 1);
        (a, b)
    }

    /// Applies one interaction's count changes to the Fenwick tree and, if
    /// present, the batch cache (dense mirror + reactive pair count).
    fn apply_change(&mut self, a: usize, b: usize, a2: usize, b2: usize) {
        for (s, d) in [(a, -1i64), (b, -1), (a2, 1), (b2, 1)] {
            self.counts.add(s, d);
            if let Some(cache) = &mut self.batch {
                cache.dense[s] = (cache.dense[s] as i64 + d) as u64;
                cache.adjust(s, d);
            }
        }
        debug_assert!(self
            .batch
            .as_ref()
            .is_none_or(|c| c.pairs == c.recount() && c.dense == self.counts.to_weights()));
    }

    /// Ensures the batch cache exists; returns false when the state space is
    /// too large for `O(k²)` caching to pay off.
    fn ensure_batch_cache(&mut self) -> bool {
        let k = self.protocol.num_states();
        if k > BATCH_STATE_LIMIT {
            return false;
        }
        if self.batch.is_none() {
            metrics::add(Counter::BatchCacheRebuilds, 1);
            let dense = self.counts.to_weights();
            let mut reactive = vec![false; k * k];
            for a in 0..k {
                for b in 0..k {
                    reactive[a * k + b] = self.protocol.is_reactive(a, b);
                }
            }
            let mut cache = BatchCache {
                reactive,
                dense,
                pairs: 0,
            };
            cache.pairs = cache.recount();
            self.batch = Some(cache);
        }
        true
    }
}

impl<P: Protocol> Simulator for CountPopulation<P> {
    fn n(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.protocol.num_states()
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn count(&self, state: usize) -> u64 {
        self.counts.get(state)
    }

    fn counts(&self) -> Vec<u64> {
        self.counts.to_weights()
    }

    /// Delegates to [`CountPopulation::reassign`], which invalidates the
    /// batch cache (the dense mirror and reactive-pair count go stale).
    fn migrate(&mut self, from: usize, to: usize, k: u64) -> u64 {
        let states = self.protocol.num_states();
        assert!(from < states, "migrate source state out of range");
        assert!(to < states, "migrate target state out of range");
        let moved = k.min(self.counts.get(from));
        if from == to || moved == 0 {
            return 0;
        }
        self.reassign(from, to, moved);
        moved
    }

    fn step(&mut self, rng: &mut SimRng) -> StepOutcome {
        let (a, b) = self.sample_pair(rng);
        self.steps += 1;
        let (a2, b2) = self.protocol.interact(a, b, rng);
        if (a2, b2) == (a, b) {
            return StepOutcome::Unchanged;
        }
        self.apply_change(a, b, a2, b2);
        StepOutcome::Changed
    }

    /// Count-vector batching with three regimes, selected per iteration off
    /// the reactive-pair count `R` (`p = R / (n(n−1))`):
    ///
    /// 1. **Collision batches** (reactive-dense, `p · E[T]/2 ≥ 8`): settle
    ///    ≈ √n activations per [`collision::run_epoch`] contingency-table
    ///    sample — `O(q²)` distribution draws per epoch. At sharding scale
    ///    (complete plan table and a window of ≥ 16 expected epochs, i.e.
    ///    n ≳ 3·10⁴ — see [`pardense`]) whole *super-epochs* of them are
    ///    settled as [`pardense::LOGICAL_SHARDS`] independent shard chains
    ///    merged in fixed order, amortizing the Fenwick sync and pair
    ///    recount over ~100 epochs and scaling across worker threads with
    ///    thread-count-independent output.
    /// 2. **No-op leaping** (sparse): between reactive interactions, the
    ///    number of consecutive no-op activations is geometric with success
    ///    probability `p`, so the loop draws the skip length in `O(1)`
    ///    instead of executing the no-ops. When the skip overshoots the
    ///    batch budget, the rest of the batch is consumed as no-ops — exact
    ///    by memorylessness of the geometric.
    /// 3. **Per-step** (dense but `n` too small for epochs to pay): plain
    ///    `O(log k)` Fenwick-sampled steps.
    ///
    /// All three sample the same per-step distribution (chi-square
    /// equivalence is pinned in `tests/backend_equivalence.rs`). Reports
    /// silence when no reactive pair remains.
    fn step_batch(&mut self, rng: &mut SimRng, max_steps: u64) -> BatchOutcome {
        // One relaxed load per batch (for each of metrics, prof, dispatch);
        // inner loops branch on the cached bools and accumulate into local
        // scratch flushed once at batch end.
        let rec = metrics::enabled();
        let pf = prof::enabled();
        let disp = trace::dispatch_enabled();
        let _batch_span = prof::section_if(pf, Section::BatchCount);
        let mut stats = BatchScratch::new();
        let mut out = BatchOutcome::default();
        if !self.ensure_batch_cache() {
            // Huge state space: no reactivity cache, just a tight loop.
            if rec {
                metrics::add(Counter::DenseFallbackEntries, 1);
                metrics::add(Counter::RegimeDenseFallback, 1);
            }
            let _fallback_span = prof::section_if(pf, Section::DenseFallback);
            while out.executed < max_steps {
                let (a, b) = self.sample_pair(rng);
                out.executed += 1;
                let (a2, b2) = self.protocol.interact(a, b, rng);
                if (a2, b2) != (a, b) {
                    out.changed += 1;
                    self.apply_change(a, b, a2, b2);
                }
            }
            self.steps += out.executed;
            if rec {
                record_batch(&out);
            }
            if disp {
                trace::record_dispatch(DispatchRecord {
                    backend: "CountPopulation",
                    n: self.n,
                    // No reactivity cache exists in this regime, so the
                    // dispatch inputs p and E[epoch] are unknown (NaN
                    // serializes as JSON null).
                    pairs: 0,
                    p: f64::NAN,
                    expected_epoch: f64::NAN,
                    regime: "dense_fallback",
                    executed: out.executed,
                    collision_epochs: 0,
                    leaps: 0,
                    per_steps: out.executed,
                });
            }
            return out;
        }
        let n = self.n;
        let num_states = self.protocol.num_states();
        let total_pairs = n * (n - 1);
        let epoch_len = estimated_epoch_len(n);
        let entry_pairs = self.batch.as_ref().expect("cache built above").pairs;
        let mut first_regime: Option<&'static str> = None;
        let (mut d_epochs, mut d_leaps, mut d_steps) = (0u64, 0u64, 0u64);
        while out.executed < max_steps {
            let cache = self.batch.as_mut().expect("cache built above");
            let pairs = cache.pairs;
            if pairs == 0 {
                out.silent = true;
                break;
            }
            let remaining = max_steps - out.executed;
            let p = pairs as f64 / total_pairs as f64;
            if p * epoch_len >= COLLISION_MIN_REACTIVE {
                // Collision-batch regime: one contingency-table epoch, or a
                // sharded super-epoch of them at scale.
                let birthday = self.birthday.get_or_insert_with(|| BirthdayCdf::new(n));
                let expected = birthday.expected_interactions();
                if pardense::scale_eligible(n, remaining, expected) {
                    // The sharded path engages whenever it is *eligible* —
                    // independent of the thread knob — so the trajectory is
                    // identical across thread counts by construction.
                    let table = self
                        .plan_table
                        .get_or_insert_with(|| PlanTable::build(&self.protocol, num_states));
                    if table.complete() {
                        let window = pardense::shard_window(n, remaining);
                        // One main-stream word seeds all shard streams; the
                        // main stream advances identically regardless of how
                        // many threads run the shards.
                        let epoch_seed = rng.next_u64();
                        let workers =
                            sweep::resolve_workers(self.threads, pardense::LOGICAL_SHARDS);
                        let shard_span = prof::section_if(pf, Section::ShardRound);
                        let se = pardense::run_super_epoch(
                            table,
                            &cache.dense,
                            birthday,
                            epoch_seed,
                            window,
                            workers,
                        );
                        drop(shard_span);
                        let merge_span = prof::section_if(pf, Section::ShardMerge);
                        for (s, &d) in se.delta.iter().enumerate() {
                            if d != 0 {
                                cache.dense[s] = (cache.dense[s] as i64 + d) as u64;
                                self.counts.add(s, d);
                            }
                        }
                        cache.pairs = self.scratch.reactive_pairs(&cache.reactive, &cache.dense);
                        drop(merge_span);
                        debug_assert!(
                            cache.pairs == cache.recount()
                                && cache.dense == self.counts.to_weights()
                        );
                        out.executed += se.executed;
                        out.changed += se.changed;
                        if rec {
                            metrics::add(Counter::ShardRounds, 1);
                            metrics::add(Counter::ShardMergeConflicts, se.shards_dropped as u64);
                            for &len in &se.epoch_lens {
                                stats.record_epoch(len);
                            }
                        }
                        if disp {
                            first_regime.get_or_insert("collision_sharded");
                            d_epochs += se.epoch_lens.len() as u64;
                        }
                        continue;
                    }
                }
                let ep = collision::run_epoch(
                    &self.protocol,
                    &mut cache.dense,
                    birthday,
                    &mut self.scratch,
                    rng,
                    remaining,
                );
                // Sync the Fenwick tree and reactive-pair count from the
                // epoch's net movement (touches only the states that moved).
                let sync_span = prof::section_if(pf, Section::FenwickSync);
                for (s, &d) in self.scratch.delta().iter().enumerate() {
                    if d != 0 {
                        self.counts.add(s, d);
                    }
                }
                cache.pairs = self.scratch.reactive_pairs(&cache.reactive, &cache.dense);
                drop(sync_span);
                debug_assert!(
                    cache.pairs == cache.recount() && cache.dense == self.counts.to_weights()
                );
                out.executed += ep.executed;
                out.changed += ep.changed;
                if rec {
                    stats.record_epoch(ep.executed);
                }
                if disp {
                    first_regime.get_or_insert("collision");
                    d_epochs += 1;
                }
                continue;
            }
            if pairs.saturating_mul(2) >= total_pairs {
                // Reactive-dense but small n: a geometric draw per step
                // would cost more than it skips, and epochs don't pay yet.
                let _step_span = prof::section_if(pf, Section::PerStep);
                let (a, b) = self.sample_pair(rng);
                out.executed += 1;
                let (a2, b2) = self.protocol.interact(a, b, rng);
                if (a2, b2) != (a, b) {
                    out.changed += 1;
                    self.apply_change(a, b, a2, b2);
                }
                if rec {
                    stats.record_dense_step();
                }
                if disp {
                    first_regime.get_or_insert("per_step");
                    d_steps += 1;
                }
                continue;
            }
            let _leap_span = prof::section_if(pf, Section::Leap);
            if disp {
                first_regime.get_or_insert("leap");
                d_leaps += 1;
            }
            let skip = rng.geometric(p);
            if skip >= remaining {
                // The whole rest of the batch is provably no-ops; truncating
                // the geometric at the boundary is exact by memorylessness.
                if rec {
                    stats.record_leap(remaining);
                }
                out.executed = max_steps;
                break;
            }
            if rec {
                stats.record_leap(skip);
            }
            out.executed += skip + 1;
            let (a, b) = self
                .batch
                .as_ref()
                .expect("cache built above")
                .sample_reactive_pair(rng);
            let (a2, b2) = self.protocol.interact(a, b, rng);
            if (a2, b2) != (a, b) {
                out.changed += 1;
                self.apply_change(a, b, a2, b2);
            }
        }
        self.steps += out.executed;
        if rec {
            stats.flush();
            record_batch(&out);
        }
        if disp {
            trace::record_dispatch(DispatchRecord {
                backend: "CountPopulation",
                n,
                pairs: entry_pairs,
                p: entry_pairs as f64 / total_pairs as f64,
                expected_epoch: epoch_len,
                regime: first_regime.unwrap_or("silent"),
                executed: out.executed,
                collision_epochs: d_epochs,
                leaps: d_leaps,
                per_steps: d_steps,
            });
        }
        out
    }

    fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    fn backend_tag(&self) -> &'static str {
        "counts"
    }

    /// Serializes the count vector and step counter. The Fenwick tree,
    /// batch cache, birthday table, and collision scratch are all derived
    /// deterministically (and RNG-free) from the counts, so they are
    /// rebuilt on restore rather than stored — only the *presence* of the
    /// batch cache is recorded, so that a resumed run rebuilds it at exactly
    /// the same point in its metrics stream as the uninterrupted run.
    fn snapshot(&self) -> Result<Json, String> {
        Ok(Json::obj([
            (
                "counts",
                Json::Arr(
                    self.counts
                        .to_weights()
                        .iter()
                        .map(|&c| hex_u64(c))
                        .collect(),
                ),
            ),
            ("steps", hex_u64(self.steps)),
            ("cached", Json::Bool(self.batch.is_some())),
        ]))
    }

    fn restore(&mut self, state: &Json) -> Result<(), String> {
        let arr = state
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or("counts snapshot missing count array")?;
        if arr.len() != self.protocol.num_states() {
            return Err(format!(
                "snapshot has {} states, simulator protocol has {}",
                arr.len(),
                self.protocol.num_states()
            ));
        }
        let steps = parse_hex_u64(state.get("steps").unwrap_or(&Json::Null))?;
        let mut weights = Vec::with_capacity(arr.len());
        for j in arr {
            weights.push(parse_hex_u64(j)?);
        }
        let total: u64 = weights.iter().sum();
        if total != self.n {
            return Err(format!(
                "snapshot population {total} does not match simulator population {}",
                self.n
            ));
        }
        let cached = state.get("cached").and_then(Json::as_bool).unwrap_or(false);
        self.counts = Fenwick::from_weights(&weights);
        self.steps = steps;
        self.batch = None;
        self.birthday = None;
        if cached {
            // Rebuild eagerly so the rebuild's metrics bump lands during
            // restore (before any saved metrics registry is reloaded),
            // keeping a resumed run's counters identical to the
            // uninterrupted run's — which had the cache live at this point
            // and so will not rebuild it on its next batch.
            let _ = self.ensure_batch_cache();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::sim::run_until;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    use crate::protocol::TableProtocol;

    #[test]
    fn conservation_of_population() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[500, 500]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..5_000 {
            pop.step(&mut rng);
            assert_eq!(pop.counts().iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn epidemic_completes() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[9_999, 1]);
        let mut rng = SimRng::seed_from(2);
        let t = run_until(&mut pop, &mut rng, 200.0, 64, |s| s.count(0) == 0)
            .expect("epidemic completes");
        assert!(t < 60.0, "epidemic took {t} rounds");
    }

    #[test]
    fn pair_sampling_excludes_self_pair() {
        // With exactly one agent in state 1, the ordered pair (1, 1) is
        // impossible. Use a rule that only fires on (1, 1) and check it
        // never fires.
        let p = TableProtocol::new(2, "selfpair").rule(1, 1, 0, 0);
        let mut pop = CountPopulation::from_counts(p, &[99, 1]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..20_000 {
            pop.step(&mut rng);
            assert_eq!(pop.count(1), 1);
        }
    }

    #[test]
    fn pair_sampling_allows_same_state_distinct_agents() {
        let p = TableProtocol::new(2, "annihilate").rule(1, 1, 0, 0);
        let mut pop = CountPopulation::from_counts(p, &[0, 11]);
        let mut rng = SimRng::seed_from(4);
        let t = run_until(&mut pop, &mut rng, 1000.0, 8, |s| s.count(1) <= 1);
        assert!(t.is_some(), "pairwise annihilation should reduce to one");
        assert_eq!(pop.count(1), 1, "odd survivor remains");
    }

    #[test]
    fn matches_agent_array_statistics() {
        // Two-way epidemic completion time distribution should agree between
        // backends: compare means over repeated runs.
        let runs = 30;
        let mut t_counts = 0.0;
        let mut t_agents = 0.0;
        for seed in 0..runs {
            let p = epidemic();
            let mut a = CountPopulation::from_counts(&p, &[499, 1]);
            let mut rng = SimRng::seed_from(1000 + seed);
            t_counts += run_until(&mut a, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();

            let p = epidemic();
            let mut b = Population::from_counts(&p, &[499, 1]);
            let mut rng = SimRng::seed_from(2000 + seed);
            t_agents += run_until(&mut b, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();
        }
        let mean_c = t_counts / runs as f64;
        let mean_a = t_agents / runs as f64;
        let rel = (mean_c - mean_a).abs() / mean_a;
        assert!(rel < 0.15, "backend means diverge: {mean_c} vs {mean_a}");
    }

    #[test]
    fn reassign_moves_agents() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[10, 0]);
        pop.reassign(0, 1, 4);
        assert_eq!(pop.count(0), 6);
        assert_eq!(pop.count(1), 4);
        assert_eq!(pop.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough agents")]
    fn reassign_checks_source() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[2, 0]);
        pop.reassign(0, 1, 3);
    }

    #[test]
    fn migrate_caps_at_source_count() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[7, 3]);
        assert_eq!(pop.migrate(0, 1, 100), 7);
        assert_eq!(pop.count(0), 0);
        assert_eq!(pop.count(1), 10);
        assert_eq!(pop.migrate(1, 1, 5), 0, "self-moves are no-ops");
        assert_eq!(pop.migrate(0, 1, 5), 0, "empty source moves nothing");
        assert_eq!(pop.steps(), 0, "migrate consumes no steps");
    }
}

/// A population represented by a *sparse* map of per-state agent counts.
///
/// Protocol compositions over boolean flag spaces can have huge nominal
/// state spaces (`2^18` and beyond) of which any reachable configuration
/// occupies only a handful of states. The dense [`CountPopulation`] pays
/// `O(k)` to build and `O(log k)` per step regardless; this backend stores
/// only the occupied states, so construction is `O(occupied)` and each step
/// is `O(occupied)` — orders of magnitude faster when `occupied ≪ k`.
///
/// The sampled process is identical in distribution to the dense backends.
///
/// # Examples
///
/// ```
/// use pp_engine::counts::SparseCountPopulation;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{run_until, Simulator};
///
/// let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
/// let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 999), (1, 1)]);
/// let mut rng = SimRng::seed_from(0);
/// let t = run_until(&mut pop, &mut rng, 200.0, 64, |s| s.count(0) == 0);
/// assert!(t.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SparseCountPopulation<P> {
    protocol: P,
    /// Occupied states and their counts, in insertion order.
    occupied: Vec<(usize, u64)>,
    /// State → index into `occupied`.
    index: std::collections::HashMap<usize, usize>,
    n: u64,
    steps: u64,
}

impl<P: Protocol> SparseCountPopulation<P> {
    /// Creates a population from `(state, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range, a state repeats, or the total
    /// population is smaller than 2.
    #[must_use]
    pub fn from_pairs(protocol: P, pairs: &[(usize, u64)]) -> Self {
        let k = protocol.num_states();
        let mut occupied = Vec::new();
        let mut index = std::collections::HashMap::new();
        let mut n = 0u64;
        for &(state, count) in pairs {
            assert!(state < k, "state {state} out of range");
            if count == 0 {
                continue;
            }
            assert!(!index.contains_key(&state), "state {state} listed twice");
            index.insert(state, occupied.len());
            occupied.push((state, count));
            n += count;
        }
        assert!(n >= 2, "population must have at least 2 agents");
        Self {
            protocol,
            occupied,
            index,
            n,
            steps: 0,
        }
    }

    /// Creates a population from a dense count vector (skipping zeros).
    ///
    /// # Panics
    ///
    /// As [`SparseCountPopulation::from_pairs`].
    #[must_use]
    pub fn from_dense(protocol: P, counts: &[u64]) -> Self {
        let pairs: Vec<(usize, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (s, c))
            .collect();
        Self::from_pairs(protocol, &pairs)
    }

    /// Number of distinct occupied states.
    #[must_use]
    pub fn occupied_states(&self) -> usize {
        self.occupied.len()
    }

    /// Iterates over `(state, count)` pairs of occupied states.
    pub fn iter_counts(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.occupied.iter().copied()
    }

    /// The dense count vector (mostly zeros; allocates `num_states`).
    #[must_use]
    pub fn to_dense(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.protocol.num_states()];
        for &(s, c) in &self.occupied {
            out[s] = c;
        }
        out
    }

    fn add(&mut self, state: usize, delta: i64) {
        match self.index.get(&state) {
            Some(&i) => {
                let entry = &mut self.occupied[i];
                entry.1 = (entry.1 as i64 + delta) as u64;
                if entry.1 == 0 {
                    // Swap-remove, fixing the moved entry's index.
                    let last = self.occupied.len() - 1;
                    self.occupied.swap(i, last);
                    self.occupied.pop();
                    self.index.remove(&state);
                    if i < self.occupied.len() {
                        let moved_state = self.occupied[i].0;
                        self.index.insert(moved_state, i);
                    }
                }
            }
            None => {
                assert!(delta > 0, "removing from empty state {state}");
                self.index.insert(state, self.occupied.len());
                self.occupied.push((state, delta as u64));
            }
        }
    }

    /// Samples a state by rank among `total` agents, excluding one agent of
    /// `exclude` (pass `usize::MAX` to exclude nothing).
    fn sample(&self, mut rank: u64, exclude: usize) -> usize {
        for &(state, count) in &self.occupied {
            let c = if state == exclude { count - 1 } else { count };
            if rank < c {
                return state;
            }
            rank -= c;
        }
        unreachable!("rank exceeded population");
    }
}

impl<P: Protocol> Simulator for SparseCountPopulation<P> {
    fn n(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.protocol.num_states()
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn count(&self, state: usize) -> u64 {
        self.index.get(&state).map_or(0, |&i| self.occupied[i].1)
    }

    fn counts(&self) -> Vec<u64> {
        self.to_dense()
    }

    /// Adjusts the occupied-state list directly; vacated states are
    /// swap-removed and new states appended, as for interactions.
    fn migrate(&mut self, from: usize, to: usize, k: u64) -> u64 {
        let states = self.protocol.num_states();
        assert!(from < states, "migrate source state out of range");
        assert!(to < states, "migrate target state out of range");
        let moved = k.min(self.count(from));
        if from == to || moved == 0 {
            return 0;
        }
        self.add(from, -(moved as i64));
        self.add(to, moved as i64);
        moved
    }

    fn step(&mut self, rng: &mut SimRng) -> StepOutcome {
        let a = self.sample(rng.below(self.n), usize::MAX);
        let b = self.sample(rng.below(self.n - 1), a);
        self.steps += 1;
        let (a2, b2) = self.protocol.interact(a, b, rng);
        if (a2, b2) == (a, b) {
            return StepOutcome::Unchanged;
        }
        self.add(a, -1);
        self.add(b, -1);
        self.add(a2, 1);
        self.add(b2, 1);
        StepOutcome::Changed
    }

    /// Tight inner loop: the linear scans over occupied states already make
    /// each step `O(occupied)`, so batching here only removes per-step
    /// dispatch and outcome plumbing. Never reports silence.
    fn step_batch(&mut self, rng: &mut SimRng, max_steps: u64) -> BatchOutcome {
        let _batch_span = prof::section(Section::BatchSparse);
        let n = self.n;
        let mut changed = 0u64;
        for _ in 0..max_steps {
            let a = self.sample(rng.below(n), usize::MAX);
            let b = self.sample(rng.below(n - 1), a);
            let (a2, b2) = self.protocol.interact(a, b, rng);
            if (a2, b2) != (a, b) {
                self.add(a, -1);
                self.add(b, -1);
                self.add(a2, 1);
                self.add(b2, 1);
                changed += 1;
            }
        }
        self.steps += max_steps;
        let out = BatchOutcome {
            executed: max_steps,
            changed,
            silent: false,
        };
        if metrics::enabled() {
            record_batch(&out);
        }
        out
    }

    fn backend_tag(&self) -> &'static str {
        "sparse"
    }

    /// Serializes the occupied list *in insertion order* plus the step
    /// counter. The order is RNG-visible — `sample` scans it linearly and
    /// `add` swap-removes vacated entries — so a dense round-trip would
    /// change which agents later draws land on; the state → slot index map
    /// is derived and rebuilt on restore.
    fn snapshot(&self) -> Result<Json, String> {
        Ok(Json::obj([
            (
                "occupied",
                Json::Arr(
                    self.occupied
                        .iter()
                        .map(|&(s, c)| Json::Arr(vec![Json::from(s as u64), hex_u64(c)]))
                        .collect(),
                ),
            ),
            ("steps", hex_u64(self.steps)),
        ]))
    }

    fn restore(&mut self, state: &Json) -> Result<(), String> {
        let arr = state
            .get("occupied")
            .and_then(Json::as_arr)
            .ok_or("sparse snapshot missing occupied list")?;
        let steps = parse_hex_u64(state.get("steps").unwrap_or(&Json::Null))?;
        let k = self.protocol.num_states();
        let mut occupied = Vec::with_capacity(arr.len());
        let mut index = std::collections::HashMap::new();
        let mut n = 0u64;
        for j in arr {
            let pair = j
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("bad occupied entry")?;
            let s = pair[0].as_u64().ok_or("occupied state is not an integer")? as usize;
            let c = parse_hex_u64(&pair[1])?;
            if s >= k {
                return Err(format!("occupied state {s} out of range (k = {k})"));
            }
            if c == 0 || index.contains_key(&s) {
                return Err(format!("occupied state {s} empty or repeated"));
            }
            index.insert(s, occupied.len());
            occupied.push((s, c));
            n += c;
        }
        if n != self.n {
            return Err(format!(
                "snapshot population {n} does not match simulator population {}",
                self.n
            ));
        }
        self.occupied = occupied;
        self.index = index;
        self.steps = steps;
        Ok(())
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use crate::protocol::TableProtocol;
    use crate::sim::run_until;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn conservation_and_occupancy() {
        let p = TableProtocol::new(3, "cycle")
            .rule(0, 1, 1, 1)
            .rule(1, 2, 2, 2)
            .rule(2, 0, 0, 0);
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 40), (1, 30), (2, 30)]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..5_000 {
            pop.step(&mut rng);
            assert_eq!(pop.counts().iter().sum::<u64>(), 100);
            assert!(pop.occupied_states() <= 3);
        }
    }

    #[test]
    fn matches_dense_backend_statistics() {
        let runs = 25;
        let mut t_sparse = 0.0;
        let mut t_dense = 0.0;
        for seed in 0..runs {
            let p = epidemic();
            let mut a = SparseCountPopulation::from_pairs(&p, &[(0, 499), (1, 1)]);
            let mut rng = SimRng::seed_from(4_000 + seed);
            t_sparse += run_until(&mut a, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();

            let p = epidemic();
            let mut b = CountPopulation::from_counts(&p, &[499, 1]);
            let mut rng = SimRng::seed_from(8_000 + seed);
            t_dense += run_until(&mut b, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();
        }
        let ms = t_sparse / runs as f64;
        let md = t_dense / runs as f64;
        assert!(
            (ms - md).abs() / md < 0.15,
            "sparse {ms} vs dense {md} completion times"
        );
    }

    #[test]
    fn empty_states_are_dropped_and_revived() {
        let p = TableProtocol::new(3, "move")
            .rule(0, 0, 1, 1)
            .rule(1, 1, 2, 2)
            .rule(2, 2, 0, 0);
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 4)]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            pop.step(&mut rng);
        }
        assert_eq!(pop.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn from_dense_skips_zeros() {
        let p = epidemic();
        let pop = SparseCountPopulation::from_dense(&p, &[0, 5]);
        assert_eq!(pop.occupied_states(), 1);
        assert_eq!(pop.count(1), 5);
        assert_eq!(pop.count(0), 0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_states_rejected() {
        let p = epidemic();
        let _ = SparseCountPopulation::from_pairs(&p, &[(1, 2), (1, 3)]);
    }

    #[test]
    fn pair_sampling_excludes_self() {
        let p = TableProtocol::new(2, "selfpair").rule(1, 1, 0, 0);
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 50), (1, 1)]);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..5_000 {
            pop.step(&mut rng);
            assert_eq!(pop.count(1), 1);
        }
    }

    #[test]
    fn migrate_updates_occupied_list() {
        let p = epidemic();
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 6), (1, 2)]);
        assert_eq!(pop.migrate(0, 1, 6), 6, "vacating a state is allowed");
        assert_eq!(pop.occupied_states(), 1);
        assert_eq!(pop.count(1), 8);
        assert_eq!(pop.migrate(1, 0, 3), 3, "repopulating a state re-adds it");
        assert_eq!(pop.occupied_states(), 2);
        assert_eq!(pop.migrate(0, 0, 2), 0);
        assert_eq!(pop.steps(), 0);
    }
}
