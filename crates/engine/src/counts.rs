//! Count-based simulation backend: agents are indistinguishable, so the
//! configuration is fully described by the vector of per-state counts.
//!
//! Sampling an ordered pair of distinct agents uniformly at random is
//! equivalent to sampling the initiator's state with probability `c_a / n`
//! and then the responder's state with probability `c'_b / (n − 1)`, where
//! `c'` is the count vector with one agent of the initiator's state removed.
//! Both draws are `O(log k)` with a Fenwick tree over the counts, so memory
//! and cache traffic are independent of `n` — this backend simulates
//! populations of 10⁸ agents as cheaply as 10³.
//!
//! The per-step distribution is *identical* to the agent-array backend
//! ([`crate::population::Population`]); a property test asserts the
//! statistical equivalence.

use crate::fenwick::Fenwick;
use crate::protocol::Protocol;
use crate::rng::SimRng;
use crate::sim::{Simulator, StepOutcome};

/// A population represented by per-state agent counts.
///
/// # Examples
///
/// ```
/// use pp_engine::counts::CountPopulation;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{run_until, Simulator};
///
/// let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
/// let mut pop = CountPopulation::from_counts(&p, &[999_999, 1]);
/// let mut rng = SimRng::seed_from(0);
/// let t = run_until(&mut pop, &mut rng, 100.0, 1024, |s| s.count(0) == 0);
/// assert!(t.is_some(), "epidemic completes in O(log n) rounds");
/// ```
#[derive(Debug, Clone)]
pub struct CountPopulation<P> {
    protocol: P,
    counts: Fenwick,
    n: u64,
    steps: u64,
}

impl<P: Protocol> CountPopulation<P> {
    /// Creates a population with `counts[s]` agents in state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is longer than the state space or the population
    /// has fewer than 2 agents.
    #[must_use]
    pub fn from_counts(protocol: P, counts: &[u64]) -> Self {
        let k = protocol.num_states();
        assert!(counts.len() <= k, "more initial counts than states");
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population must have at least 2 agents");
        let mut full = vec![0u64; k];
        full[..counts.len()].copy_from_slice(counts);
        Self {
            protocol,
            counts: Fenwick::from_weights(&full),
            n,
            steps: 0,
        }
    }

    /// Creates a population of `n` agents all in state `init`.
    ///
    /// # Panics
    ///
    /// Panics if `init` is out of range or `n < 2`.
    #[must_use]
    pub fn uniform(protocol: P, n: u64, init: usize) -> Self {
        let k = protocol.num_states();
        assert!(init < k, "initial state out of range");
        let mut counts = vec![0u64; k];
        counts[init] = n;
        Self::from_counts(protocol, &counts)
    }

    /// The protocol being simulated.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Moves `how_many` agents from state `from` to state `to` without
    /// consuming scheduler steps (test setups, external perturbations).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `how_many` agents are in `from` or states are
    /// out of range.
    pub fn reassign(&mut self, from: usize, to: usize, how_many: u64) {
        assert!(self.counts.get(from) >= how_many, "not enough agents in source state");
        assert!(to < self.protocol.num_states());
        self.counts.add(from, -(how_many as i64));
        self.counts.add(to, how_many as i64);
    }

    /// Samples the states of a uniformly random ordered pair of distinct
    /// agents without consuming a step.
    fn sample_pair(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let a = self.counts.find(rng.below(self.n));
        // Remove one agent of state `a`, sample the responder, restore.
        self.counts.add(a, -1);
        let b = self.counts.find(rng.below(self.n - 1));
        self.counts.add(a, 1);
        (a, b)
    }
}

impl<P: Protocol> Simulator for CountPopulation<P> {
    fn n(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.protocol.num_states()
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn count(&self, state: usize) -> u64 {
        self.counts.get(state)
    }

    fn counts(&self) -> Vec<u64> {
        self.counts.to_weights()
    }

    fn step(&mut self, rng: &mut SimRng) -> StepOutcome {
        let (a, b) = self.sample_pair(rng);
        self.steps += 1;
        let (a2, b2) = self.protocol.interact(a, b, rng);
        if (a2, b2) == (a, b) {
            return StepOutcome::Unchanged;
        }
        self.counts.add(a, -1);
        self.counts.add(b, -1);
        self.counts.add(a2, 1);
        self.counts.add(b2, 1);
        StepOutcome::Changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::sim::run_until;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    use crate::protocol::TableProtocol;

    #[test]
    fn conservation_of_population() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[500, 500]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..5_000 {
            pop.step(&mut rng);
            assert_eq!(pop.counts().iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn epidemic_completes() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[9_999, 1]);
        let mut rng = SimRng::seed_from(2);
        let t = run_until(&mut pop, &mut rng, 200.0, 64, |s| s.count(0) == 0)
            .expect("epidemic completes");
        assert!(t < 60.0, "epidemic took {t} rounds");
    }

    #[test]
    fn pair_sampling_excludes_self_pair() {
        // With exactly one agent in state 1, the ordered pair (1, 1) is
        // impossible. Use a rule that only fires on (1, 1) and check it
        // never fires.
        let p = TableProtocol::new(2, "selfpair").rule(1, 1, 0, 0);
        let mut pop = CountPopulation::from_counts(p, &[99, 1]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..20_000 {
            pop.step(&mut rng);
            assert_eq!(pop.count(1), 1);
        }
    }

    #[test]
    fn pair_sampling_allows_same_state_distinct_agents() {
        let p = TableProtocol::new(2, "annihilate").rule(1, 1, 0, 0);
        let mut pop = CountPopulation::from_counts(p, &[0, 11]);
        let mut rng = SimRng::seed_from(4);
        let t = run_until(&mut pop, &mut rng, 1000.0, 8, |s| s.count(1) <= 1);
        assert!(t.is_some(), "pairwise annihilation should reduce to one");
        assert_eq!(pop.count(1), 1, "odd survivor remains");
    }

    #[test]
    fn matches_agent_array_statistics() {
        // Two-way epidemic completion time distribution should agree between
        // backends: compare means over repeated runs.
        let runs = 30;
        let mut t_counts = 0.0;
        let mut t_agents = 0.0;
        for seed in 0..runs {
            let p = epidemic();
            let mut a = CountPopulation::from_counts(&p, &[499, 1]);
            let mut rng = SimRng::seed_from(1000 + seed);
            t_counts += run_until(&mut a, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();

            let p = epidemic();
            let mut b = Population::from_counts(&p, &[499, 1]);
            let mut rng = SimRng::seed_from(2000 + seed);
            t_agents += run_until(&mut b, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();
        }
        let mean_c = t_counts / runs as f64;
        let mean_a = t_agents / runs as f64;
        let rel = (mean_c - mean_a).abs() / mean_a;
        assert!(rel < 0.15, "backend means diverge: {mean_c} vs {mean_a}");
    }

    #[test]
    fn reassign_moves_agents() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[10, 0]);
        pop.reassign(0, 1, 4);
        assert_eq!(pop.count(0), 6);
        assert_eq!(pop.count(1), 4);
        assert_eq!(pop.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "not enough agents")]
    fn reassign_checks_source() {
        let mut pop = CountPopulation::from_counts(epidemic(), &[2, 0]);
        pop.reassign(0, 1, 3);
    }
}

/// A population represented by a *sparse* map of per-state agent counts.
///
/// Protocol compositions over boolean flag spaces can have huge nominal
/// state spaces (`2^18` and beyond) of which any reachable configuration
/// occupies only a handful of states. The dense [`CountPopulation`] pays
/// `O(k)` to build and `O(log k)` per step regardless; this backend stores
/// only the occupied states, so construction is `O(occupied)` and each step
/// is `O(occupied)` — orders of magnitude faster when `occupied ≪ k`.
///
/// The sampled process is identical in distribution to the dense backends.
///
/// # Examples
///
/// ```
/// use pp_engine::counts::SparseCountPopulation;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{run_until, Simulator};
///
/// let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
/// let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 999), (1, 1)]);
/// let mut rng = SimRng::seed_from(0);
/// let t = run_until(&mut pop, &mut rng, 200.0, 64, |s| s.count(0) == 0);
/// assert!(t.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct SparseCountPopulation<P> {
    protocol: P,
    /// Occupied states and their counts, in insertion order.
    occupied: Vec<(usize, u64)>,
    /// State → index into `occupied`.
    index: std::collections::HashMap<usize, usize>,
    n: u64,
    steps: u64,
}

impl<P: Protocol> SparseCountPopulation<P> {
    /// Creates a population from `(state, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a state is out of range, a state repeats, or the total
    /// population is smaller than 2.
    #[must_use]
    pub fn from_pairs(protocol: P, pairs: &[(usize, u64)]) -> Self {
        let k = protocol.num_states();
        let mut occupied = Vec::new();
        let mut index = std::collections::HashMap::new();
        let mut n = 0u64;
        for &(state, count) in pairs {
            assert!(state < k, "state {state} out of range");
            if count == 0 {
                continue;
            }
            assert!(
                !index.contains_key(&state),
                "state {state} listed twice"
            );
            index.insert(state, occupied.len());
            occupied.push((state, count));
            n += count;
        }
        assert!(n >= 2, "population must have at least 2 agents");
        Self {
            protocol,
            occupied,
            index,
            n,
            steps: 0,
        }
    }

    /// Creates a population from a dense count vector (skipping zeros).
    ///
    /// # Panics
    ///
    /// As [`SparseCountPopulation::from_pairs`].
    #[must_use]
    pub fn from_dense(protocol: P, counts: &[u64]) -> Self {
        let pairs: Vec<(usize, u64)> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(s, &c)| (s, c))
            .collect();
        Self::from_pairs(protocol, &pairs)
    }

    /// Number of distinct occupied states.
    #[must_use]
    pub fn occupied_states(&self) -> usize {
        self.occupied.len()
    }

    /// Iterates over `(state, count)` pairs of occupied states.
    pub fn iter_counts(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.occupied.iter().copied()
    }

    /// The dense count vector (mostly zeros; allocates `num_states`).
    #[must_use]
    pub fn to_dense(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.protocol.num_states()];
        for &(s, c) in &self.occupied {
            out[s] = c;
        }
        out
    }

    fn add(&mut self, state: usize, delta: i64) {
        match self.index.get(&state) {
            Some(&i) => {
                let entry = &mut self.occupied[i];
                entry.1 = (entry.1 as i64 + delta) as u64;
                if entry.1 == 0 {
                    // Swap-remove, fixing the moved entry's index.
                    let last = self.occupied.len() - 1;
                    self.occupied.swap(i, last);
                    self.occupied.pop();
                    self.index.remove(&state);
                    if i < self.occupied.len() {
                        let moved_state = self.occupied[i].0;
                        self.index.insert(moved_state, i);
                    }
                }
            }
            None => {
                assert!(delta > 0, "removing from empty state {state}");
                self.index.insert(state, self.occupied.len());
                self.occupied.push((state, delta as u64));
            }
        }
    }

    /// Samples a state by rank among `total` agents, excluding one agent of
    /// `exclude` (pass `usize::MAX` to exclude nothing).
    fn sample(&self, mut rank: u64, exclude: usize) -> usize {
        for &(state, count) in &self.occupied {
            let c = if state == exclude { count - 1 } else { count };
            if rank < c {
                return state;
            }
            rank -= c;
        }
        unreachable!("rank exceeded population");
    }
}

impl<P: Protocol> Simulator for SparseCountPopulation<P> {
    fn n(&self) -> u64 {
        self.n
    }

    fn num_states(&self) -> usize {
        self.protocol.num_states()
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn count(&self, state: usize) -> u64 {
        self.index.get(&state).map_or(0, |&i| self.occupied[i].1)
    }

    fn counts(&self) -> Vec<u64> {
        self.to_dense()
    }

    fn step(&mut self, rng: &mut SimRng) -> StepOutcome {
        let a = self.sample(rng.below(self.n), usize::MAX);
        let b = self.sample(rng.below(self.n - 1), a);
        self.steps += 1;
        let (a2, b2) = self.protocol.interact(a, b, rng);
        if (a2, b2) == (a, b) {
            return StepOutcome::Unchanged;
        }
        self.add(a, -1);
        self.add(b, -1);
        self.add(a2, 1);
        self.add(b2, 1);
        StepOutcome::Changed
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;
    use crate::protocol::TableProtocol;
    use crate::sim::run_until;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn conservation_and_occupancy() {
        let p = TableProtocol::new(3, "cycle")
            .rule(0, 1, 1, 1)
            .rule(1, 2, 2, 2)
            .rule(2, 0, 0, 0);
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 40), (1, 30), (2, 30)]);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..5_000 {
            pop.step(&mut rng);
            assert_eq!(pop.counts().iter().sum::<u64>(), 100);
            assert!(pop.occupied_states() <= 3);
        }
    }

    #[test]
    fn matches_dense_backend_statistics() {
        let runs = 25;
        let mut t_sparse = 0.0;
        let mut t_dense = 0.0;
        for seed in 0..runs {
            let p = epidemic();
            let mut a = SparseCountPopulation::from_pairs(&p, &[(0, 499), (1, 1)]);
            let mut rng = SimRng::seed_from(4_000 + seed);
            t_sparse += run_until(&mut a, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();

            let p = epidemic();
            let mut b = CountPopulation::from_counts(&p, &[499, 1]);
            let mut rng = SimRng::seed_from(8_000 + seed);
            t_dense += run_until(&mut b, &mut rng, 500.0, 1, |s| s.count(0) == 0).unwrap();
        }
        let ms = t_sparse / runs as f64;
        let md = t_dense / runs as f64;
        assert!(
            (ms - md).abs() / md < 0.15,
            "sparse {ms} vs dense {md} completion times"
        );
    }

    #[test]
    fn empty_states_are_dropped_and_revived() {
        let p = TableProtocol::new(3, "move")
            .rule(0, 0, 1, 1)
            .rule(1, 1, 2, 2)
            .rule(2, 2, 0, 0);
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 4)]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            pop.step(&mut rng);
        }
        assert_eq!(pop.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn from_dense_skips_zeros() {
        let p = epidemic();
        let pop = SparseCountPopulation::from_dense(&p, &[0, 5]);
        assert_eq!(pop.occupied_states(), 1);
        assert_eq!(pop.count(1), 5);
        assert_eq!(pop.count(0), 0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_states_rejected() {
        let p = epidemic();
        let _ = SparseCountPopulation::from_pairs(&p, &[(1, 2), (1, 3)]);
    }

    #[test]
    fn pair_sampling_excludes_self() {
        let p = TableProtocol::new(2, "selfpair").rule(1, 1, 0, 0);
        let mut pop = SparseCountPopulation::from_pairs(&p, &[(0, 50), (1, 1)]);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..5_000 {
            pop.step(&mut rng);
            assert_eq!(pop.count(1), 1);
        }
    }
}
