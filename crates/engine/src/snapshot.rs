//! Crash-safe checkpointing and exact resume.
//!
//! Long runs at production scale (hours at `n = 10⁸`, sweeps of thousands
//! of tasks) must survive panics, deadline overruns, and process kills
//! without throwing completed work away. Determinism makes that cheap: a
//! run is a pure function of `(initial configuration, RNG state)`, so a
//! snapshot of the simulator state plus the word-exact RNG state resumes
//! the run *byte-identically* — same trace, same fault events, same
//! metrics — under the `tests/determinism.rs` contract (see DESIGN.md §15).
//!
//! ## What a snapshot contains
//!
//! [`RunSnapshot`] bundles the backend tag, the four xoshiro256\*\* state
//! words plus the banked Box–Muller spare ([`SimRng::state_words`] /
//! [`SimRng::spare_normal_bits`]), the backend's own resumable state from
//! [`Simulator::snapshot`] (counts / agent arrays / fault-trigger progress;
//! derived caches are rebuilt on restore), an optional frozen
//! [`MetricsReport`] so a resumed process continues counting where the
//! interrupted one stopped, and a free-form `meta` object for the harness
//! (command, n, seed, checkpoint cadence, …).
//!
//! ## On-disk format
//!
//! Two JSON lines. The first is a header
//! `{"kind":"pp_snapshot","version":V,"checksum":"<crc64 hex>"}`; the
//! second is the payload object. The checksum is CRC-64 (reflected
//! ECMA-182 polynomial) over the exact payload-line bytes, so truncation
//! and single-bit flips anywhere in the payload are detected before any
//! field is parsed; header corruption fails the parse or the checksum
//! comparison. Raw `u64` material that does not fit JSON's 2⁵³ exact-
//! integer range (RNG words, step counters, disarmed trigger sentinels) is
//! hex-encoded via [`hex_u64`].
//!
//! ## Crash safety
//!
//! [`write_atomic`] writes to a temporary sibling, fsyncs it, and
//! atomically renames it over the target (then fsyncs the directory), so a
//! kill at any instant leaves either the old snapshot or the new one —
//! never a torn file. [`SnapshotStore`] rotates the last `keep`
//! generations; [`SnapshotStore::load_latest`] validates newest-first,
//! logging each corrupt generation as an [`Incident`] and degrading to the
//! previous one (or to a clean restart when none survive) instead of
//! aborting.

use crate::json::Json;
use crate::metrics::MetricsReport;
use crate::rng::SimRng;
use crate::sim::Simulator;
use crate::sweep::Incident;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Version tag of the on-disk snapshot format. Bumped on any change to the
/// header or payload schema — and on semantic boundaries: version 2 marks
/// runs that may contain sharded super-epochs (`pardense`), whose
/// trajectories a version-1 engine cannot reproduce. The payload schema is
/// unchanged from version 1, so [`RunSnapshot::decode`] accepts both (see
/// [`MIN_FORMAT_VERSION`]); shard RNG streams live and die inside a single
/// `step_batch` call, so the four main-stream words still capture the
/// complete resume state (DESIGN.md §16).
pub const FORMAT_VERSION: u64 = 2;

/// Oldest snapshot format version [`RunSnapshot::decode`] still reads.
pub const MIN_FORMAT_VERSION: u64 = 1;

/// CRC-64 (reflected ECMA-182 polynomial, as used by XZ) over `bytes`.
///
/// Chosen over a multiplicative hash because CRCs guarantee detection of
/// every single-bit error and every burst up to 64 bits — exactly the
/// corruption classes the snapshot tests inject. Bitwise implementation:
/// snapshots are written at checkpoint cadence, not per step, so the
/// ~8 ops/byte cost is irrelevant.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42;
    let mut crc = !0u64;
    for &b in bytes {
        crc ^= u64::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// Encodes a `u64` as a fixed-width hex JSON string.
///
/// JSON numbers are f64, exact only up to 2⁵³ — RNG words, step counters,
/// and `u64::MAX` trigger sentinels must round-trip word-exactly, so they
/// travel as strings.
#[must_use]
pub fn hex_u64(v: u64) -> Json {
    Json::from(format!("{v:016x}"))
}

/// Decodes a `u64` previously encoded with [`hex_u64`].
///
/// # Errors
///
/// Returns a description when the value is not a string or not valid hex.
pub fn parse_hex_u64(j: &Json) -> Result<u64, String> {
    let s = j
        .as_str()
        .ok_or_else(|| format!("expected a hex string, got {}", j.render()))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex u64 {s:?}: {e}"))
}

/// A complete resumable checkpoint of one run: backend state, word-exact
/// RNG state, optional metrics-registry contents, and harness metadata.
#[derive(Debug, Clone)]
pub struct RunSnapshot {
    /// [`Simulator::backend_tag`] of the simulator that produced `state`.
    pub backend: String,
    /// The four xoshiro256\*\* state words at the checkpoint.
    pub rng_words: [u64; 4],
    /// Banked Box–Muller sine-branch bits, if one sample was unconsumed.
    pub spare_normal: Option<u64>,
    /// Backend-specific resumable state from [`Simulator::snapshot`].
    pub state: Json,
    /// Frozen metrics registry at the checkpoint, when the producing run
    /// was recording; restored via [`crate::metrics::load`] so counters
    /// continue instead of restarting from zero.
    pub metrics: Option<MetricsReport>,
    /// Free-form harness metadata (command, n, seed, …); [`Json::Null`]
    /// when unused.
    pub meta: Json,
}

impl RunSnapshot {
    /// Captures the resumable state of `sim` and `rng` (no metrics, no
    /// meta — attach those with [`RunSnapshot::with_metrics`] /
    /// [`RunSnapshot::with_meta`]).
    ///
    /// # Errors
    ///
    /// Returns the backend's error when it does not support snapshots.
    pub fn capture<S: Simulator + ?Sized>(sim: &S, rng: &SimRng) -> Result<Self, String> {
        Ok(Self {
            backend: sim.backend_tag().to_string(),
            rng_words: rng.state_words(),
            spare_normal: rng.spare_normal_bits(),
            state: sim.snapshot()?,
            metrics: None,
            meta: Json::Null,
        })
    }

    /// Attaches a frozen metrics report to the snapshot.
    #[must_use]
    pub fn with_metrics(mut self, report: MetricsReport) -> Self {
        self.metrics = Some(report);
        self
    }

    /// Attaches harness metadata to the snapshot.
    #[must_use]
    pub fn with_meta(mut self, meta: Json) -> Self {
        self.meta = meta;
        self
    }

    /// Reconstructs the RNG exactly as it was at the checkpoint.
    ///
    /// # Errors
    ///
    /// Returns an error for the all-zero word vector, which cannot arise
    /// from a genuine running generator.
    pub fn rng(&self) -> Result<SimRng, String> {
        SimRng::from_state(self.rng_words, self.spare_normal)
            .ok_or_else(|| "snapshot holds an all-zero RNG state".to_string())
    }

    /// Restores the snapshot into `sim` (which must be freshly constructed
    /// with the same protocol and initial shape) and returns the resumed
    /// RNG. After this call, driving `sim` with the returned RNG continues
    /// the interrupted run exactly.
    ///
    /// # Errors
    ///
    /// Returns a description when the snapshot was taken by a different
    /// backend or the state does not fit `sim`; `sim` is unchanged then.
    pub fn resume_into<S: Simulator + ?Sized>(&self, sim: &mut S) -> Result<SimRng, String> {
        if sim.backend_tag() != self.backend {
            return Err(format!(
                "snapshot was taken by backend {:?}, cannot restore into {:?}",
                self.backend,
                sim.backend_tag()
            ));
        }
        let rng = self.rng()?;
        sim.restore(&self.state)?;
        Ok(rng)
    }

    /// Serializes the snapshot to its two-line on-disk text form.
    #[must_use]
    pub fn encode(&self) -> String {
        let rng = Json::obj([
            (
                "words",
                Json::arr(self.rng_words.iter().map(|&w| hex_u64(w))),
            ),
            (
                "spare_normal",
                self.spare_normal.map_or(Json::Null, hex_u64),
            ),
        ]);
        let payload = Json::obj([
            ("backend", Json::from(self.backend.as_str())),
            ("rng", rng),
            ("state", self.state.clone()),
            (
                "metrics",
                self.metrics
                    .as_ref()
                    .map_or(Json::Null, MetricsReport::to_json),
            ),
            ("meta", self.meta.clone()),
        ]);
        let payload_line = payload.render();
        let header = Json::obj([
            ("kind", Json::from("pp_snapshot")),
            ("version", Json::from(FORMAT_VERSION)),
            ("checksum", hex_u64(crc64(payload_line.as_bytes()))),
        ]);
        format!("{}\n{payload_line}\n", header.render())
    }

    /// Parses and validates the two-line on-disk text form.
    ///
    /// The payload checksum is verified *before* any payload field is
    /// parsed: a truncated or bit-flipped file is rejected here and can
    /// never be deserialized into a wrong state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first validation failure (truncation,
    /// header mismatch, checksum mismatch, or malformed payload).
    pub fn decode(text: &str) -> Result<Self, String> {
        let (header_line, rest) = text
            .split_once('\n')
            .ok_or_else(|| "truncated snapshot: missing payload line".to_string())?;
        let header =
            Json::parse(header_line).map_err(|e| format!("malformed snapshot header: {e:?}"))?;
        if header.get("kind").and_then(Json::as_str) != Some("pp_snapshot") {
            return Err("not a pp_snapshot document".to_string());
        }
        let version = header.get("version").and_then(Json::as_u64);
        if !version.is_some_and(|v| (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&v)) {
            return Err(format!(
                "unsupported snapshot version (reader supports {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            ));
        }
        let stored = header
            .get("checksum")
            .ok_or_else(|| "snapshot header is missing its checksum".to_string())
            .and_then(parse_hex_u64)?;
        // The trailing newline is the write-completed marker: `encode`
        // always emits it, so its absence means the file was cut mid-write
        // even when the cut landed exactly on the payload boundary.
        let payload_line = rest
            .strip_suffix('\n')
            .ok_or_else(|| "truncated snapshot: missing trailing newline".to_string())?;
        let actual = crc64(payload_line.as_bytes());
        if actual != stored {
            return Err(format!(
                "snapshot checksum mismatch (stored {stored:016x}, computed {actual:016x}): \
                 file is truncated or corrupted"
            ));
        }
        let payload =
            Json::parse(payload_line).map_err(|e| format!("malformed snapshot payload: {e:?}"))?;
        let backend = payload
            .get("backend")
            .and_then(Json::as_str)
            .ok_or_else(|| "snapshot payload is missing its backend tag".to_string())?
            .to_string();
        let words_json = payload
            .get("rng")
            .and_then(|r| r.get("words"))
            .and_then(Json::as_arr)
            .ok_or_else(|| "snapshot payload is missing rng.words".to_string())?;
        if words_json.len() != 4 {
            return Err(format!(
                "rng.words must hold 4 state words, found {}",
                words_json.len()
            ));
        }
        let mut rng_words = [0u64; 4];
        for (slot, j) in rng_words.iter_mut().zip(words_json) {
            *slot = parse_hex_u64(j)?;
        }
        let spare_normal = match payload.get("rng").and_then(|r| r.get("spare_normal")) {
            None | Some(Json::Null) => None,
            Some(j) => Some(parse_hex_u64(j)?),
        };
        let state = payload
            .get("state")
            .cloned()
            .ok_or_else(|| "snapshot payload is missing its state".to_string())?;
        let metrics = match payload.get("metrics") {
            None | Some(Json::Null) => None,
            Some(m) => Some(
                MetricsReport::parse(&m.render())
                    .map_err(|e| format!("snapshot metrics do not parse: {e:?}"))?,
            ),
        };
        let meta = payload.get("meta").cloned().unwrap_or(Json::Null);
        Ok(Self {
            backend,
            rng_words,
            spare_normal,
            state,
            metrics,
            meta,
        })
    }
}

/// Writes `text` to `path` crash-safely: write a temporary sibling, fsync
/// it, atomically rename it over `path`, then fsync the directory so the
/// rename itself is durable. A kill at any instant leaves either the old
/// file or the new one, never a torn mix.
///
/// # Errors
///
/// Returns any I/O error from the write, fsync, or rename. (A failed
/// directory fsync is ignored — not every platform supports it, and the
/// rename has already happened.)
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates a single snapshot file.
///
/// # Errors
///
/// Returns a description when the file cannot be read or fails
/// [`RunSnapshot::decode`] validation.
pub fn load_path(path: &Path) -> Result<RunSnapshot, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
    RunSnapshot::decode(&text)
}

/// A rotating on-disk checkpoint directory: generation-numbered snapshot
/// files (`gen-NNNNNNNNNN.snap`), the last `keep` of them retained, loaded
/// newest-first with per-generation corruption fallback.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    keep: usize,
    next_gen: u64,
}

/// Generation number encoded in a snapshot file name, if it is one.
fn file_generation(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("gen-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

impl SnapshotStore {
    /// Opens (creating if needed) a checkpoint directory, retaining the
    /// last `keep` generations on save (`keep` is clamped to ≥ 1). New
    /// saves continue after the highest generation already present.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the scan.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let next_gen = Self::scan(&dir)?.last().map_or(0, |&(g, _)| g + 1);
        Ok(Self {
            dir,
            keep: keep.max(1),
            next_gen,
        })
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All snapshot generations currently on disk, ascending.
    fn scan(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut gens = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if let Some(g) = file_generation(&path) {
                gens.push((g, path));
            }
        }
        gens.sort_unstable_by_key(|&(g, _)| g);
        Ok(gens)
    }

    /// All snapshot generations currently on disk, ascending. Files that
    /// do not match the generation naming scheme are ignored.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the directory.
    pub fn generations(&self) -> std::io::Result<Vec<(u64, PathBuf)>> {
        Self::scan(&self.dir)
    }

    /// Writes `snap` as the next generation (crash-safely, via
    /// [`write_atomic`]) and prunes generations beyond the last `keep`.
    /// Returns the path written.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write; pruning failures are ignored
    /// (an unpruned stale generation is harmless).
    pub fn save(&mut self, snap: &RunSnapshot) -> std::io::Result<PathBuf> {
        let path = self.dir.join(format!("gen-{:010}.snap", self.next_gen));
        write_atomic(&path, &snap.encode())?;
        self.next_gen += 1;
        if let Ok(gens) = Self::scan(&self.dir) {
            for (_, old) in gens.iter().take(gens.len().saturating_sub(self.keep)) {
                let _ = std::fs::remove_file(old);
            }
        }
        Ok(path)
    }

    /// Loads the newest valid snapshot, degrading past corruption instead
    /// of aborting: each unreadable or checksum-rejected generation is
    /// recorded as an [`Incident`] (cause `"snapshot_corrupt"`, index =
    /// generation) and the next-older one is tried. Returns `None` with
    /// the incident log when no generation survives — the caller falls
    /// back to a clean restart.
    #[must_use]
    pub fn load_latest(&self) -> (Option<(u64, PathBuf, RunSnapshot)>, Vec<Incident>) {
        self.load_latest_at_most(None)
    }

    /// Like [`SnapshotStore::load_latest`], but only considers generations
    /// `≤ max_gen` when a bound is given (used to resume from "the named
    /// snapshot or anything older", never something newer).
    #[must_use]
    pub fn load_latest_at_most(
        &self,
        max_gen: Option<u64>,
    ) -> (Option<(u64, PathBuf, RunSnapshot)>, Vec<Incident>) {
        let mut incidents = Vec::new();
        let gens = match Self::scan(&self.dir) {
            Ok(g) => g,
            Err(e) => {
                incidents.push(corruption_incident(0, &self.dir, &e.to_string()));
                return (None, incidents);
            }
        };
        for (gen, path) in gens
            .into_iter()
            .rev()
            .filter(|&(g, _)| max_gen.is_none_or(|m| g <= m))
        {
            match load_path(&path) {
                Ok(snap) => return (Some((gen, path, snap)), incidents),
                Err(detail) => incidents.push(corruption_incident(gen, &path, &detail)),
            }
        }
        (None, incidents)
    }
}

/// An [`Incident`] describing one rejected snapshot generation.
fn corruption_incident(gen: u64, path: &Path, detail: &str) -> Incident {
    Incident {
        index: usize::try_from(gen).unwrap_or(usize::MAX),
        attempt: 0,
        cause: "snapshot_corrupt",
        detail: format!("{}: {detail}", path.display()),
        elapsed_s: 0.0,
        backoff_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::CountPopulation;
    use crate::protocol::TableProtocol;
    use crate::sim::Simulator;

    fn sample_snapshot() -> RunSnapshot {
        let p = TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1);
        let mut pop = CountPopulation::from_counts(&p, &[500, 12]);
        let mut rng = SimRng::seed_from(0xfeed);
        pop.step_batch(&mut rng, 700);
        RunSnapshot::capture(&pop, &rng)
            .expect("counts backend supports snapshots")
            .with_meta(Json::obj([("n", Json::from(512u64))]))
    }

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ check value for the standard "123456789" test string.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_detects_single_bit_flips() {
        let base = b"population protocols are fast".to_vec();
        let reference = crc64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc64(&flipped),
                    reference,
                    "flip at byte {byte} bit {bit} must change the CRC"
                );
            }
        }
    }

    #[test]
    fn hex_u64_round_trips_extremes() {
        for v in [0u64, 1, (1 << 53) + 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_hex_u64(&hex_u64(v)).unwrap(), v);
        }
        assert!(parse_hex_u64(&Json::from(17u64)).is_err());
        assert!(parse_hex_u64(&Json::from("not hex")).is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample_snapshot();
        let text = snap.encode();
        let back = RunSnapshot::decode(&text).expect("own encoding must decode");
        assert_eq!(back.backend, snap.backend);
        assert_eq!(back.rng_words, snap.rng_words);
        assert_eq!(back.spare_normal, snap.spare_normal);
        assert_eq!(back.state.render(), snap.state.render());
        assert_eq!(back.meta.render(), snap.meta.render());
        assert!(back.metrics.is_none());
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let text = sample_snapshot().encode();
        for len in 0..text.len() {
            assert!(
                RunSnapshot::decode(&text[..len]).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn decode_rejects_version_and_kind_mismatch() {
        let text = sample_snapshot().encode();
        let other = text.replacen("\"version\":2", "\"version\":999", 1);
        assert!(RunSnapshot::decode(&other).is_err());
        let foreign = text.replacen("pp_snapshot", "pp_snapshoT", 1);
        assert!(RunSnapshot::decode(&foreign).is_err());
    }

    #[test]
    fn decode_accepts_previous_format_version() {
        // Version-1 snapshots (pre-sharding) have the identical payload
        // schema; the reader must keep accepting them.
        let text = sample_snapshot().encode();
        let v1 = text.replacen("\"version\":2", "\"version\":1", 1);
        assert_ne!(text, v1, "header rewrite must take effect");
        assert!(RunSnapshot::decode(&v1).is_ok());
    }

    #[test]
    fn zero_rng_words_cannot_resume() {
        let mut snap = sample_snapshot();
        snap.rng_words = [0; 4];
        assert!(snap.rng().is_err());
    }

    #[test]
    fn store_rotates_and_falls_back_past_corruption() {
        let dir = std::env::temp_dir().join(format!("pp_snap_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SnapshotStore::open(&dir, 3).unwrap();
        let snap = sample_snapshot();
        let mut paths = Vec::new();
        for _ in 0..5 {
            paths.push(store.save(&snap).unwrap());
        }
        let gens = store.generations().unwrap();
        assert_eq!(
            gens.iter().map(|&(g, _)| g).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "only the last 3 generations survive rotation"
        );
        // Corrupt the newest generation: flip one payload bit.
        let newest = &gens[2].1;
        let mut bytes = std::fs::read(newest).unwrap();
        let flip = bytes.len() - 10;
        bytes[flip] ^= 0x01;
        std::fs::write(newest, &bytes).unwrap();
        let (loaded, incidents) = store.load_latest();
        let (gen, path, _) = loaded.expect("older generation must survive");
        assert_eq!(gen, 3, "fallback picks the previous generation");
        assert_eq!(path, gens[1].1);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].cause, "snapshot_corrupt");
        assert_eq!(incidents[0].index, 4);
        // Reopening continues the generation sequence past the corrupt one.
        let mut reopened = SnapshotStore::open(&dir, 3).unwrap();
        let next = reopened.save(&snap).unwrap();
        assert_eq!(file_generation(&next), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_with_nothing_valid_reports_clean_restart() {
        let dir = std::env::temp_dir().join(format!("pp_snap_empty_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir, 2).unwrap();
        let (loaded, incidents) = store.load_latest();
        assert!(loaded.is_none());
        assert!(incidents.is_empty());
        std::fs::write(dir.join("gen-0000000000.snap"), "garbage\n{oops").unwrap();
        let (loaded, incidents) = store.load_latest();
        assert!(loaded.is_none(), "garbage never parses into a state");
        assert_eq!(incidents.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
