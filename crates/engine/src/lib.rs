//! # pp-engine — simulation substrate for population protocols
//!
//! This crate provides everything needed to *run* population protocols, the
//! model of Angluin et al. in which `n` indistinguishable finite-state agents
//! interact in randomly scheduled pairs. It is the foundation of the
//! reproduction of *Population Protocols Are Fast* (Kosowski & Uznański,
//! PODC 2018): the protocol crates define transition functions, and this
//! crate supplies exact schedulers, fast simulation backends, the mean-field
//! (continuous-limit) integrator, measurement observers, statistics, and a
//! parallel sweep harness.
//!
//! ## Backends
//!
//! Every backend implements [`sim::Simulator`], including the batched
//! stepping entry point [`sim::Simulator::step_batch`] that the run loops
//! ([`sim::run_rounds`], [`sim::run_until`]) drive; per-interaction
//! [`sim::Simulator::step`] remains for fine-grained control. Batch cost is
//! what matters on hot paths: it is paid once per *reactive* interaction (or
//! per executed step where no reactivity information exists), with no-op
//! stretches leaped over in `O(1)`.
//!
//! | Backend | Representation | Per-step cost | Batch cost (per `step_batch` of `m` steps) | Use case |
//! |---|---|---|---|---|
//! | [`population::Population`] | explicit agent array | `O(1)` | `O(m)` tight loop | per-agent inspection, matching scheduler |
//! | [`counts::CountPopulation`] | state-count vector + Fenwick | `O(log k)` | `O(k)` per reactive interaction, `O(1)` per no-op stretch (`k ≤ 1024`); `O(m log k)` otherwise | very large `n` |
//! | [`counts::SparseCountPopulation`] | occupied states only | `O(occupied)` | `O(m · occupied)` tight loop | huge nominal `k`, few occupied states |
//! | [`accel::AcceleratedPopulation`] | count vector + reactivity | `O(k)` per *reactive* step | `O(k)` per reactive interaction, `O(1)` per no-op stretch | sparse dynamics, silence detection |
//! | [`matching::MatchingPopulation`] | agent array | `O(n)` per round | whole rounds, `O(1)` amortized per step | random-matching scheduler (§5.3) |
//! | [`meanfield`] | fraction vector | `O(k²)` per ODE step | — (deterministic) | `n → ∞` limit |
//!
//! All stochastic backends implement the same distribution over runs, and
//! `step_batch` induces the same run distribution as iterated `step` — the
//! leaping backends are exact because they only skip interactions that
//! provably cannot change state (see `DESIGN.md` for the argument).
//!
//! ## Telemetry
//!
//! Every backend hot path carries capture points for the global [`metrics`]
//! registry (counters + log₂ histograms; near-zero cost while disabled,
//! which is the default), scoped timers for the hierarchical [`prof`]
//! section profiler (same single-flag cost model), and [`trace`] records
//! span/event timelines — plus per-batch regime-dispatch decision records —
//! as JSON Lines via the in-repo [`json`] writer/reader. See `DESIGN.md`
//! §10 and §14.
//!
//! ## Example
//!
//! ```
//! use pp_engine::counts::CountPopulation;
//! use pp_engine::protocol::TableProtocol;
//! use pp_engine::rng::SimRng;
//! use pp_engine::sim::{run_until, Simulator};
//!
//! // Two-way epidemic: one informed agent informs everyone in O(log n) rounds.
//! let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
//! let mut pop = CountPopulation::from_counts(&p, &[99_999, 1]);
//! let mut rng = SimRng::seed_from(7);
//! let t = run_until(&mut pop, &mut rng, 100.0, 256, |s| s.count(0) == 0)
//!     .expect("epidemic completes");
//! assert!(t < 60.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod accel;
pub mod collision;
pub mod counts;
pub mod faults;
pub mod fenwick;
pub mod json;
pub mod matching;
pub mod meanfield;
pub mod metrics;
pub mod obj;
pub mod observe;
pub mod pardense;
pub mod population;
pub mod prof;
pub mod protocol;
pub mod report;
pub mod rng;
pub mod ruletable;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod sweep;
pub mod trace;

pub use protocol::{Protocol, ProtocolSpec};
pub use rng::SimRng;
pub use sim::{run_rounds, run_until, BatchOutcome, Simulator, StepOutcome};
