//! Mean-field (continuous-limit) integration of population protocols.
//!
//! The paper's proofs repeatedly use the continuous approximation: identify
//! the population configuration with the point `x ∈ [0,1]^k` of state
//! fractions, and approximate the stochastic evolution by the ODE system
//! obtained in the `n → ∞` limit. For a protocol with outcome distribution
//! `P[(a,b) → (a',b')]`, one parallel time unit corresponds to `n`
//! interactions, and the drift of state `s` is
//!
//! ```text
//! dx_s/dt = Σ_{a,b} x_a x_b Σ_{(a',b')} P[(a,b)→(a',b')] · (Δ_s(a,b→a',b'))
//! ```
//!
//! where `Δ_s` counts the net change of state-`s` agents in the transition
//! (−2, −1, 0, 1, or 2). This module computes that vector field from any
//! [`ProtocolSpec`] and integrates it with classic fixed-step RK4.
//!
//! The experiments use this to overlay stochastic trajectories on their
//! deterministic limits (e.g. the `|X| ≈ n·e^{−t^{1/k}}` decay of
//! Proposition 5.5) and to locate fixed points of the oscillator dynamics.

use crate::protocol::ProtocolSpec;

/// Computes the mean-field drift `dx/dt` at fractions `x`.
///
/// `x` must have one entry per protocol state; entries should be
/// non-negative and sum to ≈ 1, but the drift is well-defined for any `x`.
///
/// # Panics
///
/// Panics if `x.len() != protocol.num_states()`.
#[must_use]
pub fn drift<P: ProtocolSpec + ?Sized>(protocol: &P, x: &[f64]) -> Vec<f64> {
    let k = protocol.num_states();
    assert_eq!(x.len(), k, "fraction vector has wrong length");
    let mut dx = vec![0.0; k];
    for a in 0..k {
        if x[a] == 0.0 {
            continue;
        }
        for b in 0..k {
            if x[b] == 0.0 {
                continue;
            }
            let rate = x[a] * x[b];
            for ((a2, b2), p) in protocol.outcomes(a, b) {
                if (a2, b2) == (a, b) || p == 0.0 {
                    continue;
                }
                let w = rate * p;
                dx[a] -= w;
                dx[b] -= w;
                dx[a2] += w;
                dx[b2] += w;
            }
        }
    }
    dx
}

/// A recorded mean-field trajectory: state fractions sampled on a time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Sample times, in parallel-time units.
    pub times: Vec<f64>,
    /// `states[i]` is the fraction vector at `times[i]`.
    pub states: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Fraction of state `s` over time as `(t, x_s)` pairs.
    #[must_use]
    pub fn series(&self, s: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .zip(&self.states)
            .map(|(&t, x)| (t, x[s]))
            .collect()
    }

    /// The final fraction vector.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    #[must_use]
    pub fn last(&self) -> &[f64] {
        self.states
            .last()
            .expect("integrate always records the initial state")
    }
}

/// Integrates the mean-field ODE with fixed-step RK4 from `x0` for
/// `duration` parallel-time units, recording every `record_every`-th step.
///
/// `dt` is the integration step; `record_every = 0` records only the first
/// and last points.
///
/// # Panics
///
/// Panics if `dt <= 0`, `duration < 0`, or `x0` has the wrong length.
#[must_use]
pub fn integrate<P: ProtocolSpec + ?Sized>(
    protocol: &P,
    x0: &[f64],
    duration: f64,
    dt: f64,
    record_every: usize,
) -> Trajectory {
    assert!(dt > 0.0, "dt must be positive");
    assert!(duration >= 0.0, "duration must be non-negative");
    assert_eq!(x0.len(), protocol.num_states());
    let steps = (duration / dt).ceil() as usize;
    let mut x = x0.to_vec();
    let mut times = vec![0.0];
    let mut states = vec![x.clone()];
    let k = x.len();

    let axpy = |x: &[f64], h: f64, d: &[f64]| -> Vec<f64> {
        x.iter().zip(d).map(|(&xi, &di)| xi + h * di).collect()
    };

    for step in 1..=steps {
        let k1 = drift(protocol, &x);
        let k2 = drift(protocol, &axpy(&x, dt / 2.0, &k1));
        let k3 = drift(protocol, &axpy(&x, dt / 2.0, &k2));
        let k4 = drift(protocol, &axpy(&x, dt, &k3));
        for i in 0..k {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            // Clamp tiny negative drift from floating point error.
            if x[i] < 0.0 && x[i] > -1e-12 {
                x[i] = 0.0;
            }
        }
        if (record_every > 0 && step % record_every == 0) || step == steps {
            times.push(step as f64 * dt);
            states.push(x.clone());
        }
    }
    Trajectory { times, states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TableProtocol;

    /// One-way epidemic: infected fraction y obeys dy/dt = 2·y(1−y)
    /// (both orientations of the pair fire).
    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn drift_of_epidemic_is_logistic() {
        let p = epidemic();
        let d = drift(&p, &[0.7, 0.3]);
        // dy/dt = 2·x·y = 2·0.7·0.3 = 0.42 (each reactive interaction converts one).
        assert!((d[1] - 0.42).abs() < 1e-12, "drift {d:?}");
        assert!((d[0] + 0.42).abs() < 1e-12);
    }

    #[test]
    fn drift_conserves_total_mass() {
        let p = TableProtocol::new(3, "cycle")
            .rule(0, 1, 1, 1)
            .rule(1, 2, 2, 2)
            .rule(2, 0, 0, 0);
        let d = drift(&p, &[0.2, 0.3, 0.5]);
        let total: f64 = d.iter().sum();
        assert!(total.abs() < 1e-12, "mass leak {total}");
    }

    #[test]
    fn epidemic_integrates_to_closed_form() {
        // dy/dt = 2 y (1−y), y(0)=y0 ⇒ y(t) = y0 e^{2t} / (1 − y0 + y0 e^{2t}).
        let p = epidemic();
        let y0 = 0.01_f64;
        let traj = integrate(&p, &[1.0 - y0, y0], 2.0, 1e-3, 0);
        let y = traj.last()[1];
        let t = 2.0_f64;
        let expect = y0 * (2.0 * t).exp() / (1.0 - y0 + y0 * (2.0 * t).exp());
        assert!((y - expect).abs() < 1e-6, "y {y} vs closed form {expect}");
    }

    #[test]
    fn probabilistic_rules_scale_drift() {
        let p = TableProtocol::new(2, "slow")
            .rule_p(1, 0, 1, 1, 0.5)
            .rule_p(0, 1, 1, 1, 0.5);
        let d = drift(&p, &[0.5, 0.5]);
        // Half the rate of the deterministic epidemic at the same point.
        assert!((d[1] - 0.25).abs() < 1e-12, "drift {d:?}");
    }

    #[test]
    fn trajectory_series_extracts_component() {
        let p = epidemic();
        let traj = integrate(&p, &[0.9, 0.1], 1.0, 0.1, 2);
        let series = traj.series(1);
        assert_eq!(series.len(), traj.times.len());
        assert!(
            series.windows(2).all(|w| w[1].1 >= w[0].1),
            "monotone growth"
        );
    }

    #[test]
    fn fixed_point_is_stationary() {
        let p = epidemic();
        let traj = integrate(&p, &[0.0, 1.0], 5.0, 0.01, 0);
        assert!((traj.last()[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let p = epidemic();
        let _ = integrate(&p, &[0.5, 0.5], 1.0, 0.0, 1);
    }
}
