//! Agent-array simulation over arbitrary structured states.
//!
//! The dense-index [`crate::protocol::Protocol`] interface is ideal for
//! small state spaces, but compositions such as the paper's clock hierarchy
//! (oscillator × detector × counter × current/new copies × triggers, per
//! level) have product state spaces far too large to enumerate, while any
//! *reachable* configuration only ever touches a tiny fraction. This backend
//! stores each agent's state as a plain Rust value and never enumerates the
//! space.

use crate::metrics::{self, Counter, Hist};
use crate::rng::SimRng;

/// A population protocol over structured states.
///
/// Like [`crate::protocol::Protocol`], an implementation must be a
/// deterministic function of the input pair and the RNG stream.
pub trait ObjProtocol {
    /// Per-agent state.
    type State: Clone + PartialEq + std::fmt::Debug;

    /// Applies one interaction to the ordered pair, returning successors.
    fn interact(
        &self,
        a: &Self::State,
        b: &Self::State,
        rng: &mut SimRng,
    ) -> (Self::State, Self::State);
}

impl<P: ObjProtocol + ?Sized> ObjProtocol for &P {
    type State = P::State;

    fn interact(
        &self,
        a: &Self::State,
        b: &Self::State,
        rng: &mut SimRng,
    ) -> (Self::State, Self::State) {
        (**self).interact(a, b, rng)
    }
}

/// An agent-array population over structured states.
///
/// # Examples
///
/// ```
/// use pp_engine::obj::{ObjPopulation, ObjProtocol};
/// use pp_engine::rng::SimRng;
///
/// struct MaxProto;
/// impl ObjProtocol for MaxProto {
///     type State = u64;
///     fn interact(&self, a: &u64, b: &u64, _rng: &mut SimRng) -> (u64, u64) {
///         let m = (*a).max(*b);
///         (m, m)
///     }
/// }
///
/// let mut pop = ObjPopulation::new(MaxProto, (0..16u64).collect());
/// let mut rng = SimRng::seed_from(0);
/// pop.run_rounds(50.0, &mut rng);
/// assert!(pop.iter().all(|s| *s == 15), "max spreads to everyone");
/// ```
#[derive(Debug, Clone)]
pub struct ObjPopulation<P: ObjProtocol> {
    protocol: P,
    agents: Vec<P::State>,
    steps: u64,
}

impl<P: ObjProtocol> ObjPopulation<P> {
    /// Creates a population from explicit initial agent states.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 agents are given.
    #[must_use]
    pub fn new(protocol: P, agents: Vec<P::State>) -> Self {
        assert!(agents.len() >= 2, "population must have at least 2 agents");
        Self {
            protocol,
            agents,
            steps: 0,
        }
    }

    /// Creates a population of `n` agents, each initialized by `init(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn from_fn(protocol: P, n: usize, init: impl FnMut(usize) -> P::State) -> Self {
        Self::new(protocol, (0..n).map(init).collect())
    }

    /// Population size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.agents.len()
    }

    /// Interactions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Parallel time elapsed (`steps / n`).
    #[must_use]
    pub fn time(&self) -> f64 {
        self.steps as f64 / self.agents.len() as f64
    }

    /// The protocol.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// State of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn agent(&self, i: usize) -> &P::State {
        &self.agents[i]
    }

    /// Iterates over agent states.
    pub fn iter(&self) -> impl Iterator<Item = &P::State> + '_ {
        self.agents.iter()
    }

    /// Counts agents satisfying a predicate.
    pub fn count_where(&self, mut pred: impl FnMut(&P::State) -> bool) -> u64 {
        self.agents.iter().filter(|s| pred(s)).count() as u64
    }

    /// Performs one asynchronous-scheduler interaction.
    pub fn step(&mut self, rng: &mut SimRng) {
        self.step_batch(rng, 1);
    }

    /// Executes `max_steps` asynchronous-scheduler interactions as one
    /// batch with the population size and agent buffer access hoisted out
    /// of the per-step path. Returns how many interactions changed at least
    /// one agent's state.
    pub fn step_batch(&mut self, rng: &mut SimRng, max_steps: u64) -> u64 {
        let n = self.agents.len();
        let mut changed = 0u64;
        for _ in 0..max_steps {
            let i = rng.index(n);
            let mut j = rng.index(n - 1);
            if j >= i {
                j += 1;
            }
            let (a2, b2) = self
                .protocol
                .interact(&self.agents[i], &self.agents[j], rng);
            if a2 != self.agents[i] || b2 != self.agents[j] {
                changed += 1;
            }
            self.agents[i] = a2;
            self.agents[j] = b2;
        }
        self.steps += max_steps;
        if metrics::enabled() {
            metrics::add(Counter::InteractionsExecuted, max_steps);
            metrics::add(Counter::InteractionsChanged, changed);
            metrics::add(Counter::Batches, 1);
            metrics::observe(Hist::BatchSize, max_steps);
        }
        changed
    }

    /// Runs for `rounds` parallel rounds (batched internally).
    pub fn run_rounds(&mut self, rounds: f64, rng: &mut SimRng) {
        let target = self.steps + (rounds * self.agents.len() as f64).ceil() as u64;
        if target > self.steps {
            self.step_batch(rng, target - self.steps);
        }
    }

    /// Runs until `stop` holds (checked every `check_every` steps) or
    /// `max_rounds` elapse; returns the time `stop` first held. Advances
    /// `check_every` steps per batch, so the predicate is evaluated at
    /// checkpoint granularity.
    pub fn run_until(
        &mut self,
        rng: &mut SimRng,
        max_rounds: f64,
        check_every: u64,
        mut stop: impl FnMut(&Self) -> bool,
    ) -> Option<f64> {
        let check_every = check_every.max(1);
        if stop(self) {
            return Some(self.time());
        }
        let limit = self.steps + (max_rounds * self.agents.len() as f64).ceil() as u64;
        while self.steps < limit {
            let batch = check_every.min(limit - self.steps);
            self.step_batch(rng, batch);
            if stop(self) {
                return Some(self.time());
            }
        }
        None
    }

    /// One synchronous random-matching round: a fresh uniform matching, one
    /// interaction per pair with random orientation (⌊n/2⌋ interactions).
    pub fn matching_round(&mut self, rng: &mut SimRng) {
        let n = self.agents.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.index(i + 1);
            order.swap(i, j);
        }
        for pair in order.chunks_exact(2) {
            let (mut i, mut j) = (pair[0] as usize, pair[1] as usize);
            if rng.chance(0.5) {
                std::mem::swap(&mut i, &mut j);
            }
            self.steps += 1;
            let (a2, b2) = self
                .protocol
                .interact(&self.agents[i], &self.agents[j], rng);
            self.agents[i] = a2;
            self.agents[j] = b2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Annihilate;
    impl ObjProtocol for Annihilate {
        type State = bool;
        fn interact(&self, a: &bool, b: &bool, _rng: &mut SimRng) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }
    }

    #[test]
    fn fratricide_over_structs() {
        let mut pop = ObjPopulation::from_fn(Annihilate, 64, |_| true);
        let mut rng = SimRng::seed_from(1);
        let t = pop.run_until(&mut rng, 1e5, 4, |p| p.count_where(|&s| s) == 1);
        assert!(t.is_some());
        assert_eq!(pop.count_where(|&s| s), 1);
    }

    #[test]
    fn steps_and_time_track() {
        let mut pop = ObjPopulation::from_fn(Annihilate, 10, |_| false);
        let mut rng = SimRng::seed_from(2);
        pop.run_rounds(3.0, &mut rng);
        assert_eq!(pop.steps(), 30);
        assert!((pop.time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matching_round_touches_half_pairs() {
        let mut pop = ObjPopulation::from_fn(Annihilate, 9, |_| true);
        let mut rng = SimRng::seed_from(3);
        pop.matching_round(&mut rng);
        assert_eq!(pop.steps(), 4, "⌊9/2⌋ interactions");
        // Each matched pair annihilates one: exactly 4 lost.
        assert_eq!(pop.count_where(|&s| s), 5);
    }

    #[test]
    #[should_panic(expected = "at least 2 agents")]
    fn rejects_tiny_population() {
        let _ = ObjPopulation::new(Annihilate, vec![true]);
    }

    #[test]
    fn from_fn_passes_index() {
        let pop = ObjPopulation::from_fn(Annihilate, 4, |i| i % 2 == 0);
        assert_eq!(pop.count_where(|&s| s), 2);
        assert!(*pop.agent(0));
        assert!(!*pop.agent(1));
    }
}
