//! The core [`Protocol`] abstraction: a population protocol as a randomized
//! pairwise transition function over a dense, finite state space.
//!
//! States are represented as `usize` indices in `0..num_states()`. Each
//! concrete protocol defines its own packing of semantic content (boolean
//! flags, counters, species tags, …) into that index; the simulators in this
//! crate only need the index view. This densification is what enables the
//! count-based simulator ([`crate::counts`]) and the mean-field integrator
//! ([`crate::meanfield`]).
//!
//! # Examples
//!
//! A one-way epidemic: state `1` infects state `0`.
//!
//! ```
//! use pp_engine::protocol::Protocol;
//! use pp_engine::rng::SimRng;
//!
//! struct Epidemic;
//!
//! impl Protocol for Epidemic {
//!     fn num_states(&self) -> usize { 2 }
//!     fn interact(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
//!         if a == 1 || b == 1 { (1, 1) } else { (a, b) }
//!     }
//! }
//!
//! let mut rng = SimRng::seed_from(0);
//! assert_eq!(Epidemic.interact(1, 0, &mut rng), (1, 1));
//! ```

use crate::rng::SimRng;

/// A population protocol over a dense finite state space.
///
/// An *interaction* takes an ordered pair (initiator, responder) of agent
/// states and produces their successor states, possibly consuming
/// randomness. Under the standard asynchronous scheduler the pair is chosen
/// uniformly at random among all `n(n−1)` ordered pairs; see
/// [`crate::population::Population`] and [`crate::counts::CountPopulation`].
///
/// Implementations must be deterministic functions of `(a, b)` and the RNG
/// stream: given the same RNG state they must return the same result. This is
/// what makes whole simulations replayable from a seed.
pub trait Protocol {
    /// Number of states; all state indices lie in `0..num_states()`.
    fn num_states(&self) -> usize;

    /// Applies one interaction to the ordered pair `(a, b)`.
    ///
    /// Returns the successor states `(a', b')`. A pair on which the protocol
    /// has no applicable rule must be returned unchanged.
    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize);

    /// Whether an interaction between states `a` and `b` can possibly change
    /// either state.
    ///
    /// This is a *conservative* hint consumed by the no-op leaping
    /// accelerator ([`crate::accel`]): returning `false` asserts that
    /// `interact(a, b, _) == (a, b)` always. Returning `true` is always safe.
    /// The default claims every pair is reactive, which disables leaping.
    fn is_reactive(&self, a: usize, b: usize) -> bool {
        let _ = (a, b);
        true
    }

    /// The full outcome distribution of an interaction `(a, b)`, if the
    /// protocol can enumerate it: `((a', b'), probability)` entries summing
    /// to 1.
    ///
    /// This is an optional *performance* hook consumed by the exact
    /// collision-batch stepper ([`crate::collision`]): when a contingency
    /// table says an ordered state pair interacted `t` times inside a batch,
    /// an enumerated cell lets the engine split the `t` interactions across
    /// outcomes with `O(outcomes)` binomial draws instead of `t` calls to
    /// [`Protocol::interact`]. Returning `None` (the default) is always
    /// correct — the engine falls back to per-interaction `interact` calls.
    /// A `Some` answer must agree exactly with `interact`: sampling the
    /// listed distribution must be equivalent to calling it.
    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        let _ = (a, b);
        None
    }

    /// Human-readable label for a state, used in traces and reports.
    fn state_label(&self, state: usize) -> String {
        format!("s{state}")
    }

    /// Short protocol name for reports.
    fn name(&self) -> &str {
        "protocol"
    }
}

// Allow `&P` and boxed protocols wherever a protocol is expected.
impl<P: Protocol + ?Sized> Protocol for &P {
    fn num_states(&self) -> usize {
        (**self).num_states()
    }
    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        (**self).interact(a, b, rng)
    }
    fn is_reactive(&self, a: usize, b: usize) -> bool {
        (**self).is_reactive(a, b)
    }
    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        (**self).outcome_table(a, b)
    }
    fn state_label(&self, state: usize) -> String {
        (**self).state_label(state)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Protocol + ?Sized> Protocol for Box<P> {
    fn num_states(&self) -> usize {
        (**self).num_states()
    }
    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        (**self).interact(a, b, rng)
    }
    fn is_reactive(&self, a: usize, b: usize) -> bool {
        (**self).is_reactive(a, b)
    }
    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        (**self).outcome_table(a, b)
    }
    fn state_label(&self, state: usize) -> String {
        (**self).state_label(state)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A protocol that can enumerate its interaction outcome distribution.
///
/// This is the interface consumed by the mean-field integrator
/// ([`crate::meanfield`]): for each ordered state pair it lists every
/// possible outcome together with its probability. The probabilities for a
/// fixed input pair must sum to 1.
///
/// `interact` and `outcomes` must agree: sampling from the listed
/// distribution must be equivalent to calling `interact`.
pub trait ProtocolSpec: Protocol {
    /// Returns the outcome distribution for the ordered input pair `(a, b)`
    /// as `((a', b'), probability)` entries.
    fn outcomes(&self, a: usize, b: usize) -> Vec<((usize, usize), f64)>;
}

/// A composition of protocols into *threads* sharing a scheduler
/// (Section 1.3 of the paper).
///
/// The composite state is the Cartesian product of the thread states, packed
/// as a mixed-radix integer with thread 0 as the least significant digit. At
/// every interaction one thread is selected uniformly at random and its
/// protocol is applied to the corresponding components; the other components
/// are untouched. This realizes the paper's convention that "interacting
/// agents pick a rule corresponding to the current step of each of the
/// threads, choosing a thread u.a.r.".
///
/// Note this models *independent* (non-communicating) thread composition —
/// "composing P₂ on top of P₁". Protocols whose threads share variables are
/// instead expressed as a single protocol over the shared flag space (see the
/// `pp-rules` crate).
///
/// # Examples
///
/// ```
/// use pp_engine::protocol::{Protocol, Threads};
/// use pp_engine::rng::SimRng;
///
/// struct Noop(usize);
/// impl Protocol for Noop {
///     fn num_states(&self) -> usize { self.0 }
///     fn interact(&self, a: usize, b: usize, _r: &mut SimRng) -> (usize, usize) { (a, b) }
/// }
///
/// let t = Threads::new(vec![Box::new(Noop(3)), Box::new(Noop(4))]);
/// assert_eq!(t.num_states(), 12);
/// let packed = t.pack(&[2, 3]);
/// assert_eq!(t.unpack(packed), vec![2, 3]);
/// ```
pub struct Threads {
    threads: Vec<Box<dyn Protocol + Send + Sync>>,
    radices: Vec<usize>,
    total: usize,
    name: String,
}

impl Threads {
    /// Composes the given protocols as independent threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty, if any thread has zero states, or if the
    /// product state space overflows `usize`.
    #[must_use]
    pub fn new(threads: Vec<Box<dyn Protocol + Send + Sync>>) -> Self {
        assert!(!threads.is_empty(), "Threads requires at least one thread");
        let radices: Vec<usize> = threads.iter().map(|t| t.num_states()).collect();
        assert!(
            radices.iter().all(|&r| r > 0),
            "every thread must have at least one state"
        );
        let total = radices
            .iter()
            .try_fold(1usize, |acc, &r| acc.checked_mul(r))
            .expect("composite state space overflows usize");
        let name = format!("threads[{}]", threads.len());
        Self {
            threads,
            radices,
            total,
            name,
        }
    }

    /// Number of composed threads.
    #[must_use]
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the composition is empty (never true; kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Packs per-thread component states into a composite state index.
    ///
    /// # Panics
    ///
    /// Panics if the number of components or any component is out of range.
    #[must_use]
    pub fn pack(&self, components: &[usize]) -> usize {
        assert_eq!(components.len(), self.threads.len());
        let mut acc = 0usize;
        for (i, (&c, &r)) in components.iter().zip(&self.radices).enumerate().rev() {
            assert!(c < r, "component {i} out of range: {c} >= {r}");
            acc = acc * r + c;
        }
        acc
    }

    /// Unpacks a composite state index into per-thread component states.
    #[must_use]
    pub fn unpack(&self, mut state: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.radices.len());
        for &r in &self.radices {
            out.push(state % r);
            state /= r;
        }
        out
    }
}

impl Protocol for Threads {
    fn num_states(&self) -> usize {
        self.total
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        let k = rng.index(self.threads.len());
        // Extract the k-th component of both states.
        let mut div = 1usize;
        for &r in &self.radices[..k] {
            div *= r;
        }
        let r = self.radices[k];
        let ca = (a / div) % r;
        let cb = (b / div) % r;
        let (na, nb) = self.threads[k].interact(ca, cb, rng);
        debug_assert!(na < r && nb < r);
        let a2 = (a as isize + (na as isize - ca as isize) * div as isize) as usize;
        let b2 = (b as isize + (nb as isize - cb as isize) * div as isize) as usize;
        (a2, b2)
    }

    fn state_label(&self, state: usize) -> String {
        let comps = self.unpack(state);
        let parts: Vec<String> = comps
            .iter()
            .zip(&self.threads)
            .map(|(&c, t)| t.state_label(c))
            .collect();
        format!("({})", parts.join(","))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A protocol defined by an explicit outcome table, convenient for tests and
/// for small hand-written dynamics.
///
/// Unlisted pairs are identity (no-op). Listed pairs carry a probability
/// distribution over outcomes; any residual probability mass is identity.
#[derive(Debug, Clone, Default)]
pub struct TableProtocol {
    states: usize,
    name: String,
    labels: Vec<String>,
    /// `rules[a * states + b]` = list of `((a', b'), prob)`.
    rules: Vec<Vec<((usize, usize), f64)>>,
}

impl TableProtocol {
    /// Creates an empty (all no-op) table protocol with `states` states.
    ///
    /// # Panics
    ///
    /// Panics if `states == 0`.
    #[must_use]
    pub fn new(states: usize, name: impl Into<String>) -> Self {
        assert!(states > 0);
        Self {
            states,
            name: name.into(),
            labels: (0..states).map(|s| format!("s{s}")).collect(),
            rules: vec![Vec::new(); states * states],
        }
    }

    /// Sets the label of a state, returning `self` for chaining.
    #[must_use]
    pub fn with_label(mut self, state: usize, label: impl Into<String>) -> Self {
        self.labels[state] = label.into();
        self
    }

    /// Adds a deterministic rule `(a, b) → (a', b')`.
    ///
    /// # Panics
    ///
    /// Panics if any state is out of range or the pair already has total
    /// probability exceeding 1.
    #[must_use]
    pub fn rule(self, a: usize, b: usize, a2: usize, b2: usize) -> Self {
        self.rule_p(a, b, a2, b2, 1.0)
    }

    /// Adds a probabilistic rule `(a, b) → (a', b')` firing with probability
    /// `p` (the residual mass stays identity).
    ///
    /// # Panics
    ///
    /// Panics if states are out of range, `p` is not in `(0, 1]`, or the
    /// accumulated probability for `(a, b)` would exceed 1 (beyond a small
    /// tolerance).
    #[must_use]
    pub fn rule_p(mut self, a: usize, b: usize, a2: usize, b2: usize, p: f64) -> Self {
        assert!(a < self.states && b < self.states && a2 < self.states && b2 < self.states);
        assert!(p > 0.0 && p <= 1.0, "rule probability must be in (0, 1]");
        let cell = &mut self.rules[a * self.states + b];
        let total: f64 = cell.iter().map(|&(_, q)| q).sum();
        assert!(
            total + p <= 1.0 + 1e-9,
            "outcome probabilities for ({a}, {b}) exceed 1"
        );
        cell.push(((a2, b2), p));
        self
    }
}

impl Protocol for TableProtocol {
    fn num_states(&self) -> usize {
        self.states
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        let cell = &self.rules[a * self.states + b];
        if cell.is_empty() {
            return (a, b);
        }
        let mut u = rng.f64();
        for &(out, p) in cell {
            if u < p {
                return out;
            }
            u -= p;
        }
        (a, b)
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        self.rules[a * self.states + b]
            .iter()
            .any(|&((a2, b2), _)| (a2, b2) != (a, b))
    }

    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        Some(ProtocolSpec::outcomes(self, a, b))
    }

    fn state_label(&self, state: usize) -> String {
        self.labels[state].clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl ProtocolSpec for TableProtocol {
    fn outcomes(&self, a: usize, b: usize) -> Vec<((usize, usize), f64)> {
        let cell = &self.rules[a * self.states + b];
        let mut out = cell.clone();
        let listed: f64 = cell.iter().map(|&(_, p)| p).sum();
        if listed < 1.0 - 1e-12 {
            out.push(((a, b), 1.0 - listed));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Swap(usize);
    impl Protocol for Swap {
        fn num_states(&self) -> usize {
            self.0
        }
        fn interact(&self, a: usize, b: usize, _rng: &mut SimRng) -> (usize, usize) {
            (b, a)
        }
    }

    #[test]
    fn threads_pack_unpack_roundtrip() {
        let t = Threads::new(vec![
            Box::new(Swap(3)),
            Box::new(Swap(5)),
            Box::new(Swap(2)),
        ]);
        assert_eq!(t.num_states(), 30);
        for s in 0..30 {
            assert_eq!(t.pack(&t.unpack(s)), s);
        }
    }

    #[test]
    fn threads_only_touch_selected_component() {
        let t = Threads::new(vec![Box::new(Swap(4)), Box::new(Swap(4))]);
        let mut rng = SimRng::seed_from(1);
        let a = t.pack(&[1, 2]);
        let b = t.pack(&[3, 0]);
        for _ in 0..100 {
            let (a2, b2) = t.interact(a, b, &mut rng);
            let ca = t.unpack(a2);
            let cb = t.unpack(b2);
            // Exactly one component swapped, the other intact.
            let swapped0 = ca[0] == 3 && cb[0] == 1 && ca[1] == 2 && cb[1] == 0;
            let swapped1 = ca[1] == 0 && cb[1] == 2 && ca[0] == 1 && cb[0] == 3;
            assert!(swapped0 ^ swapped1, "unexpected outcome {ca:?} {cb:?}");
        }
    }

    #[test]
    fn threads_select_uniformly() {
        let t = Threads::new(vec![Box::new(Swap(4)), Box::new(Swap(4))]);
        let mut rng = SimRng::seed_from(2);
        let a = t.pack(&[1, 2]);
        let b = t.pack(&[3, 0]);
        let mut first = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let (a2, _) = t.interact(a, b, &mut rng);
            if t.unpack(a2)[0] == 3 {
                first += 1;
            }
        }
        let rate = first as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "thread-0 rate {rate}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn threads_reject_empty() {
        let _ = Threads::new(vec![]);
    }

    #[test]
    fn table_protocol_identity_by_default() {
        let p = TableProtocol::new(3, "t");
        let mut rng = SimRng::seed_from(0);
        assert_eq!(p.interact(1, 2, &mut rng), (1, 2));
        assert!(!p.is_reactive(1, 2));
    }

    #[test]
    fn table_protocol_deterministic_rule_fires() {
        let p = TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1);
        let mut rng = SimRng::seed_from(0);
        assert_eq!(p.interact(1, 0, &mut rng), (1, 1));
        assert_eq!(p.interact(0, 1, &mut rng), (1, 1));
        assert_eq!(p.interact(0, 0, &mut rng), (0, 0));
        assert!(p.is_reactive(1, 0));
        assert!(!p.is_reactive(0, 0));
    }

    #[test]
    fn table_protocol_probabilistic_rule_rate() {
        let p = TableProtocol::new(2, "half").rule_p(0, 0, 1, 1, 0.25);
        let mut rng = SimRng::seed_from(4);
        let trials = 40_000;
        let fired = (0..trials)
            .filter(|_| p.interact(0, 0, &mut rng) == (1, 1))
            .count();
        let rate = fired as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn table_protocol_outcomes_sum_to_one() {
        let p = TableProtocol::new(3, "x")
            .rule_p(0, 1, 2, 2, 0.5)
            .rule_p(0, 1, 1, 0, 0.25);
        let outs = p.outcomes(0, 1);
        let total: f64 = outs.iter().map(|&(_, q)| q).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(outs.contains(&((0, 1), 0.25)));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn table_protocol_rejects_overfull_distribution() {
        let _ = TableProtocol::new(2, "bad")
            .rule_p(0, 0, 1, 1, 0.7)
            .rule_p(0, 0, 1, 0, 0.7);
    }

    #[test]
    fn reference_through_protocols_work() {
        let p = TableProtocol::new(2, "e").rule(1, 0, 1, 1);
        let r = &p;
        assert_eq!(r.num_states(), 2);
        let boxed: Box<dyn Protocol> = Box::new(p);
        assert_eq!(boxed.num_states(), 2);
    }
}
