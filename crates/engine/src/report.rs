//! Plain-text experiment reporting: aligned tables for the terminal and CSV
//! files for downstream plotting.
//!
//! The bench binaries print the same rows the paper's claims describe
//! (e.g. `n`, median rounds, polylog-exponent fit) both as an aligned table
//! on stdout and, optionally, as CSV next to the bench results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory table with a header row and homogeneous string cells.
///
/// # Examples
///
/// ```
/// use pp_engine::report::Table;
///
/// let mut t = Table::new(vec!["n", "rounds"]);
/// t.row(vec!["1024".into(), "42.5".into()]);
/// let text = t.render();
/// assert!(text.contains("1024"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned plain-text table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:>w$}", w = w);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes, or newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float compactly for table cells (4 significant digits).
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e4 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["n", "time"]);
        t.row(vec!["8".into(), "1.5".into()]);
        t.row(vec!["1024".into(), "12.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("time"));
        assert!(lines[2].ends_with("1.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrips_plain_cells() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["42".into()]);
        assert_eq!(t.to_csv(), "x\n42\n");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("pp_engine_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a\n1\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_f64_is_compact() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(12.25), "12.25");
        assert!(fmt_f64(123456.0).contains('e'));
        assert!(fmt_f64(0.00001).contains('e'));
    }
}
