//! Sharded parallel collision epochs ("super-epochs") for the dense engine.
//!
//! One collision epoch settles Θ(√n) interactions in O(q²) distribution
//! draws ([`crate::collision`]), but consecutive epochs form a serial
//! chain: each epoch's margins are drawn from the counts its predecessor
//! produced. This module breaks that chain over a bounded *window* of
//! `≤ n/16` interactions: the window is split into [`LOGICAL_SHARDS`]
//! fixed budgets, every shard runs its own exact sequential epoch chain
//! from the window-start counts on a private RNG stream, and the per-shard
//! net deltas are merged back in fixed shard order. Within the window the
//! count vector can drift by at most `n/8` agent-slots in total variation,
//! so each shard's frozen-start chain tracks the true law closely; the
//! chi-square suite in `tests/parallel_dense.rs` pins the step-vs-batch
//! agreement at the scales where sharding engages.
//!
//! **Determinism is thread-count independent by construction.** The shard
//! count, budgets, seeds, and merge order are pure functions of the main
//! RNG stream and the window — worker threads only decide *who computes*
//! a shard, never *what* it computes. Running the same shards on 1, 2, or
//! 4 threads (or inline with no pool at all) produces byte-identical
//! results; `tests/parallel_dense.rs` and DESIGN.md §16 pin this contract.
//!
//! The merge accepts the longest prefix of shards whose cumulative delta
//! keeps every state count non-negative. Shard 0 always merges (its chain
//! evolved from the real window-start counts, so its delta is feasible by
//! construction); a dropped suffix shard simply contributes nothing and
//! its budget is re-dispatched by the caller's outer batch loop, which
//! keeps `step_batch`'s exact executed-step accounting intact.

use crate::collision::{run_epoch_planned, BirthdayCdf, CollisionScratch, PlanTable};
use crate::rng::SimRng;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of logical shards per super-epoch — a constant, *not* the worker
/// count, so the work decomposition (and therefore every byte of output)
/// is identical no matter how many threads execute it. Eight saturates the
/// 4-thread scaling target with two waves while keeping the frozen-start
/// window drift per shard small.
pub const LOGICAL_SHARDS: usize = 8;

/// Interactions per super-epoch window, as a fraction of `n`: the window
/// is `min(remaining, n / SHARD_WINDOW_DIVISOR)`. At n/16, total count
/// drift within a window is bounded by n/8 agent-slots, keeping every
/// shard's frozen-start approximation tight.
pub const SHARD_WINDOW_DIVISOR: u64 = 16;

/// Minimum expected collision epochs in a window for sharding to engage
/// (two per shard). Below this the per-shard chains are too short to
/// amortize the merge, and the sequential exact path is used instead.
/// With the n/16 window this bound engages around n ≳ 3·10⁴.
pub const SHARD_MIN_EPOCHS: f64 = 16.0;

/// The window (interaction budget) of one super-epoch.
#[must_use]
pub fn shard_window(n: u64, remaining: u64) -> u64 {
    remaining.min((n / SHARD_WINDOW_DIVISOR).max(1))
}

/// The scale half of the eligibility test: whether the window is long
/// enough for sharding to pay. Backends check this *before* building the
/// plan table, so small populations never pay the O(k²) table build.
#[must_use]
pub fn scale_eligible(n: u64, remaining: u64, expected_interactions: f64) -> bool {
    let window = shard_window(n, remaining);
    window >= LOGICAL_SHARDS as u64 && window as f64 >= SHARD_MIN_EPOCHS * expected_interactions
}

/// Whether a super-epoch should run, given the dispatch state the caller
/// already computed. Pure function of its arguments — never of thread
/// count — so the dispatch decision replays identically everywhere.
#[must_use]
pub fn eligible(table: &PlanTable, n: u64, remaining: u64, expected_interactions: f64) -> bool {
    table.complete() && scale_eligible(n, remaining, expected_interactions)
}

/// Deterministic per-shard RNG seed: one main-stream word decorrelated per
/// shard index by the SplitMix64 golden-ratio stride (the seed is then
/// further expanded by `SimRng::seed_from`). Because every shard stream is
/// derived from `epoch_seed` — a single word drawn from the main stream
/// inside the batch — snapshots at batch boundaries capture the complete
/// RNG state with the four main-stream words alone (DESIGN.md §16).
#[must_use]
pub fn shard_seed(epoch_seed: u64, shard: usize) -> u64 {
    epoch_seed ^ (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What one merged super-epoch produced.
#[derive(Debug, Clone)]
pub struct SuperEpochOutcome {
    /// Interactions executed by the accepted shard prefix.
    pub executed: u64,
    /// Interactions that changed at least one agent's state.
    pub changed: u64,
    /// Merged per-state count movement (accepted shards only), dense over
    /// all states.
    pub delta: Vec<i64>,
    /// Per-epoch executed-interaction counts of the accepted shards, in
    /// shard order — the caller records these into the metrics histogram
    /// on the main thread so the metrics stream stays deterministic.
    pub epoch_lens: Vec<u64>,
    /// Logical shards run (= [`LOGICAL_SHARDS`]).
    pub shards_run: usize,
    /// Suffix shards dropped by the non-negativity merge check.
    pub shards_dropped: usize,
}

/// One shard's private chain result.
struct ShardResult {
    delta: Vec<i64>,
    executed: u64,
    changed: u64,
    epoch_lens: Vec<u64>,
}

/// Runs one shard: an exact sequential epoch chain from the frozen
/// window-start counts until the budget is spent.
fn run_shard(
    table: &PlanTable,
    frozen: &[u64],
    cdf: &BirthdayCdf,
    seed: u64,
    budget: u64,
) -> ShardResult {
    debug_assert!(budget >= 1);
    let mut rng = SimRng::seed_from(seed);
    let mut counts = frozen.to_vec();
    let mut scratch = CollisionScratch::new();
    let mut delta = vec![0i64; frozen.len()];
    let mut executed = 0u64;
    let mut changed = 0u64;
    let mut epoch_lens = Vec::new();
    while executed < budget {
        let out = run_epoch_planned(
            table,
            &mut counts,
            cdf,
            &mut scratch,
            &mut rng,
            budget - executed,
        );
        for (t, &d) in delta.iter_mut().zip(scratch.delta()) {
            *t += d;
        }
        executed += out.executed;
        changed += out.changed;
        epoch_lens.push(out.executed);
    }
    ShardResult {
        delta,
        executed,
        changed,
        epoch_lens,
    }
}

/// Write-once result slots claimed by ticket, one per shard — the same
/// idiom as `sweep::Slots`.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: each slot is written at most once, by the worker that claimed
// its index from the ticket counter (fetch_add hands every index to
// exactly one worker), and all workers are joined by the enclosing
// `thread::scope` before the slots are drained on the calling thread.
unsafe impl<T: Send> Sync for Slots<T> {}

/// Runs every logical shard and merges the results in fixed shard order.
///
/// `workers` is the *physical* thread count (from
/// `sweep::resolve_workers`); values ≤ 1 run the shards inline on the
/// calling thread. The result is byte-identical for every `workers` value.
///
/// # Panics
///
/// Panics if `window < LOGICAL_SHARDS` or the table is incomplete —
/// callers gate on [`eligible`] first.
#[must_use]
pub fn run_super_epoch(
    table: &PlanTable,
    counts: &[u64],
    cdf: &BirthdayCdf,
    epoch_seed: u64,
    window: u64,
    workers: usize,
) -> SuperEpochOutcome {
    assert!(
        table.complete(),
        "sharded epochs need a complete plan table"
    );
    assert!(
        window >= LOGICAL_SHARDS as u64,
        "window shorter than the shard count"
    );
    let shards = LOGICAL_SHARDS;
    let base = window / shards as u64;
    let extra = (window % shards as u64) as usize;
    // Budgets and seeds are fixed before any thread runs: the work list is
    // data, the pool is just labor.
    let budgets: Vec<u64> = (0..shards).map(|s| base + u64::from(s < extra)).collect();
    let seeds: Vec<u64> = (0..shards).map(|s| shard_seed(epoch_seed, s)).collect();

    let results: Vec<ShardResult> = if workers <= 1 {
        seeds
            .iter()
            .zip(&budgets)
            .map(|(&seed, &budget)| run_shard(table, counts, cdf, seed, budget))
            .collect()
    } else {
        let slots: Slots<ShardResult> = Slots((0..shards).map(|_| UnsafeCell::new(None)).collect());
        let ticket = AtomicUsize::new(0);
        // Capture the `Sync` wrapper, not its inner Vec (2021 disjoint
        // closure capture would otherwise reach through it).
        let slots_ref = &slots;
        let work = || loop {
            let s = ticket.fetch_add(1, Ordering::Relaxed);
            if s >= shards {
                break;
            }
            let result = run_shard(table, counts, cdf, seeds[s], budgets[s]);
            // SAFETY: index `s` was claimed from the ticket counter, so
            // no other worker writes this slot, and the scope joins all
            // workers before the slots are read.
            unsafe { *slots_ref.0[s].get() = Some(result) };
        };
        std::thread::scope(|scope| {
            for _ in 1..workers.min(shards) {
                scope.spawn(work);
            }
            // The calling thread is a full crew member, not a supervisor.
            work();
        });
        slots
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("every shard ticket was claimed"))
            .collect()
    };

    // Fixed-order prefix merge: accept shards 0, 1, … while the cumulative
    // counts stay non-negative; drop the rest. The acceptance decision
    // depends only on the shard results, which depend only on
    // (epoch_seed, counts) — never on the thread count.
    let k = counts.len();
    let mut cum: Vec<i64> = counts.iter().map(|&c| c as i64).collect();
    let mut merged = SuperEpochOutcome {
        executed: 0,
        changed: 0,
        delta: vec![0i64; k],
        epoch_lens: Vec::new(),
        shards_run: shards,
        shards_dropped: 0,
    };
    let mut accepted = 0usize;
    for r in &results {
        if r.delta.iter().zip(&cum).any(|(&d, &c)| c + d < 0) {
            break;
        }
        for ((c, m), &d) in cum.iter_mut().zip(&mut merged.delta).zip(&r.delta) {
            *c += d;
            *m += d;
        }
        merged.executed += r.executed;
        merged.changed += r.changed;
        merged.epoch_lens.extend_from_slice(&r.epoch_lens);
        accepted += 1;
    }
    merged.shards_dropped = shards - accepted;
    debug_assert!(accepted >= 1, "shard 0 is always feasible");
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TableProtocol;

    fn cycle3() -> TableProtocol {
        TableProtocol::new(3, "cycle3")
            .rule(0, 1, 1, 1)
            .rule(1, 2, 2, 2)
            .rule(2, 0, 0, 0)
    }

    #[test]
    fn super_epoch_is_workers_invariant_and_conserves_population() {
        let p = cycle3();
        let table = PlanTable::build(&p, 3);
        assert!(table.complete());
        let n = 48_000u64;
        let counts = vec![20_000u64, 14_000, 14_000];
        let cdf = BirthdayCdf::new(n);
        let window = shard_window(n, u64::MAX);
        assert!(eligible(&table, n, u64::MAX, cdf.expected_interactions()));
        let seq = run_super_epoch(&table, &counts, &cdf, 0xfeed, window, 1);
        for workers in [2usize, 4, 8] {
            let par = run_super_epoch(&table, &counts, &cdf, 0xfeed, window, workers);
            assert_eq!(seq.delta, par.delta, "workers={workers}");
            assert_eq!(seq.executed, par.executed, "workers={workers}");
            assert_eq!(seq.changed, par.changed, "workers={workers}");
            assert_eq!(seq.epoch_lens, par.epoch_lens, "workers={workers}");
            assert_eq!(seq.shards_dropped, par.shards_dropped, "workers={workers}");
        }
        assert_eq!(seq.delta.iter().sum::<i64>(), 0, "population conserved");
        assert!(seq.executed >= window - window / LOGICAL_SHARDS as u64);
        assert_eq!(
            seq.epoch_lens.iter().sum::<u64>(),
            seq.executed,
            "epoch lengths account for every executed interaction"
        );
    }

    #[test]
    fn eligibility_needs_scale_and_complete_table() {
        let p = cycle3();
        let table = PlanTable::build(&p, 3);
        let small = BirthdayCdf::new(4_000);
        assert!(
            !eligible(&table, 4_000, u64::MAX, small.expected_interactions()),
            "n=4000 stays on the sequential exact path"
        );
        let big = BirthdayCdf::new(1_000_000);
        assert!(eligible(
            &table,
            1_000_000,
            u64::MAX,
            big.expected_interactions()
        ));
        assert!(
            !eligible(&table, 1_000_000, 4, big.expected_interactions()),
            "tiny remaining budget stays sequential"
        );
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let seeds: Vec<u64> = (0..LOGICAL_SHARDS).map(|s| shard_seed(7, s)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }
}
