//! Common simulator interface shared by the agent-array and count-based
//! backends, plus generic run loops.
//!
//! A *step* is one interaction of an ordered agent pair under the standard
//! asynchronous scheduler (uniform over the `n(n−1)` ordered pairs). The
//! standard *parallel time* measure is `steps / n`, reported by
//! [`Simulator::time`]; one unit is called a *round*.
//!
//! ## Batched stepping
//!
//! The hot path of every experiment is "advance the scheduler by many
//! activations, look at the counts, repeat". Driving that through
//! [`Simulator::step`] pays per-activation dispatch, outcome matching, and
//! observer overhead on *every* interaction — at `n ≥ 10⁶` that dominates
//! wall-clock. [`Simulator::step_batch`] advances up to `max_steps`
//! activations in one call and reports an aggregate [`BatchOutcome`];
//! backends override it with tight inner loops (agent-array), count-vector
//! no-op leaping (count-based), folded geometric acceleration (accelerated),
//! or whole matching rounds. The run loops ([`run_rounds`], [`run_until`])
//! size batches from observer checkpoint strides, so measurement granularity
//! — not per-step callbacks — bounds the batch length.

use crate::json::Json;
use crate::metrics::{self, record_batch, Counter};
use crate::observe::Observer;
use crate::rng::SimRng;

/// Result of advancing a simulator by one scheduler activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The interaction changed at least one agent's state.
    Changed,
    /// The interaction was a no-op (identity transition).
    Unchanged,
    /// The configuration is *silent*: no reachable interaction can change any
    /// state, so the simulation is finished. Only backends that track
    /// reactivity report this.
    Silent,
}

/// Aggregate result of advancing a simulator by a batch of activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Scheduler activations consumed by this batch — exactly the change in
    /// [`Simulator::steps`] across the call.
    pub executed: u64,
    /// How many of those activations changed at least one agent's state.
    pub changed: u64,
    /// The configuration is silent: no reachable interaction can ever change
    /// any state again. Backends without reactivity tracking never set this.
    pub silent: bool,
}

impl BatchOutcome {
    /// Merges a per-step outcome into the aggregate.
    fn absorb(&mut self, outcome: StepOutcome) {
        match outcome {
            StepOutcome::Changed => self.changed += 1,
            StepOutcome::Unchanged => {}
            StepOutcome::Silent => self.silent = true,
        }
    }
}

/// Common interface over population-protocol simulation backends.
///
/// Implementations: [`crate::population::Population`] (explicit agent
/// array), [`crate::counts::CountPopulation`] (state-count vector with
/// Fenwick sampling), [`crate::counts::SparseCountPopulation`] (occupied
/// states only), [`crate::accel::AcceleratedPopulation`] (count vector with
/// exact no-op leaping), [`crate::matching::MatchingPopulation`]
/// (random-matching scheduler).
pub trait Simulator {
    /// Population size `n`.
    fn n(&self) -> u64;

    /// Number of protocol states.
    fn num_states(&self) -> usize;

    /// Interactions executed so far. Backends that leap over provably
    /// silent interactions still count them here.
    fn steps(&self) -> u64;

    /// Parallel time elapsed: `steps / n` rounds.
    fn time(&self) -> f64 {
        self.steps() as f64 / self.n() as f64
    }

    /// Number of agents currently in `state`.
    fn count(&self, state: usize) -> u64;

    /// Snapshot of all state counts.
    fn counts(&self) -> Vec<u64> {
        (0..self.num_states()).map(|s| self.count(s)).collect()
    }

    /// Moves up to `k` agents from state `from` to state `to` *out of band*
    /// — no scheduler steps are consumed and no transition is applied.
    ///
    /// Returns how many agents actually moved, which is `min(k, count(from))`
    /// (`from == to` moves nothing). This is the mutation primitive the
    /// fault-injection layer ([`crate::faults`]) composes corruption, churn,
    /// and Byzantine pinning from; it is also useful for test setups.
    /// Backends that cache reactivity or pair structure must invalidate or
    /// repair those caches here.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of range.
    fn migrate(&mut self, from: usize, to: usize, k: u64) -> u64;

    /// Executes one scheduler activation.
    fn step(&mut self, rng: &mut SimRng) -> StepOutcome;

    /// Executes up to `max_steps` scheduler activations as one batch.
    ///
    /// Returns the number of activations actually consumed (`executed`, equal
    /// to the change in [`Simulator::steps`]), how many changed state, and
    /// whether the configuration is now known to be silent. A batch ends
    /// early only on silence; otherwise `executed == max_steps` for the
    /// native backend implementations.
    ///
    /// The sampled process is identical in distribution to calling
    /// [`Simulator::step`] `max_steps` times — batching is an execution
    /// strategy, not an approximation. The default implementation loops
    /// `step()`; backends override it with tight inner loops and no-op
    /// leaping (an order of magnitude faster at large `n`).
    fn step_batch(&mut self, rng: &mut SimRng, max_steps: u64) -> BatchOutcome {
        let start = self.steps();
        let mut out = BatchOutcome::default();
        while self.steps() < start + max_steps {
            let outcome = self.step(rng);
            out.absorb(outcome);
            if out.silent {
                break;
            }
        }
        out.executed = self.steps() - start;
        if metrics::enabled() {
            record_batch(&out);
        }
        out
    }

    /// Sum of counts over a set of states (a "boolean formula" count).
    fn count_any(&self, states: &[usize]) -> u64 {
        states.iter().map(|&s| self.count(s)).sum()
    }

    /// Sets the worker-thread count for backends with internal parallelism
    /// (the dense backends' sharded collision epochs, see
    /// [`crate::pardense`]). `0` (the default) resolves automatically via
    /// `sweep::resolve_workers` (`PP_THREADS` env, then available
    /// parallelism); explicit values pin the physical thread count.
    ///
    /// This is an execution knob, not simulation state: results are
    /// byte-identical for every thread count, so it is neither
    /// snapshotted nor restored. Backends without internal parallelism
    /// ignore it.
    fn set_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Stable tag naming this backend in snapshot headers (`"agents"`,
    /// `"counts"`, `"sparse"`, `"accel"`, `"matching"`, `"faulty"`).
    ///
    /// [`Simulator::restore`] refuses state saved under a different tag, so
    /// a snapshot can never be silently deserialized into the wrong backend
    /// shape. The default marks the backend as snapshot-incapable.
    fn backend_tag(&self) -> &'static str {
        "unsupported"
    }

    /// Serializes the complete resumable simulation state as a JSON value.
    ///
    /// "Complete" means: restoring this value into a freshly constructed
    /// simulator of the same protocol and initial shape (via
    /// [`Simulator::restore`]) and driving it with the same RNG stream
    /// continues the run *exactly* — identical counts, step counter, and
    /// RNG consumption — as if the run had never been interrupted. Derived
    /// caches (Fenwick trees, reactivity tables, batch caches) are *not*
    /// serialized; restore rebuilds them deterministically.
    ///
    /// The RNG itself is external to the simulator and saved separately by
    /// [`crate::snapshot::RunSnapshot`].
    ///
    /// # Errors
    ///
    /// The default implementation reports that the backend has no snapshot
    /// support; the five native backends and
    /// [`crate::faults::FaultyPopulation`] never fail.
    fn snapshot(&self) -> Result<Json, String> {
        Err(format!(
            "backend {:?} does not support snapshots",
            self.backend_tag()
        ))
    }

    /// Restores state previously produced by [`Simulator::snapshot`] into
    /// this simulator, which must have been constructed with the same
    /// protocol and population size as the saved run.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `state` was saved by a
    /// different backend, disagrees with this simulator's population size
    /// or state space, or is structurally malformed. On error the
    /// simulator is left unchanged.
    fn restore(&mut self, state: &Json) -> Result<(), String> {
        let _ = state;
        Err(format!(
            "backend {:?} does not support snapshots",
            self.backend_tag()
        ))
    }
}

/// Upper bound on one batch given observer checkpoint strides.
///
/// The minimum of every observer's declared stride, clamped to `[1,
/// remaining]`; with no observers the whole remainder runs as one batch.
fn checkpoint_batch(sim: &dyn Simulator, observers: &[&mut dyn Observer], remaining: u64) -> u64 {
    let steps = sim.steps();
    observers
        .iter()
        .map(|obs| obs.stride(steps, sim))
        .min()
        .unwrap_or(remaining)
        .clamp(1, remaining)
}

/// Runs `sim` for a given number of parallel rounds (i.e. `rounds * n`
/// interactions), notifying `observers` at their checkpoint strides.
///
/// Each observer declares via [`Observer::stride`] how many steps may elapse
/// between its callbacks; the run loop advances in batches sized to the
/// smallest pending stride and invokes every observer at each batch
/// boundary. Returns early if the simulation becomes silent, returning the
/// number of rounds actually simulated.
///
/// Backends whose scheduler granularity is coarser than one interaction can
/// overshoot the round target: [`crate::matching::MatchingPopulation`] runs
/// whole matching rounds, so each batch (and hence the whole run) may exceed
/// its step budget by up to `⌊n/2⌋ − 1` interactions. The returned round
/// count always reflects the true step delta.
pub fn run_rounds<S: Simulator>(
    sim: &mut S,
    rounds: f64,
    rng: &mut SimRng,
    observers: &mut [&mut dyn Observer],
) -> f64 {
    let start = sim.steps();
    let target = start + (rounds * sim.n() as f64).ceil() as u64;
    while sim.steps() < target {
        let remaining = target - sim.steps();
        let batch = checkpoint_batch(sim, observers, remaining);
        let outcome = sim.step_batch(rng, batch);
        metrics::add(Counter::ObserverCallbacks, observers.len() as u64);
        for obs in observers.iter_mut() {
            obs.observe(sim.steps(), sim);
        }
        if outcome.silent || outcome.executed == 0 {
            break;
        }
    }
    (sim.steps() - start) as f64 / sim.n() as f64
}

/// Runs `sim` until `stop` returns true (checked every `check_every` steps)
/// or `max_rounds` elapse. Returns the parallel time at which `stop` first
/// held, or `None` on timeout.
///
/// The predicate is evaluated on the simulator state, so it can inspect any
/// counts. `check_every = 0` is treated as 1. Internally the loop advances
/// `check_every` steps at a time through [`Simulator::step_batch`], so large
/// check strides make the predicate — not per-step dispatch — the dominant
/// cost.
pub fn run_until<S, F>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: f64,
    check_every: u64,
    mut stop: F,
) -> Option<f64>
where
    S: Simulator + ?Sized,
    F: FnMut(&S) -> bool,
{
    let check_every = check_every.max(1);
    let limit = sim.steps() + (max_rounds * sim.n() as f64).ceil() as u64;
    if stop(sim) {
        return Some(sim.time());
    }
    while sim.steps() < limit {
        let batch = check_every.min(limit - sim.steps());
        let outcome = sim.step_batch(rng, batch);
        if stop(sim) {
            return Some(sim.time());
        }
        if outcome.silent || outcome.executed == 0 {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::protocol::TableProtocol;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn run_rounds_advances_time() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[99, 1]);
        let mut rng = SimRng::seed_from(1);
        let ran = run_rounds(&mut pop, 3.0, &mut rng, &mut []);
        assert!((ran - 3.0).abs() < 0.02);
        assert_eq!(pop.steps(), 300);
    }

    #[test]
    fn run_until_detects_epidemic_completion() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[999, 1]);
        let mut rng = SimRng::seed_from(2);
        let t = run_until(&mut pop, &mut rng, 200.0, 16, |s| s.count(0) == 0)
            .expect("epidemic should finish");
        // One-way epidemic completes in Θ(log n) rounds; generous envelope.
        assert!(t > 1.0 && t < 100.0, "completion time {t}");
    }

    #[test]
    fn run_until_times_out() {
        let p = TableProtocol::new(2, "noop");
        let mut pop = Population::from_counts(&p, &[5, 5]);
        let mut rng = SimRng::seed_from(3);
        let t = run_until(&mut pop, &mut rng, 1.0, 1, |s| s.count(0) == 0);
        assert_eq!(t, None);
    }

    #[test]
    fn run_until_immediate_hit_costs_no_steps() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[0, 10]);
        let mut rng = SimRng::seed_from(4);
        let t = run_until(&mut pop, &mut rng, 10.0, 1, |s| s.count(0) == 0);
        assert_eq!(t, Some(0.0));
        assert_eq!(pop.steps(), 0);
    }

    #[test]
    fn default_step_batch_accounts_exactly() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[63, 1]);
        let mut rng = SimRng::seed_from(5);
        let before = pop.steps();
        let out = pop.step_batch(&mut rng, 1000);
        assert_eq!(out.executed, 1000);
        assert_eq!(pop.steps() - before, out.executed);
        assert!(out.changed <= out.executed);
        assert!(!out.silent);
    }

    #[test]
    fn run_until_checks_on_batch_boundaries() {
        // With check_every = 7, the predicate must still fire even though
        // completion can happen mid-batch; the run loop only guarantees
        // detection within one stride of the true hitting time.
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[127, 1]);
        let mut rng = SimRng::seed_from(6);
        let t = run_until(&mut pop, &mut rng, 500.0, 7, |s| s.count(0) == 0)
            .expect("epidemic completes");
        assert!(t > 0.0);
        assert_eq!(pop.count(0), 0);
    }
}
