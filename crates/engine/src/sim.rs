//! Common simulator interface shared by the agent-array and count-based
//! backends, plus generic run loops.
//!
//! A *step* is one interaction of an ordered agent pair under the standard
//! asynchronous scheduler (uniform over the `n(n−1)` ordered pairs). The
//! standard *parallel time* measure is `steps / n`, reported by
//! [`Simulator::time`]; one unit is called a *round*.

use crate::observe::Observer;
use crate::rng::SimRng;

/// Result of advancing a simulator by one scheduler activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The interaction changed at least one agent's state.
    Changed,
    /// The interaction was a no-op (identity transition).
    Unchanged,
    /// The configuration is *silent*: no reachable interaction can change any
    /// state, so the simulation is finished. Only backends that track
    /// reactivity (the accelerated one) report this.
    Silent,
}

/// Common interface over population-protocol simulation backends.
///
/// Implementations: [`crate::population::Population`] (explicit agent
/// array), [`crate::counts::CountPopulation`] (state-count vector with
/// Fenwick sampling), [`crate::accel::AcceleratedPopulation`] (count vector
/// with exact no-op leaping).
pub trait Simulator {
    /// Population size `n`.
    fn n(&self) -> u64;

    /// Number of protocol states.
    fn num_states(&self) -> usize;

    /// Interactions executed so far. Backends that leap over provably
    /// silent interactions still count them here.
    fn steps(&self) -> u64;

    /// Parallel time elapsed: `steps / n` rounds.
    fn time(&self) -> f64 {
        self.steps() as f64 / self.n() as f64
    }

    /// Number of agents currently in `state`.
    fn count(&self, state: usize) -> u64;

    /// Snapshot of all state counts.
    fn counts(&self) -> Vec<u64> {
        (0..self.num_states()).map(|s| self.count(s)).collect()
    }

    /// Executes one scheduler activation.
    fn step(&mut self, rng: &mut SimRng) -> StepOutcome;

    /// Sum of counts over a set of states (a "boolean formula" count).
    fn count_any(&self, states: &[usize]) -> u64 {
        states.iter().map(|&s| self.count(s)).sum()
    }
}

/// Runs `sim` for a given number of parallel rounds (i.e. `rounds * n`
/// interactions), notifying `observers` after every step.
///
/// Returns early if the simulation becomes silent, returning the number of
/// rounds actually simulated.
pub fn run_rounds<S: Simulator>(
    sim: &mut S,
    rounds: f64,
    rng: &mut SimRng,
    observers: &mut [&mut dyn Observer],
) -> f64 {
    let start = sim.steps();
    let target = start + (rounds * sim.n() as f64).ceil() as u64;
    while sim.steps() < target {
        let outcome = sim.step(rng);
        for obs in observers.iter_mut() {
            obs.observe(sim.steps(), sim);
        }
        if outcome == StepOutcome::Silent {
            break;
        }
    }
    (sim.steps() - start) as f64 / sim.n() as f64
}

/// Runs `sim` until `stop` returns true (checked every `check_every` steps)
/// or `max_rounds` elapse. Returns the parallel time at which `stop` first
/// held, or `None` on timeout.
///
/// The predicate is evaluated on the simulator state, so it can inspect any
/// counts. `check_every = 0` is treated as 1.
pub fn run_until<S, F>(
    sim: &mut S,
    rng: &mut SimRng,
    max_rounds: f64,
    check_every: u64,
    mut stop: F,
) -> Option<f64>
where
    S: Simulator + ?Sized,
    F: FnMut(&S) -> bool,
{
    let check_every = check_every.max(1);
    let limit = sim.steps() + (max_rounds * sim.n() as f64).ceil() as u64;
    if stop(sim) {
        return Some(sim.time());
    }
    let mut next_check = sim.steps() + check_every;
    while sim.steps() < limit {
        let outcome = sim.step(rng);
        if sim.steps() >= next_check || outcome == StepOutcome::Silent {
            if stop(sim) {
                return Some(sim.time());
            }
            next_check = sim.steps() + check_every;
            if outcome == StepOutcome::Silent {
                return None;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::protocol::TableProtocol;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn run_rounds_advances_time() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[99, 1]);
        let mut rng = SimRng::seed_from(1);
        let ran = run_rounds(&mut pop, 3.0, &mut rng, &mut []);
        assert!((ran - 3.0).abs() < 0.02);
        assert_eq!(pop.steps(), 300);
    }

    #[test]
    fn run_until_detects_epidemic_completion() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[999, 1]);
        let mut rng = SimRng::seed_from(2);
        let t = run_until(&mut pop, &mut rng, 200.0, 16, |s| s.count(0) == 0)
            .expect("epidemic should finish");
        // One-way epidemic completes in Θ(log n) rounds; generous envelope.
        assert!(t > 1.0 && t < 100.0, "completion time {t}");
    }

    #[test]
    fn run_until_times_out() {
        let p = TableProtocol::new(2, "noop");
        let mut pop = Population::from_counts(&p, &[5, 5]);
        let mut rng = SimRng::seed_from(3);
        let t = run_until(&mut pop, &mut rng, 1.0, 1, |s| s.count(0) == 0);
        assert_eq!(t, None);
    }

    #[test]
    fn run_until_immediate_hit_costs_no_steps() {
        let p = epidemic();
        let mut pop = Population::from_counts(&p, &[0, 10]);
        let mut rng = SimRng::seed_from(4);
        let t = run_until(&mut pop, &mut rng, 10.0, 1, |s| s.count(0) == 0);
        assert_eq!(t, Some(0.0));
        assert_eq!(pop.steps(), 0);
    }
}
