//! Table-driven protocols over an enumerated state space.
//!
//! [`RuleTableProtocol`] is a pure-data [`Protocol`]: a list of rules, each
//! lowered to dense per-state match/successor tables over `q` enumerated
//! states. It is the execution form emitted by compilers that enumerate a
//! protocol's *reachable* states and intern them into dense ids (see
//! `pp-lang`'s `enumerate` backend) — the engine needs no knowledge of the
//! source formalism, only the tables.
//!
//! Scheduling follows the uniform-random-rule convention: each interaction
//! draws one rule index uniformly from the *original* rule count and fires
//! it when both sides match (and its probability coin comes up). Rules the
//! compiler proved can never fire ("dead" rules) are stripped from the
//! table list but keep their draw share as no-ops, so the outcome
//! distribution is exactly the unstripped protocol's while the per-draw
//! guard evaluation cost drops to a single bounds check.
//!
//! Because every rule is tabulated, the protocol also implements the two
//! batching hooks exactly: [`Protocol::is_reactive`] (no-op leaping) and
//! [`Protocol::outcome_table`] (collision-epoch binomial splits), so
//! enumerated protocols ride the fast count-backend paths.

use crate::protocol::Protocol;
use crate::rng::SimRng;

/// One rule lowered to dense per-state tables over `q` enumerated states.
#[derive(Debug, Clone)]
pub struct RuleTable {
    /// `match_a[s]`: the initiator guard holds in state `s`.
    pub match_a: Vec<bool>,
    /// `match_b[s]`: the responder guard holds in state `s`.
    pub match_b: Vec<bool>,
    /// `apply_a[s]`: the initiator's successor id (identity where unmatched).
    pub apply_a: Vec<u32>,
    /// `apply_b[s]`: the responder's successor id (identity where unmatched).
    pub apply_b: Vec<u32>,
    /// Firing probability once selected and matched (in `(0, 1]`).
    pub probability: f64,
}

/// Draw-slot sentinel: the slot belongs to a stripped dead rule and is
/// provably a no-op.
pub const NO_RULE: u32 = u32::MAX;

/// A protocol defined entirely by per-rule state tables.
///
/// The uniform rule draw goes through a slot map: each interaction picks
/// one of `total_rules()` slots uniformly, and the slot either points at a
/// lowered table or is a [`NO_RULE`] no-op. Several slots may share one
/// table — LCM thread composition replicates rules to equalize thread draw
/// shares, and replicating the (large, per-state) tables themselves would
/// multiply memory and lowering time for nothing.
#[derive(Debug, Clone)]
pub struct RuleTableProtocol {
    name: String,
    labels: Vec<String>,
    rules: Vec<RuleTable>,
    /// Uniform-draw slot map: `draw[i]` is an index into `rules`, or
    /// [`NO_RULE`] for a stripped dead rule's share.
    draw: Vec<u32>,
    /// `mult[r]`: how many draw slots point at rule `r`.
    mult: Vec<u32>,
    /// How many draw slots are [`NO_RULE`].
    noop_slots: usize,
}

impl RuleTableProtocol {
    /// Builds a table protocol with one draw slot per rule. `labels` names
    /// the `q` enumerated states; every table in `rules` must have length
    /// `q`. `total_rules` is the rule count *before* dead-rule stripping
    /// (the uniform-draw denominator); pass `rules.len()` when nothing was
    /// stripped.
    ///
    /// # Panics
    ///
    /// Panics if `total_rules < rules.len()`, `total_rules == 0`, any
    /// table length disagrees with `labels.len()`, or any successor id is
    /// out of range.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        labels: Vec<String>,
        rules: Vec<RuleTable>,
        total_rules: usize,
    ) -> Self {
        assert!(
            total_rules >= rules.len(),
            "total_rules excludes live rules"
        );
        let mut draw: Vec<u32> = (0..rules.len() as u32).collect();
        draw.resize(total_rules, NO_RULE);
        Self::with_draw(name, labels, rules, draw)
    }

    /// Builds a table protocol with an explicit draw-slot map, letting
    /// replicated rules (LCM thread composition) share one lowered table.
    ///
    /// # Panics
    ///
    /// Panics if `draw` is empty, any non-[`NO_RULE`] slot is out of range,
    /// any rule has no slot, any table length disagrees with
    /// `labels.len()`, or any successor id is out of range.
    #[must_use]
    pub fn with_draw(
        name: impl Into<String>,
        labels: Vec<String>,
        rules: Vec<RuleTable>,
        draw: Vec<u32>,
    ) -> Self {
        assert!(!draw.is_empty(), "a protocol needs at least one rule slot");
        let q = labels.len();
        for (i, r) in rules.iter().enumerate() {
            assert!(
                r.match_a.len() == q
                    && r.match_b.len() == q
                    && r.apply_a.len() == q
                    && r.apply_b.len() == q,
                "rule {i} tables must cover all {q} states"
            );
            assert!(
                r.apply_a
                    .iter()
                    .chain(&r.apply_b)
                    .all(|&t| (t as usize) < q),
                "rule {i} successor out of range"
            );
            assert!(
                r.probability > 0.0 && r.probability <= 1.0,
                "rule {i} probability must be in (0, 1]"
            );
        }
        let mut mult = vec![0u32; rules.len()];
        let mut noop_slots = 0usize;
        for &slot in &draw {
            if slot == NO_RULE {
                noop_slots += 1;
            } else {
                let r = slot as usize;
                assert!(r < rules.len(), "draw slot {slot} out of range");
                mult[r] += 1;
            }
        }
        assert!(
            mult.iter().all(|&m| m > 0),
            "every rule table needs at least one draw slot"
        );
        Self {
            name: name.into(),
            labels,
            rules,
            draw,
            mult,
            noop_slots,
        }
    }

    /// The live (unstripped) rule tables.
    #[must_use]
    pub fn rules(&self) -> &[RuleTable] {
        &self.rules
    }

    /// The uniform-draw denominator, including stripped dead rules.
    #[must_use]
    pub fn total_rules(&self) -> usize {
        self.draw.len()
    }

    /// How many draw slots belong to stripped dead rules (no-ops).
    #[must_use]
    pub fn stripped_rules(&self) -> usize {
        self.noop_slots
    }
}

impl Protocol for RuleTableProtocol {
    fn num_states(&self) -> usize {
        self.labels.len()
    }

    fn interact(&self, a: usize, b: usize, rng: &mut SimRng) -> (usize, usize) {
        let slot = self.draw[rng.index(self.draw.len())];
        if slot == NO_RULE {
            // A stripped dead rule was drawn: provably a no-op.
            return (a, b);
        }
        let rule = &self.rules[slot as usize];
        if rule.match_a[a]
            && rule.match_b[b]
            && (rule.probability >= 1.0 || rng.chance(rule.probability))
        {
            (rule.apply_a[a] as usize, rule.apply_b[b] as usize)
        } else {
            (a, b)
        }
    }

    fn is_reactive(&self, a: usize, b: usize) -> bool {
        self.rules.iter().any(|r| {
            r.match_a[a]
                && r.match_b[b]
                && (r.apply_a[a] as usize != a || r.apply_b[b] as usize != b)
        })
    }

    fn outcome_table(&self, a: usize, b: usize) -> Option<Vec<((usize, usize), f64)>> {
        let mut out: Vec<((usize, usize), f64)> = Vec::new();
        let per_slot = 1.0 / self.draw.len() as f64;
        let mut identity = self.noop_slots as f64 * per_slot;
        for (rule, &m) in self.rules.iter().zip(&self.mult) {
            let share = per_slot * f64::from(m);
            if rule.match_a[a] && rule.match_b[b] {
                let key = (rule.apply_a[a] as usize, rule.apply_b[b] as usize);
                push_outcome(&mut out, key, share * rule.probability);
                identity += share * (1.0 - rule.probability);
            } else {
                identity += share;
            }
        }
        if identity > 0.0 {
            push_outcome(&mut out, (a, b), identity);
        }
        Some(out)
    }

    fn state_label(&self, state: usize) -> String {
        self.labels[state].clone()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn push_outcome(out: &mut Vec<((usize, usize), f64)>, key: (usize, usize), p: f64) {
    if p <= 0.0 {
        return;
    }
    if let Some(entry) = out.iter_mut().find(|(k, _)| *k == key) {
        entry.1 += p;
    } else {
        out.push((key, p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two states, one live rule 0+1 -> 1+1, one stripped dead rule.
    fn epidemic_with_stripped_tail() -> RuleTableProtocol {
        let rule = RuleTable {
            match_a: vec![true, false],
            match_b: vec![false, true],
            apply_a: vec![1, 1],
            apply_b: vec![1, 1],
            probability: 1.0,
        };
        RuleTableProtocol::new(
            "epi",
            vec!["s".into(), "i".into()],
            vec![rule],
            2, // one dead rule stripped
        )
    }

    #[test]
    fn interact_follows_tables() {
        let p = epidemic_with_stripped_tail();
        let mut rng = SimRng::seed_from(1);
        let mut fired = 0u32;
        let mut noop = 0u32;
        for _ in 0..1000 {
            match p.interact(0, 1, &mut rng) {
                (1, 1) => fired += 1,
                (0, 1) => noop += 1,
                other => panic!("impossible outcome {other:?}"),
            }
        }
        // The stripped dead rule keeps half the draw mass as no-ops.
        assert!((300..700).contains(&fired), "fired {fired}");
        assert_eq!(fired + noop, 1000);
        // Unmatched pair never changes.
        assert_eq!(p.interact(1, 0, &mut rng), (1, 0));
    }

    #[test]
    fn outcome_table_matches_draw_shares() {
        let p = epidemic_with_stripped_tail();
        let table = p.outcome_table(0, 1).unwrap();
        let total: f64 = table.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let fire = table.iter().find(|&&(k, _)| k == (1, 1)).unwrap().1;
        let stay = table.iter().find(|&&(k, _)| k == (0, 1)).unwrap().1;
        assert!((fire - 0.5).abs() < 1e-12, "live rule share");
        assert!((stay - 0.5).abs() < 1e-12, "stripped dead-rule share");
    }

    #[test]
    fn reactivity_tracks_actual_change() {
        let p = epidemic_with_stripped_tail();
        assert!(p.is_reactive(0, 1));
        assert!(!p.is_reactive(1, 0), "unmatched order");
        assert!(!p.is_reactive(1, 1), "identity successor");
    }

    #[test]
    fn shared_draw_slots_weight_the_outcome_table() {
        // One table shared by 3 of 4 slots, one no-op slot: the rule's
        // outcome share must be 3/4 — exactly what LCM replication of the
        // same rule three times would produce with three separate tables.
        let rule = RuleTable {
            match_a: vec![true, false],
            match_b: vec![false, true],
            apply_a: vec![1, 1],
            apply_b: vec![1, 1],
            probability: 1.0,
        };
        let p = RuleTableProtocol::with_draw(
            "shared",
            vec!["s".into(), "i".into()],
            vec![rule],
            vec![0, 0, 0, NO_RULE],
        );
        assert_eq!(p.total_rules(), 4);
        assert_eq!(p.stripped_rules(), 1);
        let table = p.outcome_table(0, 1).unwrap();
        let fire = table.iter().find(|&&(k, _)| k == (1, 1)).unwrap().1;
        let stay = table.iter().find(|&&(k, _)| k == (0, 1)).unwrap().1;
        assert!((fire - 0.75).abs() < 1e-12, "3 of 4 slots fire");
        assert!((stay - 0.25).abs() < 1e-12, "the no-op slot stays");
        // The interactive draw follows the same shares.
        let mut rng = SimRng::seed_from(7);
        let fired = (0..4000)
            .filter(|_| p.interact(0, 1, &mut rng) == (1, 1))
            .count();
        assert!((2700..3300).contains(&fired), "fired {fired}");
    }

    #[test]
    fn labels_and_name_round_trip() {
        let p = epidemic_with_stripped_tail();
        assert_eq!(p.state_label(1), "i");
        assert_eq!(p.name(), "epi");
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.stripped_rules(), 1);
    }
}
