//! Observers: measurement instrumentation attached to simulation runs.
//!
//! Observers are invoked at *checkpoints*, not after every scheduler
//! activation: each observer declares via [`Observer::stride`] how many steps
//! may elapse before it next needs to look at the simulator, and the run loop
//! ([`crate::sim::run_rounds`]) sizes its `step_batch` calls to the smallest
//! pending stride. This keeps measurement granularity an observer-local
//! decision while letting the backends run tight batched inner loops between
//! callbacks. Observers deliberately receive the simulator as `&dyn` so one
//! observer implementation serves every backend.
//!
//! Because batches are bounded by the *minimum* stride across all attached
//! observers (and backends may overshoot a batch slightly, e.g. the matching
//! scheduler completes whole rounds), `observe` can be called earlier or
//! later than the declared stride; implementations must re-check their own
//! schedule, as all the built-in observers do.

use crate::json::Json;
use crate::sim::Simulator;
use crate::snapshot::{hex_u64, parse_hex_u64};

/// Receives checkpoint callbacks during a simulation run.
pub trait Observer {
    /// Called at each batch boundary with the current step count and
    /// simulator. May be called more often than [`Observer::stride`]
    /// requests (another observer's stride can be smaller), so
    /// implementations guard with their own schedule.
    fn observe(&mut self, steps: u64, sim: &dyn Simulator);

    /// Maximum number of further steps the run loop may execute before this
    /// observer needs its next [`Observer::observe`] call.
    ///
    /// Defaults to one parallel round (`n` steps). Return `u64::MAX` when
    /// the observer no longer needs callbacks (the run loop clamps to the
    /// remaining budget).
    fn stride(&self, steps: u64, sim: &dyn Simulator) -> u64 {
        let _ = steps;
        sim.n().max(1)
    }
}

/// Records the counts of selected states on a fixed parallel-time grid.
///
/// # Examples
///
/// ```
/// use pp_engine::observe::{Observer, TraceRecorder};
/// use pp_engine::population::Population;
/// use pp_engine::protocol::TableProtocol;
/// use pp_engine::rng::SimRng;
/// use pp_engine::sim::{run_rounds, Simulator};
///
/// let p = TableProtocol::new(2, "epidemic").rule(1, 0, 1, 1).rule(0, 1, 1, 1);
/// let mut pop = Population::from_counts(&p, &[99, 1]);
/// let mut trace = TraceRecorder::new(vec![1], 1.0);
/// let mut rng = SimRng::seed_from(0);
/// run_rounds(&mut pop, 20.0, &mut rng, &mut [&mut trace]);
/// assert!(trace.rows().len() >= 20);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    states: Vec<usize>,
    /// Sampling interval in rounds.
    every_rounds: f64,
    next_step: u64,
    rows: Vec<(f64, Vec<u64>)>,
}

impl TraceRecorder {
    /// Records the counts of `states` every `every_rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `every_rounds <= 0`.
    #[must_use]
    pub fn new(states: Vec<usize>, every_rounds: f64) -> Self {
        assert!(every_rounds > 0.0);
        Self {
            states,
            every_rounds,
            next_step: 0,
            rows: Vec::new(),
        }
    }

    /// The recorded rows as `(parallel_time, counts)` pairs.
    #[must_use]
    pub fn rows(&self) -> &[(f64, Vec<u64>)] {
        &self.rows
    }

    /// Extracts the time series of the `i`-th tracked state.
    #[must_use]
    pub fn series(&self, i: usize) -> Vec<(f64, u64)> {
        self.rows.iter().map(|(t, c)| (*t, c[i])).collect()
    }

    /// Serializes the recorder's resumable position: the next sampling step
    /// and the rows recorded so far. Together with the same constructor
    /// arguments, [`TraceRecorder::restore_position`] reproduces the exact
    /// sampling grid of an uninterrupted run.
    #[must_use]
    pub fn position_json(&self) -> Json {
        Json::obj([
            ("next_step", hex_u64(self.next_step)),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(t, c)| {
                            Json::Arr(vec![
                                Json::from(*t),
                                Json::Arr(c.iter().map(|&v| hex_u64(v)).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Restores a position captured by [`TraceRecorder::position_json`] into
    /// a recorder built with the same constructor arguments.
    ///
    /// # Errors
    ///
    /// Returns a message when the position payload is malformed.
    pub fn restore_position(&mut self, position: &Json) -> Result<(), String> {
        let next_step = parse_hex_u64(position.get("next_step").unwrap_or(&Json::Null))?;
        let rows_arr = position
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("trace position missing rows")?;
        let mut rows = Vec::with_capacity(rows_arr.len());
        for r in rows_arr {
            let pair = r.as_arr().filter(|p| p.len() == 2).ok_or("bad trace row")?;
            let t = pair[0].as_f64().ok_or("trace row time is not a number")?;
            let counts_arr = pair[1].as_arr().ok_or("trace row missing counts")?;
            let mut counts = Vec::with_capacity(counts_arr.len());
            for c in counts_arr {
                counts.push(parse_hex_u64(c)?);
            }
            rows.push((t, counts));
        }
        self.next_step = next_step;
        self.rows = rows;
        Ok(())
    }
}

impl Observer for TraceRecorder {
    fn observe(&mut self, steps: u64, sim: &dyn Simulator) {
        if steps < self.next_step {
            return;
        }
        let counts = self.states.iter().map(|&s| sim.count(s)).collect();
        self.rows.push((sim.time(), counts));
        let stride = (self.every_rounds * sim.n() as f64).max(1.0) as u64;
        self.next_step = steps + stride;
    }

    fn stride(&self, steps: u64, _sim: &dyn Simulator) -> u64 {
        self.next_step.saturating_sub(steps).max(1)
    }
}

/// Detects when a predicate over the counts has held continuously for a
/// window of parallel time, and records the time it *first started* holding.
///
/// This is the practical proxy for "convergence" in population protocols:
/// the output condition holds and keeps holding. (As the paper notes,
/// convergence is not locally detectable by the agents themselves; the
/// detector is an omniscient-observer construct.)
pub struct ConvergenceDetector<F> {
    predicate: F,
    window_rounds: f64,
    /// Step at which the predicate most recently started to hold.
    hold_start: Option<(u64, f64)>,
    converged_at: Option<f64>,
    check_stride: u64,
    next_check: u64,
}

impl<F: FnMut(&dyn Simulator) -> bool> ConvergenceDetector<F> {
    /// Creates a detector requiring `predicate` to hold for `window_rounds`
    /// consecutive rounds; the predicate is evaluated every `check_stride`
    /// steps (0 means every step).
    #[must_use]
    pub fn new(predicate: F, window_rounds: f64, check_stride: u64) -> Self {
        Self {
            predicate,
            window_rounds,
            hold_start: None,
            converged_at: None,
            check_stride: check_stride.max(1),
            next_check: 0,
        }
    }

    /// The parallel time at which the currently-holding streak began, if the
    /// predicate has held for at least the window.
    #[must_use]
    pub fn converged_at(&self) -> Option<f64> {
        self.converged_at
    }

    /// Whether convergence (predicate holding for the full window) has been
    /// confirmed.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

impl<F: FnMut(&dyn Simulator) -> bool> Observer for ConvergenceDetector<F> {
    fn observe(&mut self, steps: u64, sim: &dyn Simulator) {
        if steps < self.next_check || self.converged_at.is_some() {
            return;
        }
        self.next_check = steps + self.check_stride;
        if (self.predicate)(sim) {
            let (start_step, start_time) = *self.hold_start.get_or_insert((steps, sim.time()));
            let held_rounds = (steps - start_step) as f64 / sim.n() as f64;
            if held_rounds >= self.window_rounds {
                self.converged_at = Some(start_time);
            }
        } else {
            self.hold_start = None;
        }
    }

    fn stride(&self, steps: u64, _sim: &dyn Simulator) -> u64 {
        if self.converged_at.is_some() {
            u64::MAX
        } else {
            self.next_check.saturating_sub(steps).max(1)
        }
    }
}

/// Tracks how long the configuration has been unchanged (*silence* proxy).
///
/// A protocol is silent when no agent will ever change state again. True
/// silence is only decidable with reactivity information (see
/// [`crate::accel::AcceleratedPopulation`]); this observer instead reports
/// the last time the count vector changed, a useful empirical proxy.
#[derive(Debug, Clone, Default)]
pub struct LastChangeTracker {
    last_counts: Option<Vec<u64>>,
    last_change_time: f64,
    /// Steps between count snapshots; 0 means one parallel round.
    check_stride: u64,
}

impl LastChangeTracker {
    /// Creates a tracker that snapshots the counts once per parallel round.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker that snapshots the counts every `check_stride`
    /// steps (0 means once per parallel round). Finer strides sharpen the
    /// last-change estimate at the cost of more `counts()` snapshots.
    #[must_use]
    pub fn with_stride(check_stride: u64) -> Self {
        Self {
            check_stride,
            ..Self::default()
        }
    }

    /// Parallel time of the most recent observed count change.
    #[must_use]
    pub fn last_change_time(&self) -> f64 {
        self.last_change_time
    }
}

impl Observer for LastChangeTracker {
    /// Compares the current counts against the previous snapshot in place,
    /// reusing the snapshot buffer — no allocation after the first call, so
    /// fine strides stay cheap even with large state spaces.
    fn observe(&mut self, _steps: u64, sim: &dyn Simulator) {
        let k = sim.num_states();
        match &mut self.last_counts {
            Some(prev) if prev.len() == k => {
                let mut changed = false;
                for (s, slot) in prev.iter_mut().enumerate() {
                    let c = sim.count(s);
                    if *slot != c {
                        *slot = c;
                        changed = true;
                    }
                }
                if changed {
                    self.last_change_time = sim.time();
                }
            }
            _ => {
                let prev = self.last_counts.get_or_insert_with(Vec::new);
                prev.clear();
                prev.extend((0..k).map(|s| sim.count(s)));
                self.last_change_time = sim.time();
            }
        }
    }

    fn stride(&self, _steps: u64, sim: &dyn Simulator) -> u64 {
        if self.check_stride == 0 {
            sim.n().max(1)
        } else {
            self.check_stride
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;
    use crate::protocol::TableProtocol;
    use crate::rng::SimRng;
    use crate::sim::run_rounds;

    fn epidemic() -> TableProtocol {
        TableProtocol::new(2, "epidemic")
            .rule(1, 0, 1, 1)
            .rule(0, 1, 1, 1)
    }

    #[test]
    fn trace_recorder_samples_on_grid() {
        let mut pop = Population::from_counts(epidemic(), &[63, 1]);
        let mut trace = TraceRecorder::new(vec![0, 1], 2.0);
        let mut rng = SimRng::seed_from(1);
        run_rounds(&mut pop, 10.0, &mut rng, &mut [&mut trace]);
        let rows = trace.rows();
        assert!(rows.len() >= 5, "rows {}", rows.len());
        for w in rows.windows(2) {
            assert!(w[1].0 > w[0].0, "times increase");
        }
        // Total count per row equals n.
        for (_, c) in rows {
            assert_eq!(c.iter().sum::<u64>(), 64);
        }
    }

    #[test]
    fn convergence_detector_reports_onset_time() {
        let mut pop = Population::from_counts(epidemic(), &[255, 1]);
        let mut det = ConvergenceDetector::new(|s: &dyn Simulator| s.count(0) == 0, 3.0, 1);
        let mut rng = SimRng::seed_from(2);
        run_rounds(&mut pop, 100.0, &mut rng, &mut [&mut det]);
        let t = det.converged_at().expect("epidemic converged");
        assert!(t > 0.0 && t < 60.0, "onset {t}");
    }

    #[test]
    fn convergence_detector_resets_on_violation() {
        // Predicate which can never hold for the window because it keeps
        // being violated: count(0) is even.
        let mut pop = Population::from_counts(epidemic(), &[100, 1]);
        let mut det =
            ConvergenceDetector::new(|s: &dyn Simulator| s.count(0).is_multiple_of(2), 1000.0, 1);
        let mut rng = SimRng::seed_from(3);
        run_rounds(&mut pop, 5.0, &mut rng, &mut [&mut det]);
        assert!(!det.is_converged());
    }

    #[test]
    fn last_change_tracker_freezes_after_epidemic() {
        let mut pop = Population::from_counts(epidemic(), &[31, 1]);
        let mut tracker = LastChangeTracker::new();
        let mut rng = SimRng::seed_from(4);
        run_rounds(&mut pop, 200.0, &mut rng, &mut [&mut tracker]);
        assert_eq!(pop.count(0), 0);
        assert!(
            tracker.last_change_time() < 100.0,
            "no changes after completion: {}",
            tracker.last_change_time()
        );
    }
}
