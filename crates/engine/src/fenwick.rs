//! Fenwick (binary indexed) tree over `u64` weights with logarithmic-time
//! weighted sampling.
//!
//! The count-based simulator keeps one weight per protocol state (the number
//! of agents in that state) and must repeatedly (a) sample a state with
//! probability proportional to its count and (b) apply ±1 updates as agents
//! transition. A Fenwick tree supports both in `O(log k)` for `k` states,
//! which keeps even clock-hierarchy state spaces (tens of thousands of
//! composite states) cheap.
//!
//! # Examples
//!
//! ```
//! use pp_engine::fenwick::Fenwick;
//!
//! let mut f = Fenwick::from_weights(&[2, 0, 3]);
//! assert_eq!(f.total(), 5);
//! assert_eq!(f.find(0), 0); // prefix ranks 0,1 → state 0
//! assert_eq!(f.find(2), 2); // ranks 2,3,4 → state 2
//! f.add(1, 4);
//! assert_eq!(f.get(1), 4);
//! ```

/// A Fenwick tree over non-negative `u64` weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fenwick {
    /// 1-indexed partial sums; `tree[0]` unused.
    tree: Vec<u64>,
    len: usize,
    total: u64,
}

impl Fenwick {
    /// Creates a tree of `len` zero weights.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            tree: vec![0; len + 1],
            len,
            total: 0,
        }
    }

    /// Builds a tree from initial weights in `O(len)`.
    #[must_use]
    pub fn from_weights(weights: &[u64]) -> Self {
        crate::metrics::add(crate::metrics::Counter::FenwickRebuilds, 1);
        let _span = crate::prof::section(crate::prof::Section::FenwickRebuild);
        let len = weights.len();
        let mut tree = vec![0u64; len + 1];
        let mut total = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            total += w;
            let pos = i + 1;
            tree[pos] += w;
            let parent = pos + (pos & pos.wrapping_neg());
            if parent <= len {
                let carried = tree[pos];
                tree[parent] += carried;
            }
        }
        Self { tree, len, total }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree has zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds signed `delta` to slot `i`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slot would go negative, and always if
    /// `i` is out of bounds.
    pub fn add(&mut self, i: usize, delta: i64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        debug_assert!(
            delta >= 0 || self.get(i) >= delta.unsigned_abs(),
            "slot {i} would go negative"
        );
        self.total = (self.total as i64 + delta) as u64;
        let mut pos = i + 1;
        while pos <= self.len {
            self.tree[pos] = (self.tree[pos] as i64 + delta) as u64;
            pos += pos & pos.wrapping_neg();
        }
    }

    /// Returns the weight at slot `i` in `O(log len)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        self.prefix(i + 1) - self.prefix(i)
    }

    /// Sum of weights in slots `0..i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > len`.
    #[must_use]
    pub fn prefix(&self, i: usize) -> u64 {
        assert!(i <= self.len);
        let mut pos = i;
        let mut sum = 0;
        while pos > 0 {
            sum += self.tree[pos];
            pos -= pos & pos.wrapping_neg();
        }
        sum
    }

    /// Finds the slot containing cumulative rank `r`: the smallest `i` with
    /// `prefix(i + 1) > r`. This maps a uniform rank in `0..total()` to a
    /// weighted sample.
    ///
    /// # Panics
    ///
    /// Panics if `r >= total()`.
    #[must_use]
    pub fn find(&self, mut r: u64) -> usize {
        assert!(r < self.total, "rank {r} >= total {}", self.total);
        let mut pos = 0usize;
        // Highest power of two ≤ len.
        let mut step = if self.len == 0 {
            0
        } else {
            1usize << (usize::BITS - 1 - self.len.leading_zeros())
        };
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= r {
                r -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        pos
    }

    /// Copies all weights out into a vector (for reporting).
    #[must_use]
    pub fn to_weights(&self) -> Vec<u64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn from_weights_matches_incremental() {
        let w = [5u64, 0, 3, 7, 1, 0, 2];
        let built = Fenwick::from_weights(&w);
        let mut inc = Fenwick::new(w.len());
        for (i, &x) in w.iter().enumerate() {
            inc.add(i, x as i64);
        }
        assert_eq!(built, inc);
        assert_eq!(built.to_weights(), w.to_vec());
    }

    #[test]
    fn prefix_sums_are_correct() {
        let w = [1u64, 2, 3, 4, 5];
        let f = Fenwick::from_weights(&w);
        let mut acc = 0;
        for i in 0..=w.len() {
            assert_eq!(f.prefix(i), acc);
            if i < w.len() {
                acc += w[i];
            }
        }
    }

    #[test]
    fn find_maps_every_rank() {
        let w = [2u64, 0, 3, 1];
        let f = Fenwick::from_weights(&w);
        let expect = [0, 0, 2, 2, 2, 3];
        for (r, &e) in expect.iter().enumerate() {
            assert_eq!(f.find(r as u64), e, "rank {r}");
        }
    }

    #[test]
    #[should_panic(expected = ">= total")]
    fn find_rejects_out_of_range_rank() {
        let f = Fenwick::from_weights(&[1, 1]);
        let _ = f.find(2);
    }

    #[test]
    fn add_and_remove_roundtrip() {
        let mut f = Fenwick::new(10);
        f.add(3, 5);
        f.add(7, 2);
        f.add(3, -5);
        assert_eq!(f.get(3), 0);
        assert_eq!(f.get(7), 2);
        assert_eq!(f.total(), 2);
    }

    #[test]
    fn sampling_is_proportional_to_weights() {
        let w = [10u64, 30, 0, 60];
        let f = Fenwick::from_weights(&w);
        let mut rng = SimRng::seed_from(7);
        let mut hits = [0u32; 4];
        let trials = 50_000;
        for _ in 0..trials {
            hits[f.find(rng.below(f.total()))] += 1;
        }
        assert_eq!(hits[2], 0);
        for (i, &target) in [0.1, 0.3, 0.0, 0.6].iter().enumerate() {
            let rate = hits[i] as f64 / trials as f64;
            assert!((rate - target).abs() < 0.02, "state {i} rate {rate}");
        }
    }

    #[test]
    fn single_slot_tree() {
        let f = Fenwick::from_weights(&[4]);
        for r in 0..4 {
            assert_eq!(f.find(r), 0);
        }
    }

    #[test]
    fn large_random_tree_agrees_with_naive() {
        let mut rng = SimRng::seed_from(100);
        let w: Vec<u64> = (0..257).map(|_| rng.below(10)).collect();
        let f = Fenwick::from_weights(&w);
        // Naive check of find() against linear scan for 200 random ranks.
        for _ in 0..200 {
            if f.total() == 0 {
                break;
            }
            let r = rng.below(f.total());
            let mut acc = 0;
            let mut expect = 0;
            for (i, &x) in w.iter().enumerate() {
                if r < acc + x {
                    expect = i;
                    break;
                }
                acc += x;
            }
            assert_eq!(f.find(r), expect);
        }
    }
}
