//! Parallel parameter sweeps: run many independent simulation tasks across
//! worker threads and collect their results in input order.
//!
//! Every experiment in the harness is of the form "for each (n, parameter,
//! seed) run a simulation and extract a number". Tasks are embarrassingly
//! parallel; this module distributes them over scoped threads pulling from an
//! atomic ticket counter, so stragglers don't serialize the sweep. Each task
//! writes its result directly into its own pre-allocated output slot — there
//! is no shared lock, so short tasks never contend with long ones on result
//! collection.

use crate::json::Json;
use crate::metrics::{self, Counter, Hist};
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Resolves a requested worker count: 0 selects the OS-reported available
/// parallelism, and the result never exceeds the task count (in particular,
/// zero tasks spawn zero workers).
fn resolve_workers(workers: usize, count: usize) -> usize {
    if count == 0 {
        return 0;
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    };
    workers.min(count)
}

/// Per-index output slots written concurrently, one writer per slot.
///
/// Safety contract: callers must ensure no two threads write the same index
/// and that all writes happen-before the final drain (both are guaranteed by
/// the ticket counter in [`run_indexed`] plus thread join).
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: slots are only accessed mutably through disjoint indices handed out
// exactly once by an atomic fetch_add, and the vector is only drained after
// every worker has been joined.
unsafe impl<T: Send> Sync for Slots<T> {}

/// Runs `tasks(i)` for every `i` in `0..count` across `workers` threads and
/// returns the results in index order.
///
/// The task closure must be `Sync` because multiple workers call it
/// concurrently (on distinct indices). Worker count 0 selects the available
/// parallelism reported by the OS.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::run_indexed;
///
/// let squares = run_indexed(8, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Propagates panics from task closures.
pub fn run_indexed<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers, count);

    let slots = Slots((0..count).map(|_| UnsafeCell::new(None)).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Capture a reference to the whole `Slots` wrapper (not its field) so
        // the closure's Send bound goes through the wrapper's Sync impl.
        let slots = &slots;
        let next = &next;
        let task = &task;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = task(i);
                // SAFETY: index `i` was claimed exactly once by fetch_add, so
                // this thread is the unique writer of slot `i`.
                unsafe {
                    *slots.0[i].get() = Some(value);
                }
            });
        }
    });

    slots
        .0
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("every slot is written before workers join")
        })
        .collect()
}

/// Wall-clock summary of one profiled sweep: per-task durations plus
/// worker-utilization aggregates.
#[derive(Debug, Clone)]
pub struct SweepProfile {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker threads actually used (after resolving worker count 0).
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Wall-clock seconds of each task, in index order.
    pub task_s: Vec<f64>,
}

impl SweepProfile {
    /// Sum of all task durations (total useful work).
    #[must_use]
    pub fn total_task_s(&self) -> f64 {
        self.task_s.iter().sum()
    }

    /// Duration of the slowest task — the lower bound on sweep wall-clock.
    #[must_use]
    pub fn max_task_s(&self) -> f64 {
        self.task_s.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of worker·wall-clock capacity spent inside tasks, in
    /// `[0, 1]` up to timer noise. Low utilization with many workers means
    /// stragglers or too few tasks.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.wall_s;
        if capacity <= 0.0 {
            0.0
        } else {
            self.total_task_s() / capacity
        }
    }

    /// Renders the summary (not the per-task list) as a JSON object, for
    /// embedding in run traces and metrics snapshots.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tasks", Json::from(self.tasks)),
            ("workers", Json::from(self.workers)),
            ("wall_s", Json::from(self.wall_s)),
            ("total_task_s", Json::from(self.total_task_s())),
            ("max_task_s", Json::from(self.max_task_s())),
            ("utilization", Json::from(self.utilization())),
        ])
    }
}

/// Like [`run_indexed`], but additionally measures per-task wall-clock and
/// returns a [`SweepProfile`]. When the global [`crate::metrics`] registry
/// is enabled, each task also bumps the `sweep_tasks` counter and feeds the
/// `sweep_task_micros` histogram.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::run_indexed_profiled;
///
/// let (squares, profile) = run_indexed_profiled(4, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// assert_eq!(profile.tasks, 4);
/// assert_eq!(profile.task_s.len(), 4);
/// assert!(profile.wall_s >= profile.max_task_s());
/// ```
///
/// # Panics
///
/// Propagates panics from task closures.
pub fn run_indexed_profiled<T, F>(count: usize, workers: usize, task: F) -> (Vec<T>, SweepProfile)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers, count);
    let start = Instant::now();
    let timed = run_indexed(count, workers, |i| {
        let t0 = Instant::now();
        let value = task(i);
        let dur = t0.elapsed();
        metrics::add(Counter::SweepTasks, 1);
        metrics::observe(Hist::SweepTaskMicros, dur.as_micros() as u64);
        (value, dur.as_secs_f64())
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut values = Vec::with_capacity(count);
    let mut task_s = Vec::with_capacity(count);
    for (v, s) in timed {
        values.push(v);
        task_s.push(s);
    }
    (
        values,
        SweepProfile {
            tasks: count,
            workers,
            wall_s,
            task_s,
        },
    )
}

/// Convenience wrapper: maps `task` over a slice of configurations in
/// parallel, preserving order.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::map_configs;
///
/// let ns = [16u64, 32, 64];
/// let doubled = map_configs(&ns, 0, |&n| n * 2);
/// assert_eq!(doubled, vec![32, 64, 128]);
/// ```
pub fn map_configs<C, T, F>(configs: &[C], workers: usize, task: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_indexed(configs.len(), workers, |i| task(&configs[i]))
}

/// Outcome of one task slot in a resilient sweep ([`run_indexed_resilient`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskResult<T> {
    /// The task produced a value (possibly after retries).
    Ok(T),
    /// Every attempt panicked; carries the last panic payload rendered as
    /// text.
    Panicked(String),
    /// Every attempt overran its deadline.
    TimedOut,
}

impl<T> TaskResult<T> {
    /// Whether this slot holds a value.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, TaskResult::Ok(_))
    }

    /// The value, if this slot holds one.
    #[must_use]
    pub fn value(&self) -> Option<&T> {
        match self {
            TaskResult::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes the result, returning the value if this slot holds one.
    #[must_use]
    pub fn into_value(self) -> Option<T> {
        match self {
            TaskResult::Ok(v) => Some(v),
            _ => None,
        }
    }
}

/// One captured failure (a panic or a deadline overrun) during a resilient
/// sweep. Retried-and-recovered attempts leave incidents too, so the log
/// shows flakiness even when every slot ends up `Ok`.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Task index the failure belongs to.
    pub index: usize,
    /// Zero-based attempt number that failed.
    pub attempt: u32,
    /// `"panic"` or `"timeout"`.
    pub cause: &'static str,
    /// The panic message, or a description of the deadline overrun.
    pub detail: String,
    /// Wall-clock seconds the attempt ran before failing.
    pub elapsed_s: f64,
}

impl Incident {
    /// Renders the incident as a JSON object (one JSONL row).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::from("sweep_incident")),
            ("index", Json::from(self.index)),
            ("attempt", Json::from(u64::from(self.attempt))),
            ("cause", Json::from(self.cause)),
            ("detail", Json::from(self.detail.as_str())),
            ("elapsed_s", Json::from(self.elapsed_s)),
        ])
    }
}

/// Renders an incident log as JSON Lines (empty string for no incidents).
#[must_use]
pub fn incidents_to_jsonl(incidents: &[Incident]) -> String {
    let rows: Vec<Json> = incidents.iter().map(Incident::to_json).collect();
    crate::json::to_jsonl(&rows)
}

/// Failure-handling policy for [`run_indexed_resilient`].
#[derive(Debug, Clone, Copy)]
pub struct ResiliencePolicy {
    /// Wall-clock budget per attempt; an attempt still running at the
    /// deadline is abandoned and counted as a timeout.
    pub deadline: Duration,
    /// How many times a failed (panicked or timed-out) task is retried. The
    /// total attempt count is `1 + retries`.
    pub retries: u32,
}

impl Default for ResiliencePolicy {
    /// 60-second deadline, one retry.
    fn default() -> Self {
        Self {
            deadline: Duration::from_secs(60),
            retries: 1,
        }
    }
}

/// Renders a panic payload (as produced by [`catch_unwind`]) as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_indexed`], but failures are contained instead of propagated:
/// a panicking task is caught, a hanging task is abandoned at its deadline,
/// and both are retried under `policy` with the attempt number passed to the
/// closure (so tasks can reseed). Slots whose every attempt failed come back
/// as [`TaskResult::Panicked`] / [`TaskResult::TimedOut`] while all other
/// slots hold their values; the incident log records every failed attempt.
///
/// Each attempt runs on its own *detached* thread so the sweep can walk away
/// from a hang; an abandoned attempt's thread keeps running to completion in
/// the background (it cannot be killed safely), which is why `task` must be
/// `'static` and is shared by `Arc` rather than borrowed. Abandoned attempts
/// still burn a CPU until they finish — acceptable for a harness whose
/// alternative is deadlocking the whole sweep.
///
/// When the global [`crate::metrics`] registry is enabled, failures bump the
/// `sweep_panics` / `sweep_timeouts` counters and every extra attempt bumps
/// `sweep_retries`.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::{run_indexed_resilient, ResiliencePolicy, TaskResult};
///
/// let policy = ResiliencePolicy { retries: 0, ..ResiliencePolicy::default() };
/// let (results, incidents) = run_indexed_resilient(4, 2, policy, |i, _attempt| {
///     assert!(i != 2, "task 2 is broken");
///     i * 10
/// });
/// assert_eq!(results[0], TaskResult::Ok(0));
/// assert!(matches!(results[2], TaskResult::Panicked(_)));
/// assert_eq!(incidents.len(), 1);
/// assert_eq!(incidents[0].index, 2);
/// ```
pub fn run_indexed_resilient<T, F>(
    count: usize,
    workers: usize,
    policy: ResiliencePolicy,
    task: F,
) -> (Vec<TaskResult<T>>, Vec<Incident>)
where
    T: Send + 'static,
    F: Fn(usize, u32) -> T + Send + Sync + 'static,
{
    let workers = resolve_workers(workers, count);
    let task = Arc::new(task);
    let slots = Slots((0..count).map(|_| UnsafeCell::new(None)).collect());
    let next = AtomicUsize::new(0);
    let incidents = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let slots = &slots;
        let next = &next;
        let incidents = &incidents;
        let task = &task;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = attempt_with_policy(task, i, policy, incidents);
                // SAFETY: index `i` was claimed exactly once by fetch_add, so
                // this thread is the unique writer of slot `i`.
                unsafe {
                    *slots.0[i].get() = Some(result);
                }
            });
        }
    });

    let results = slots
        .0
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("every claimed slot is written before workers join")
        })
        .collect();
    (
        results,
        incidents.into_inner().unwrap_or_else(|e| e.into_inner()),
    )
}

/// Runs all attempts of task `i` under `policy`; records failed attempts.
fn attempt_with_policy<T, F>(
    task: &Arc<F>,
    i: usize,
    policy: ResiliencePolicy,
    incidents: &Mutex<Vec<Incident>>,
) -> TaskResult<T>
where
    T: Send + 'static,
    F: Fn(usize, u32) -> T + Send + Sync + 'static,
{
    // Panic payload of the most recent attempt; `None` means it timed out.
    let mut last_failure: Option<String> = None;
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            metrics::add(Counter::SweepRetries, 1);
        }
        let (tx, rx) = mpsc::channel();
        let task = Arc::clone(task);
        let t0 = Instant::now();
        // Detached on purpose: a hung attempt must not block the sweep, and
        // scoped threads cannot be abandoned. The channel send fails
        // harmlessly if the receiver has already given up.
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| task(i, attempt)));
            let _ = tx.send(outcome);
        });
        match rx.recv_timeout(policy.deadline) {
            Ok(Ok(value)) => return TaskResult::Ok(value),
            Ok(Err(payload)) => {
                let detail = panic_message(payload.as_ref());
                metrics::add(Counter::SweepPanics, 1);
                incidents
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Incident {
                        index: i,
                        attempt,
                        cause: "panic",
                        detail: detail.clone(),
                        elapsed_s: t0.elapsed().as_secs_f64(),
                    });
                last_failure = Some(detail);
            }
            Err(_) => {
                last_failure = None;
                metrics::add(Counter::SweepTimeouts, 1);
                incidents
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Incident {
                        index: i,
                        attempt,
                        cause: "timeout",
                        detail: format!(
                            "attempt exceeded {:.3}s deadline",
                            policy.deadline.as_secs_f64()
                        ),
                        elapsed_s: t0.elapsed().as_secs_f64(),
                    });
            }
        }
    }
    match last_failure {
        Some(detail) => TaskResult::Panicked(detail),
        None => TaskResult::TimedOut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn results_in_input_order() {
        let out = run_indexed(100, 4, |i| i as u64 * 3);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = run_indexed(20, 1, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        let par = run_indexed(20, 4, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        assert_eq!(seq, par, "per-task seeding makes sweeps deterministic");
    }

    #[test]
    fn auto_worker_count() {
        let out = run_indexed(10, 0, |i| i + 1);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn map_configs_passes_references() {
        let configs = vec![(2u64, 3u64), (4, 5)];
        let out = map_configs(&configs, 2, |&(a, b)| a * b);
        assert_eq!(out, vec![6, 20]);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed(3, 16, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn profiled_sweep_reports_consistent_summary() {
        let (out, profile) = run_indexed_profiled(6, 2, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(profile.tasks, 6);
        assert_eq!(profile.workers, 2);
        assert_eq!(profile.task_s.len(), 6);
        assert!(profile.task_s.iter().all(|&s| s > 0.0));
        assert!(profile.wall_s + 1e-3 >= profile.max_task_s());
        assert!(profile.total_task_s() >= profile.max_task_s());
        let u = profile.utilization();
        assert!((0.0..=1.5).contains(&u), "utilization {u}");
        let j = profile.to_json();
        assert_eq!(j.get("tasks").and_then(crate::json::Json::as_u64), Some(6));
        assert!(j.get("utilization").is_some());
    }

    #[test]
    fn zero_tasks_resolve_to_zero_workers() {
        assert_eq!(resolve_workers(4, 0), 0, "no tasks, no workers");
        assert_eq!(resolve_workers(0, 0), 0, "auto workers over no tasks");
        assert_eq!(resolve_workers(4, 2), 2);
        assert_eq!(resolve_workers(2, 4), 2);
        assert!(resolve_workers(0, 100) >= 1, "auto resolves to at least 1");
    }

    fn fast_policy(retries: u32) -> ResiliencePolicy {
        ResiliencePolicy {
            deadline: Duration::from_millis(200),
            retries,
        }
    }

    #[test]
    fn resilient_sweep_contains_panics() {
        let (results, incidents) = run_indexed_resilient(6, 3, fast_policy(0), |i, _| {
            assert!(i % 3 != 1, "synthetic failure at index {i}");
            i * 2
        });
        for (i, r) in results.iter().enumerate() {
            if i % 3 == 1 {
                match r {
                    TaskResult::Panicked(msg) => {
                        assert!(msg.contains("synthetic failure"), "{msg}");
                    }
                    other => panic!("expected panic slot, got {other:?}"),
                }
            } else {
                assert_eq!(r, &TaskResult::Ok(i * 2), "healthy slot {i}");
            }
        }
        assert_eq!(incidents.len(), 2);
        assert!(incidents.iter().all(|inc| inc.cause == "panic"));
    }

    #[test]
    fn resilient_sweep_abandons_hung_tasks() {
        let (results, incidents) = run_indexed_resilient(4, 2, fast_policy(0), |i, _| {
            if i == 2 {
                // Hang far past the deadline; the sweep must walk away.
                std::thread::sleep(Duration::from_secs(30));
            }
            i
        });
        assert_eq!(results[0], TaskResult::Ok(0));
        assert_eq!(results[1], TaskResult::Ok(1));
        assert_eq!(results[2], TaskResult::TimedOut);
        assert_eq!(results[3], TaskResult::Ok(3));
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].cause, "timeout");
        assert_eq!(incidents[0].index, 2);
    }

    #[test]
    fn resilient_sweep_retries_with_fresh_attempt_number() {
        // Fails on attempt 0, succeeds on attempt 1 — the retry-and-reseed
        // path. The incident log still shows the first failure.
        let (results, incidents) = run_indexed_resilient(3, 2, fast_policy(1), |i, attempt| {
            assert!(!(i == 1 && attempt == 0), "flaky first attempt");
            (i, attempt)
        });
        assert_eq!(results[0], TaskResult::Ok((0, 0)));
        assert_eq!(results[1], TaskResult::Ok((1, 1)), "recovered on retry");
        assert_eq!(results[2], TaskResult::Ok((2, 0)));
        assert_eq!(incidents.len(), 1);
        assert_eq!((incidents[0].index, incidents[0].attempt), (1, 0));
    }

    #[test]
    fn resilient_incidents_render_as_jsonl() {
        let (_, incidents) =
            run_indexed_resilient(2, 1, fast_policy(0), |i, _| -> u32 { panic!("boom {i}") });
        assert_eq!(incidents.len(), 2);
        let text = incidents_to_jsonl(&incidents);
        let rows = crate::json::parse_jsonl(&text).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.get("kind").and_then(Json::as_str),
                Some("sweep_incident")
            );
            assert_eq!(row.get("cause").and_then(Json::as_str), Some("panic"));
            assert!(row
                .get("detail")
                .and_then(Json::as_str)
                .is_some_and(|d| d.contains("boom")));
        }
    }

    #[test]
    fn resilient_sweep_feeds_failure_counters() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::metrics::reset();
        crate::metrics::enable();
        let (_, _) = run_indexed_resilient(2, 1, fast_policy(1), |i, attempt| {
            assert!(!(i == 0 && attempt == 0), "first attempt fails");
            i
        });
        crate::metrics::disable();
        let snap = crate::metrics::snapshot();
        assert_eq!(snap.counter("sweep_panics"), 1);
        assert_eq!(snap.counter("sweep_retries"), 1);
        assert_eq!(snap.counter("sweep_timeouts"), 0);
    }

    #[test]
    fn profiled_sweep_feeds_metrics_when_enabled() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::metrics::reset();
        crate::metrics::enable();
        let (_, profile) = run_indexed_profiled(5, 2, |i| i);
        crate::metrics::disable();
        assert_eq!(profile.tasks, 5);
        let snap = crate::metrics::snapshot();
        assert!(snap.counter("sweep_tasks") >= 5);
        assert!(snap.hist_count("sweep_task_micros") >= 5);
    }
}
