//! Parallel parameter sweeps: run many independent simulation tasks across
//! worker threads and collect their results in input order.
//!
//! Every experiment in the harness is of the form "for each (n, parameter,
//! seed) run a simulation and extract a number". Tasks are embarrassingly
//! parallel; this module distributes them over scoped threads pulling from an
//! atomic ticket counter, so stragglers don't serialize the sweep. Each task
//! writes its result directly into its own pre-allocated output slot — there
//! is no shared lock, so short tasks never contend with long ones on result
//! collection.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-index output slots written concurrently, one writer per slot.
///
/// Safety contract: callers must ensure no two threads write the same index
/// and that all writes happen-before the final drain (both are guaranteed by
/// the ticket counter in [`run_indexed`] plus thread join).
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: slots are only accessed mutably through disjoint indices handed out
// exactly once by an atomic fetch_add, and the vector is only drained after
// every worker has been joined.
unsafe impl<T: Send> Sync for Slots<T> {}

/// Runs `tasks(i)` for every `i` in `0..count` across `workers` threads and
/// returns the results in index order.
///
/// The task closure must be `Sync` because multiple workers call it
/// concurrently (on distinct indices). Worker count 0 selects the available
/// parallelism reported by the OS.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::run_indexed;
///
/// let squares = run_indexed(8, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Propagates panics from task closures.
pub fn run_indexed<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    };
    let workers = workers.min(count.max(1));

    let slots = Slots((0..count).map(|_| UnsafeCell::new(None)).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Capture a reference to the whole `Slots` wrapper (not its field) so
        // the closure's Send bound goes through the wrapper's Sync impl.
        let slots = &slots;
        let next = &next;
        let task = &task;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = task(i);
                // SAFETY: index `i` was claimed exactly once by fetch_add, so
                // this thread is the unique writer of slot `i`.
                unsafe {
                    *slots.0[i].get() = Some(value);
                }
            });
        }
    });

    slots
        .0
        .into_iter()
        .map(|cell| cell.into_inner().expect("task result missing"))
        .collect()
}

/// Convenience wrapper: maps `task` over a slice of configurations in
/// parallel, preserving order.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::map_configs;
///
/// let ns = [16u64, 32, 64];
/// let doubled = map_configs(&ns, 0, |&n| n * 2);
/// assert_eq!(doubled, vec![32, 64, 128]);
/// ```
pub fn map_configs<C, T, F>(configs: &[C], workers: usize, task: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_indexed(configs.len(), workers, |i| task(&configs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn results_in_input_order() {
        let out = run_indexed(100, 4, |i| i as u64 * 3);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = run_indexed(20, 1, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        let par = run_indexed(20, 4, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        assert_eq!(seq, par, "per-task seeding makes sweeps deterministic");
    }

    #[test]
    fn auto_worker_count() {
        let out = run_indexed(10, 0, |i| i + 1);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn map_configs_passes_references() {
        let configs = vec![(2u64, 3u64), (4, 5)];
        let out = map_configs(&configs, 2, |&(a, b)| a * b);
        assert_eq!(out, vec![6, 20]);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed(3, 16, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
