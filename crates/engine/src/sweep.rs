//! Parallel parameter sweeps: run many independent simulation tasks across
//! worker threads and collect their results in input order.
//!
//! Every experiment in the harness is of the form "for each (n, parameter,
//! seed) run a simulation and extract a number". Tasks are embarrassingly
//! parallel; this module distributes them over scoped threads pulling from an
//! atomic ticket counter, so stragglers don't serialize the sweep. Each task
//! writes its result directly into its own pre-allocated output slot — there
//! is no shared lock, so short tasks never contend with long ones on result
//! collection.

use crate::json::Json;
use crate::metrics::{self, Counter, Hist};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Resolves a requested worker count: 0 selects the OS-reported available
/// parallelism, and the result never exceeds the task count.
fn resolve_workers(workers: usize, count: usize) -> usize {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    };
    workers.min(count.max(1))
}

/// Per-index output slots written concurrently, one writer per slot.
///
/// Safety contract: callers must ensure no two threads write the same index
/// and that all writes happen-before the final drain (both are guaranteed by
/// the ticket counter in [`run_indexed`] plus thread join).
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: slots are only accessed mutably through disjoint indices handed out
// exactly once by an atomic fetch_add, and the vector is only drained after
// every worker has been joined.
unsafe impl<T: Send> Sync for Slots<T> {}

/// Runs `tasks(i)` for every `i` in `0..count` across `workers` threads and
/// returns the results in index order.
///
/// The task closure must be `Sync` because multiple workers call it
/// concurrently (on distinct indices). Worker count 0 selects the available
/// parallelism reported by the OS.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::run_indexed;
///
/// let squares = run_indexed(8, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Propagates panics from task closures.
pub fn run_indexed<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers, count);

    let slots = Slots((0..count).map(|_| UnsafeCell::new(None)).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Capture a reference to the whole `Slots` wrapper (not its field) so
        // the closure's Send bound goes through the wrapper's Sync impl.
        let slots = &slots;
        let next = &next;
        let task = &task;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let value = task(i);
                // SAFETY: index `i` was claimed exactly once by fetch_add, so
                // this thread is the unique writer of slot `i`.
                unsafe {
                    *slots.0[i].get() = Some(value);
                }
            });
        }
    });

    slots
        .0
        .into_iter()
        .map(|cell| cell.into_inner().expect("task result missing"))
        .collect()
}

/// Wall-clock summary of one profiled sweep: per-task durations plus
/// worker-utilization aggregates.
#[derive(Debug, Clone)]
pub struct SweepProfile {
    /// Number of tasks executed.
    pub tasks: usize,
    /// Worker threads actually used (after resolving worker count 0).
    pub workers: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_s: f64,
    /// Wall-clock seconds of each task, in index order.
    pub task_s: Vec<f64>,
}

impl SweepProfile {
    /// Sum of all task durations (total useful work).
    #[must_use]
    pub fn total_task_s(&self) -> f64 {
        self.task_s.iter().sum()
    }

    /// Duration of the slowest task — the lower bound on sweep wall-clock.
    #[must_use]
    pub fn max_task_s(&self) -> f64 {
        self.task_s.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of worker·wall-clock capacity spent inside tasks, in
    /// `[0, 1]` up to timer noise. Low utilization with many workers means
    /// stragglers or too few tasks.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.wall_s;
        if capacity <= 0.0 {
            0.0
        } else {
            self.total_task_s() / capacity
        }
    }

    /// Renders the summary (not the per-task list) as a JSON object, for
    /// embedding in run traces and metrics snapshots.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tasks", Json::from(self.tasks)),
            ("workers", Json::from(self.workers)),
            ("wall_s", Json::from(self.wall_s)),
            ("total_task_s", Json::from(self.total_task_s())),
            ("max_task_s", Json::from(self.max_task_s())),
            ("utilization", Json::from(self.utilization())),
        ])
    }
}

/// Like [`run_indexed`], but additionally measures per-task wall-clock and
/// returns a [`SweepProfile`]. When the global [`crate::metrics`] registry
/// is enabled, each task also bumps the `sweep_tasks` counter and feeds the
/// `sweep_task_micros` histogram.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::run_indexed_profiled;
///
/// let (squares, profile) = run_indexed_profiled(4, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// assert_eq!(profile.tasks, 4);
/// assert_eq!(profile.task_s.len(), 4);
/// assert!(profile.wall_s >= profile.max_task_s());
/// ```
///
/// # Panics
///
/// Propagates panics from task closures.
pub fn run_indexed_profiled<T, F>(count: usize, workers: usize, task: F) -> (Vec<T>, SweepProfile)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers, count);
    let start = Instant::now();
    let timed = run_indexed(count, workers, |i| {
        let t0 = Instant::now();
        let value = task(i);
        let dur = t0.elapsed();
        metrics::add(Counter::SweepTasks, 1);
        metrics::observe(Hist::SweepTaskMicros, dur.as_micros() as u64);
        (value, dur.as_secs_f64())
    });
    let wall_s = start.elapsed().as_secs_f64();
    let mut values = Vec::with_capacity(count);
    let mut task_s = Vec::with_capacity(count);
    for (v, s) in timed {
        values.push(v);
        task_s.push(s);
    }
    (
        values,
        SweepProfile {
            tasks: count,
            workers,
            wall_s,
            task_s,
        },
    )
}

/// Convenience wrapper: maps `task` over a slice of configurations in
/// parallel, preserving order.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::map_configs;
///
/// let ns = [16u64, 32, 64];
/// let doubled = map_configs(&ns, 0, |&n| n * 2);
/// assert_eq!(doubled, vec![32, 64, 128]);
/// ```
pub fn map_configs<C, T, F>(configs: &[C], workers: usize, task: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_indexed(configs.len(), workers, |i| task(&configs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn results_in_input_order() {
        let out = run_indexed(100, 4, |i| i as u64 * 3);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = run_indexed(20, 1, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        let par = run_indexed(20, 4, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        assert_eq!(seq, par, "per-task seeding makes sweeps deterministic");
    }

    #[test]
    fn auto_worker_count() {
        let out = run_indexed(10, 0, |i| i + 1);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn map_configs_passes_references() {
        let configs = vec![(2u64, 3u64), (4, 5)];
        let out = map_configs(&configs, 2, |&(a, b)| a * b);
        assert_eq!(out, vec![6, 20]);
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed(3, 16, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn profiled_sweep_reports_consistent_summary() {
        let (out, profile) = run_indexed_profiled(6, 2, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(profile.tasks, 6);
        assert_eq!(profile.workers, 2);
        assert_eq!(profile.task_s.len(), 6);
        assert!(profile.task_s.iter().all(|&s| s > 0.0));
        assert!(profile.wall_s + 1e-3 >= profile.max_task_s());
        assert!(profile.total_task_s() >= profile.max_task_s());
        let u = profile.utilization();
        assert!((0.0..=1.5).contains(&u), "utilization {u}");
        let j = profile.to_json();
        assert_eq!(j.get("tasks").and_then(crate::json::Json::as_u64), Some(6));
        assert!(j.get("utilization").is_some());
    }

    #[test]
    fn profiled_sweep_feeds_metrics_when_enabled() {
        let _guard = crate::metrics::TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::metrics::reset();
        crate::metrics::enable();
        let (_, profile) = run_indexed_profiled(5, 2, |i| i);
        crate::metrics::disable();
        assert_eq!(profile.tasks, 5);
        let snap = crate::metrics::snapshot();
        assert!(snap.counter("sweep_tasks") >= 5);
        assert!(snap.hist_count("sweep_task_micros") >= 5);
    }
}
