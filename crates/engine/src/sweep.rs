//! Parallel parameter sweeps: run many independent simulation tasks across
//! worker threads and collect their results in input order.
//!
//! Every experiment in the harness is of the form "for each (n, parameter,
//! seed) run a simulation and extract a number". Tasks are embarrassingly
//! parallel; this module distributes them over a crossbeam scope with a
//! shared work queue, so stragglers don't serialize the sweep.

use crossbeam::queue::SegQueue;
use parking_lot::Mutex;

/// Runs `tasks(i)` for every `i` in `0..count` across `workers` threads and
/// returns the results in index order.
///
/// The task closure must be `Sync` because multiple workers call it
/// concurrently (on distinct indices). Worker count 0 selects the available
/// parallelism reported by the OS.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::run_indexed;
///
/// let squares = run_indexed(8, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
///
/// # Panics
///
/// Propagates panics from task closures.
pub fn run_indexed<T, F>(count: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    };
    let workers = workers.min(count.max(1));

    let queue = SegQueue::new();
    for i in 0..count {
        queue.push(i);
    }
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(count).collect());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                while let Some(i) = queue.pop() {
                    let value = task(i);
                    results.lock()[i] = Some(value);
                }
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|v| v.expect("task result missing"))
        .collect()
}

/// Convenience wrapper: maps `task` over a slice of configurations in
/// parallel, preserving order.
///
/// # Examples
///
/// ```
/// use pp_engine::sweep::map_configs;
///
/// let ns = [16u64, 32, 64];
/// let doubled = map_configs(&ns, 0, |&n| n * 2);
/// assert_eq!(doubled, vec![32, 64, 128]);
/// ```
pub fn map_configs<C, T, F>(configs: &[C], workers: usize, task: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    run_indexed(configs.len(), workers, |i| task(&configs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use rand::RngCore;

    #[test]
    fn results_in_input_order() {
        let out = run_indexed(100, 4, |i| i as u64 * 3);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = run_indexed(20, 1, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        let par = run_indexed(20, 4, |i| {
            let mut rng = SimRng::seed_from(i as u64);
            rng.next_u64()
        });
        assert_eq!(seq, par, "per-task seeding makes sweeps deterministic");
    }

    #[test]
    fn auto_worker_count() {
        let out = run_indexed(10, 0, |i| i + 1);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn map_configs_passes_references() {
        let configs = vec![(2u64, 3u64), (4, 5)];
        let out = map_configs(&configs, 2, |&(a, b)| a * b);
        assert_eq!(out, vec![6, 20]);
    }
}
